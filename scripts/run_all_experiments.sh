#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Usage: scripts/run_all_experiments.sh [extra flags passed to every binary]
# Fast smoke run: scripts/run_all_experiments.sh --n 10000 --trials 2 --samples 5000
set -euo pipefail
cd "$(dirname "$0")/.."

FLAGS=("$@")
for bin in fig17 fig13_16 table2 table3 sensitivity scaling dims table1 ablation resilience obs; do
    echo "==================================================================="
    echo "### $bin"
    echo "==================================================================="
    cargo run -p gprq-bench --release --bin "$bin" -- ${FLAGS[@]+"${FLAGS[@]}"}
    echo
done
