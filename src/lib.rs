//! # gaussian-prq
//!
//! Probabilistic spatial range queries for **Gaussian-based imprecise
//! query objects** — a from-scratch Rust implementation of
//!
//! > Yoshiharu Ishikawa, Yuichi Iijima, Jeffrey Xu Yu.
//! > *Spatial Range Querying for Gaussian-Based Imprecise Query Objects.*
//! > Proc. IEEE ICDE 2009.
//!
//! A query object whose position is only known as a Gaussian distribution
//! `N(q, Σ)` asks for all exactly-located database objects within
//! distance `δ` **with probability at least `θ`**. Because the
//! qualification probability requires numerical integration, query time
//! is dominated by how many candidates reach that phase; this crate
//! implements the paper's three filtering strategies (rectilinear-region,
//! oblique-region, bounding-function) and their combinations over a
//! from-scratch R\*-tree.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `gprq-linalg` | vectors, matrices, eigen/Cholesky |
//! | [`gaussian`] | `gprq-gaussian` | distributions, chi/noncentral CDFs, Monte-Carlo integration |
//! | [`rtree`] | `gprq-rtree` | the R\*-tree index |
//! | [`core`] | `gprq-core` | queries, strategies, executor, extensions |
//! | [`workloads`] | `gprq-workloads` | the paper's experimental workloads |
//!
//! ## Quickstart
//!
//! ```
//! use gaussian_prq::prelude::*;
//!
//! // 1. Index the database of exactly-located objects.
//! let objects: Vec<(Vector<2>, u32)> = (0..400)
//!     .map(|i| (Vector::from([(i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0]), i))
//!     .collect();
//! let tree = RTree::bulk_load(objects, RStarParams::paper_default(2));
//!
//! // 2. Describe the imprecise query object.
//! let query = PrqQuery::new(
//!     Vector::from([50.0, 50.0]),      // estimated position q
//!     Matrix::identity().scale(16.0),  // positional covariance Σ
//!     10.0,                            // distance threshold δ
//!     0.2,                             // probability threshold θ
//! )?;
//!
//! // 3. Execute with all three filtering strategies.
//! let mut evaluator = MonteCarloEvaluator::new(20_000, 42);
//! let outcome = PrqExecutor::new(StrategySet::ALL)
//!     .execute(&tree, &query, &mut evaluator)?;
//!
//! println!(
//!     "{} answers, {} integrations out of {} candidates",
//!     outcome.stats.answers,
//!     outcome.stats.integrations,
//!     outcome.stats.phase1_candidates,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gprq_core as core;
pub use gprq_gaussian as gaussian;
pub use gprq_linalg as linalg;
pub use gprq_rtree as rtree;
pub use gprq_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use gprq_core::ext::parallel::{ParallelIntegrator, Phase3Mode};
    pub use gprq_core::ext::pnn::{probabilistic_knn, PnnResult};
    pub use gprq_core::ext::session::{MonitoringSession, StepOutcome};
    pub use gprq_core::ext::uncertain::{
        prq_uncertain_targets, qualification_probability, UncertainTarget,
    };
    pub use gprq_core::{
        cloud_seed, execute_naive, AdmissionPolicy, BatchOutcome, BfCatalog, BfClass,
        DegradationReason, DegradationReport, EvalBudget, FringeMode, MonteCarloEvaluator,
        PipelineMetrics, ProbabilityEvaluator, PrqError, PrqExecutor, PrqOutcome, PrqQuery,
        Quadrature2dEvaluator, QuasiMonteCarloEvaluator, QueryBatch, QueryStats, ResilientExecutor,
        ResilientOutcome, RrCatalog, SequentialMonteCarloEvaluator, SharedSamplesEvaluator,
        SigmaFactorCache, StrategySet, TerminalStrategy, ThetaRegion, UncertainCause, Verdict,
    };
    pub use gprq_gaussian::cloud::{CloudGrid, SampleCloud};
    pub use gprq_gaussian::Gaussian;
    pub use gprq_linalg::{Matrix, Vector};
    pub use gprq_rtree::{
        ConcQueryScratch, ConcurrentRTree, ContentionLadder, FlatRTree, Phase1Index, RStarParams,
        RTree, Rect, SearchStats, PACKED_FANOUT,
    };
}
