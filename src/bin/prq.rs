//! `prq` — command-line interface to the gaussian-prq library.
//!
//! ```text
//! prq generate road  --n 50747 --seed 42 --out points.csv
//! prq generate corel --n 68040 --seed 42 --out features.csv
//! prq info  --data points.csv
//! prq query --data points.csv --center 500,500 --cov 70,34.64,34.64,30 \
//!           --delta 25 --theta 0.01 [--strategy all] [--samples 100000] [--seed 42]
//! prq pnn   --data points.csv --center 500,500 --cov 70,34.64,34.64,30 \
//!           --delta 25 --k 10
//! ```
//!
//! Point files are plain CSV, one point per line, 2 or 9 numeric columns
//! (the two dimensionalities the paper evaluates). `--cov` takes the
//! row-major covariance entries (4 values for 2-D, 81 for 9-D).

use gaussian_prq::prelude::*;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `prq help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("pnn") => pnn(&args[1..]),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn usage() -> String {
    "prq — probabilistic range queries for Gaussian-imprecise query objects\n\
     \n\
     commands:\n\
       generate road|corel --n N --seed S --out FILE   write a synthetic dataset\n\
       info  --data FILE                               index statistics\n\
       query --data FILE --center X,Y[,..] --cov C11,C12,.. --delta D --theta T\n\
             [--strategy rr|bf|rr+bf|rr+or|bf+or|all] [--samples N] [--seed S]\n\
       pnn   --data FILE --center .. --cov .. --delta D --k K [--samples N]\n\
       help                                            this text\n"
        .to_string()
}

/// `--key value` lookup.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.windows(2)
        .rev()
        .find(|w| w[0] == format!("--{key}"))
        .map(|w| w[1].as_str())
}

fn req<'a>(args: &'a [String], key: &str) -> Result<&'a str, String> {
    opt(args, key).ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_list(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("not a number: `{t}`"))
        })
        .collect()
}

fn generate(args: &[String]) -> Result<String, String> {
    let kind = args.first().ok_or("generate needs `road` or `corel`")?;
    let n: usize = opt(args, "n")
        .unwrap_or("10000")
        .parse()
        .map_err(|_| "--n must be an integer")?;
    let seed: u64 = opt(args, "seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    let out = req(args, "out")?;
    let mut csv = String::new();
    match kind.as_str() {
        "road" => {
            for p in gaussian_prq::workloads::road_network_2d(n, seed) {
                writeln!(csv, "{},{}", p[0], p[1]).unwrap();
            }
        }
        "corel" => {
            for p in gaussian_prq::workloads::corel_like_9d(n, seed) {
                let row: Vec<String> = p.as_slice().iter().map(|v| v.to_string()).collect();
                writeln!(csv, "{}", row.join(",")).unwrap();
            }
        }
        other => return Err(format!("unknown dataset kind `{other}`")),
    }
    std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!("wrote {n} points to {out}\n"))
}

/// Loaded dataset with runtime-detected dimensionality.
enum Dataset {
    D2(Vec<Vector<2>>),
    D9(Vec<Vector<9>>),
}

fn load(path: &str) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let vals = parse_list(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        rows.push(vals);
    }
    let dim = rows.first().map(Vec::len).ok_or("empty dataset")?;
    if rows.iter().any(|r| r.len() != dim) {
        return Err("inconsistent column counts".into());
    }
    match dim {
        2 => Ok(Dataset::D2(
            rows.iter().map(|r| Vector::from([r[0], r[1]])).collect(),
        )),
        9 => Ok(Dataset::D9(
            rows.iter().map(|r| Vector::from_fn(|i| r[i])).collect(),
        )),
        d => Err(format!("unsupported dimensionality {d} (expected 2 or 9)")),
    }
}

fn info(args: &[String]) -> Result<String, String> {
    let data = load(req(args, "data")?)?;
    let mut out = String::new();
    match data {
        Dataset::D2(pts) => describe_tree::<2>(&pts, &mut out),
        Dataset::D9(pts) => describe_tree::<9>(&pts, &mut out),
    }
    Ok(out)
}

fn describe_tree<const D: usize>(pts: &[Vector<D>], out: &mut String) {
    let tree: RTree<D, u32> = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(D),
    );
    let s = tree.tree_stats();
    writeln!(out, "{} points in {D}-D", tree.len()).unwrap();
    writeln!(
        out,
        "R*-tree: height {}, {} leaves + {} internal nodes, mean leaf fill {:.0}%",
        s.height,
        s.leaf_nodes,
        s.internal_nodes,
        100.0 * s.mean_leaf_occupancy
    )
    .unwrap();
    if let Some(b) = tree.bounding_rect() {
        writeln!(out, "extent: {} — {}", b.lo, b.hi).unwrap();
    }
}

fn parse_strategy(s: &str) -> Result<StrategySet, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "rr" => StrategySet::RR,
        "bf" => StrategySet::BF,
        "rr+bf" => StrategySet::RR_BF,
        "rr+or" => StrategySet::RR_OR,
        "bf+or" => StrategySet::BF_OR,
        "all" => StrategySet::ALL,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn query(args: &[String]) -> Result<String, String> {
    let data = load(req(args, "data")?)?;
    let center = parse_list(req(args, "center")?)?;
    let cov = parse_list(req(args, "cov")?)?;
    let delta: f64 = req(args, "delta")?
        .parse()
        .map_err(|_| "--delta must be numeric")?;
    let theta: f64 = req(args, "theta")?
        .parse()
        .map_err(|_| "--theta must be numeric")?;
    let strategy = parse_strategy(opt(args, "strategy").unwrap_or("all"))?;
    let samples: usize = opt(args, "samples")
        .unwrap_or("100000")
        .parse()
        .map_err(|_| "--samples must be an integer")?;
    let seed: u64 = opt(args, "seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    match data {
        Dataset::D2(pts) => {
            query_dim::<2>(&pts, &center, &cov, delta, theta, strategy, samples, seed)
        }
        Dataset::D9(pts) => {
            query_dim::<9>(&pts, &center, &cov, delta, theta, strategy, samples, seed)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn query_dim<const D: usize>(
    pts: &[Vector<D>],
    center: &[f64],
    cov: &[f64],
    delta: f64,
    theta: f64,
    strategy: StrategySet,
    samples: usize,
    seed: u64,
) -> Result<String, String> {
    let (q, sigma) = build_query_params::<D>(center, cov)?;
    let tree: RTree<D, u32> = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(D),
    );
    let query = PrqQuery::new(q, sigma, delta, theta).map_err(|e| e.to_string())?;
    let mut eval = MonteCarloEvaluator::new(samples, seed);
    let outcome = PrqExecutor::new(strategy)
        .execute(&tree, &query, &mut eval)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let s = &outcome.stats;
    writeln!(
        out,
        "# strategy {} | {} candidates, {} integrations, {} free accepts | {:.1} ms",
        strategy.name(),
        s.phase1_candidates,
        s.integrations,
        s.accepted_without_integration,
        s.total_time().as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(out, "# {} answers (point-id: location)", s.answers).unwrap();
    let mut answers: Vec<(u32, String)> = outcome
        .answers
        .iter()
        .map(|(p, id)| (**id, format!("{p}")))
        .collect();
    answers.sort_unstable_by_key(|(id, _)| *id);
    for (id, loc) in answers {
        writeln!(out, "{id}: {loc}").unwrap();
    }
    Ok(out)
}

fn build_query_params<const D: usize>(
    center: &[f64],
    cov: &[f64],
) -> Result<(Vector<D>, Matrix<D>), String> {
    if center.len() != D {
        return Err(format!(
            "--center has {} values, dataset is {D}-D",
            center.len()
        ));
    }
    if cov.len() != D * D {
        return Err(format!(
            "--cov has {} values, expected {} for a {D}×{D} matrix",
            cov.len(),
            D * D
        ));
    }
    let q = Vector::<D>::from_fn(|i| center[i]);
    let sigma = Matrix::<D>::from_fn(|i, j| cov[i * D + j]);
    Ok((q, sigma))
}

fn pnn(args: &[String]) -> Result<String, String> {
    let data = load(req(args, "data")?)?;
    let center = parse_list(req(args, "center")?)?;
    let cov = parse_list(req(args, "cov")?)?;
    let delta: f64 = req(args, "delta")?
        .parse()
        .map_err(|_| "--delta must be numeric")?;
    let k: usize = req(args, "k")?
        .parse()
        .map_err(|_| "--k must be an integer")?;
    let samples: usize = opt(args, "samples")
        .unwrap_or("100000")
        .parse()
        .map_err(|_| "--samples must be an integer")?;
    let seed: u64 = opt(args, "seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    match data {
        Dataset::D2(pts) => pnn_dim::<2>(&pts, &center, &cov, delta, k, samples, seed),
        Dataset::D9(pts) => pnn_dim::<9>(&pts, &center, &cov, delta, k, samples, seed),
    }
}

fn pnn_dim<const D: usize>(
    pts: &[Vector<D>],
    center: &[f64],
    cov: &[f64],
    delta: f64,
    k: usize,
    samples: usize,
    seed: u64,
) -> Result<String, String> {
    let (q, sigma) = build_query_params::<D>(center, cov)?;
    let tree: RTree<D, u32> = RTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        RStarParams::paper_default(D),
    );
    // θ is unused by ranking; any valid placeholder works.
    let query = PrqQuery::new(q, sigma, delta, 0.5).map_err(|e| e.to_string())?;
    let mut eval = MonteCarloEvaluator::new(samples, seed);
    let (top, stats) = probabilistic_knn(&tree, &query, k, &mut eval);
    let mut out = String::new();
    writeln!(
        out,
        "# top-{k} by Pr(dist ≤ {delta}) | examined {} candidates, {} integrations",
        stats.candidates_examined, stats.integrations
    )
    .unwrap();
    for (rank, r) in top.iter().enumerate() {
        writeln!(
            out,
            "{}: id {} p={:.4} dist={:.3} at {}",
            rank + 1,
            r.data,
            r.probability,
            r.distance,
            r.point
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_on_no_args() {
        assert!(run(&[]).unwrap().contains("commands:"));
        assert!(run(&s(&["help"])).unwrap().contains("generate"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn parse_list_handles_spaces_and_errors() {
        assert_eq!(parse_list("1, 2,3").unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(parse_list("1,x").is_err());
    }

    #[test]
    fn generate_query_roundtrip() {
        let dir = std::env::temp_dir().join("prq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("pts.csv");
        let file_s = file.to_str().unwrap();
        run(&s(&[
            "generate", "road", "--n", "2000", "--seed", "7", "--out", file_s,
        ]))
        .unwrap();
        let info_out = run(&s(&["info", "--data", file_s])).unwrap();
        assert!(info_out.contains("2000 points in 2-D"), "{info_out}");
        let q_out = run(&s(&[
            "query",
            "--data",
            file_s,
            "--center",
            "500,500",
            "--cov",
            "700,346.4,346.4,300",
            "--delta",
            "25",
            "--theta",
            "0.01",
            "--samples",
            "5000",
        ]))
        .unwrap();
        assert!(q_out.contains("answers"), "{q_out}");
        let p_out = run(&s(&[
            "pnn",
            "--data",
            file_s,
            "--center",
            "500,500",
            "--cov",
            "700,346.4,346.4,300",
            "--delta",
            "25",
            "--k",
            "3",
            "--samples",
            "5000",
        ]))
        .unwrap();
        assert!(p_out.lines().count() >= 4, "{p_out}");
    }

    #[test]
    fn query_rejects_dimension_mismatch() {
        let dir = std::env::temp_dir().join("prq_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("pts.csv");
        std::fs::write(&file, "1,2\n3,4\n").unwrap();
        let err = run(&s(&[
            "query",
            "--data",
            file.to_str().unwrap(),
            "--center",
            "1,2,3",
            "--cov",
            "1,0,0,1",
            "--delta",
            "1",
            "--theta",
            "0.1",
        ]))
        .unwrap_err();
        assert!(err.contains("--center"), "{err}");
    }

    #[test]
    fn load_rejects_bad_files() {
        let dir = std::env::temp_dir().join("prq_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bad.csv");
        std::fs::write(&file, "1,2\n3,4,5\n").unwrap();
        assert!(load(file.to_str().unwrap()).is_err());
        std::fs::write(&file, "1,2,3\n").unwrap();
        match load(file.to_str().unwrap()) {
            Err(e) => assert!(e.contains("unsupported dimensionality"), "{e}"),
            Ok(_) => panic!("3-column file should be rejected"),
        }
        assert!(load("/nonexistent/nope.csv").is_err());
    }
}
