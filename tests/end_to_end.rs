//! Cross-crate integration tests: the full pipeline from workload
//! generation through indexing, strategy filtering, and probability
//! computation, validated against oracles.

use gaussian_prq::prelude::*;
use gaussian_prq::workloads;

fn road_tree(n: usize, seed: u64) -> RTree<2, usize> {
    let pts = workloads::road_network_2d(n, seed);
    RTree::bulk_load(
        pts.into_iter().zip(0..).collect(),
        RStarParams::paper_default(2),
    )
}

fn sorted_ids(outcome: &PrqOutcome<'_, 2, usize>) -> Vec<usize> {
    let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn paper_default_query_all_strategies_equal_naive() {
    let tree = road_tree(8_000, 1);
    let query = PrqQuery::new(
        Vector::from([450.0, 430.0]),
        workloads::eq34_covariance(10.0),
        25.0,
        0.01,
    )
    .unwrap();

    // Ground truth by deterministic quadrature over a full scan.
    let mut oracle = Quadrature2dEvaluator::default();
    let truth = sorted_ids(&execute_naive(&tree, &query, &mut oracle));
    assert!(!truth.is_empty(), "query should have answers");

    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(set)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert_eq!(sorted_ids(&outcome), truth, "strategy {name}");
    }
}

#[test]
fn monte_carlo_agrees_with_oracle_away_from_threshold() {
    // MC jitter can flip objects whose true probability sits within a
    // few standard errors of θ; everything else must agree.
    let tree = road_tree(4_000, 2);
    let query = PrqQuery::new(
        Vector::from([500.0, 500.0]),
        workloads::eq34_covariance(10.0),
        25.0,
        0.01,
    )
    .unwrap();
    let mut mc = MonteCarloEvaluator::paper_default(7);
    let mc_ids = sorted_ids(
        &PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut mc)
            .unwrap(),
    );
    // Oracle classification with a tolerance band: objects with
    // |p − θ| > 5σ must be classified identically.
    let sigma_mc = (0.01f64 * 0.99 / 100_000.0).sqrt();
    let band = 5.0 * sigma_mc;
    let mut oracle = Quadrature2dEvaluator::default();
    for (point, id) in tree.iter() {
        let p = oracle.probability(query.gaussian(), point, query.delta());
        if p > query.theta() + band {
            assert!(
                mc_ids.binary_search(id).is_ok(),
                "missed sure answer {id} (p = {p})"
            );
        } else if p < query.theta() - band {
            assert!(
                mc_ids.binary_search(id).is_err(),
                "false positive {id} (p = {p})"
            );
        }
    }
}

#[test]
fn gamma_scaling_increases_work_and_answers() {
    // Tables I–II trend: γ = 1 → 10 → 100 grows candidates and answers.
    let tree = road_tree(10_000, 3);
    let mut prev_candidates = 0usize;
    for gamma in [1.0, 10.0, 100.0] {
        let query = PrqQuery::new(
            Vector::from([400.0, 450.0]),
            workloads::eq34_covariance(gamma),
            25.0,
            0.01,
        )
        .unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert!(
            outcome.stats.integrations + outcome.stats.accepted_without_integration
                >= prev_candidates,
            "work should grow with γ"
        );
        prev_candidates = outcome.stats.integrations + outcome.stats.accepted_without_integration;
    }
}

#[test]
fn shared_samples_match_fresh_samples_closely() {
    let tree = road_tree(3_000, 4);
    let query = PrqQuery::new(
        Vector::from([500.0, 500.0]),
        workloads::eq34_covariance(10.0),
        25.0,
        0.05,
    )
    .unwrap();
    let mut fresh = MonteCarloEvaluator::new(100_000, 11);
    let a = sorted_ids(
        &PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut fresh)
            .unwrap(),
    );
    let mut shared = SharedSamplesEvaluator::<2>::new(100_000, 12);
    let b = sorted_ids(
        &PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut shared)
            .unwrap(),
    );
    // Allow a small symmetric difference from MC noise at the threshold.
    let diff = a
        .iter()
        .filter(|x| b.binary_search(x).is_err())
        .chain(b.iter().filter(|x| a.binary_search(x).is_err()))
        .count();
    assert!(
        diff <= (a.len().max(8)) / 8,
        "symmetric difference {diff} too large ({} vs {})",
        a.len(),
        b.len()
    );
}

#[test]
fn nine_dimensional_pipeline_runs() {
    // End-to-end 9-D: pseudo-feedback covariance, all strategies agree
    // under a shared-sample evaluator (deterministic enough given one
    // batch per query — the batch is identical across strategy sets
    // because the evaluator is re-seeded).
    let features = workloads::corel_like_9d(6_000, 5);
    let tree: RTree<9, usize> = RTree::bulk_load(
        features.iter().copied().zip(0..).collect(),
        RStarParams::paper_default(9),
    );
    let q_idx = 1234;
    let knn = tree.nearest_neighbors(&features[q_idx], 20);
    let samples: Vec<Vector<9>> = knn.iter().map(|(_, p, _)| **p).collect();
    let sigma = workloads::pseudo_feedback_covariance(&samples);
    let query = PrqQuery::new(features[q_idx], sigma, 0.7, 0.4).unwrap();

    let mut reference: Option<Vec<usize>> = None;
    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut eval = SharedSamplesEvaluator::<9>::new(50_000, 777);
        let outcome = PrqExecutor::new(set)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        ids.sort_unstable();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "9-D strategy {name} disagrees"),
        }
    }
}

#[test]
fn catalog_and_exact_executors_agree() {
    let tree = road_tree(5_000, 6);
    let rr_cat = RrCatalog::new(2);
    let bf_cat = BfCatalog::new(2);
    for theta in [0.005, 0.01, 0.1, 0.3] {
        let query = PrqQuery::new(
            Vector::from([300.0, 600.0]),
            workloads::eq34_covariance(10.0),
            25.0,
            theta,
        )
        .unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        let exact = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        let approx = PrqExecutor::new(StrategySet::ALL)
            .with_rr_catalog(&rr_cat)
            .with_bf_catalog(&bf_cat)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert_eq!(sorted_ids(&exact), sorted_ids(&approx), "θ = {theta}");
    }
}

#[test]
fn fringe_generalization_preserves_answers() {
    let tree = road_tree(5_000, 7);
    let query = PrqQuery::new(
        Vector::from([500.0, 400.0]),
        workloads::eq34_covariance(100.0),
        25.0,
        0.01,
    )
    .unwrap();
    let mut eval = Quadrature2dEvaluator::default();
    let faithful = PrqExecutor::new(StrategySet::RR)
        .with_fringe_mode(FringeMode::PaperFaithful)
        .execute(&tree, &query, &mut eval)
        .unwrap();
    let general = PrqExecutor::new(StrategySet::RR)
        .with_fringe_mode(FringeMode::AllDimensions)
        .execute(&tree, &query, &mut eval)
        .unwrap();
    let disabled = PrqExecutor::new(StrategySet::RR)
        .with_fringe_mode(FringeMode::Disabled)
        .execute(&tree, &query, &mut eval)
        .unwrap();
    assert_eq!(sorted_ids(&faithful), sorted_ids(&general));
    assert_eq!(sorted_ids(&faithful), sorted_ids(&disabled));
    // In 2-D, faithful == general; disabled does strictly more work.
    assert_eq!(faithful.stats.integrations, general.stats.integrations);
    assert!(disabled.stats.integrations >= faithful.stats.integrations);
}

#[test]
fn parallel_integrator_matches_executor_answers() {
    let tree = road_tree(3_000, 8);
    let query = PrqQuery::new(
        Vector::from([500.0, 500.0]),
        workloads::eq34_covariance(10.0),
        25.0,
        0.01,
    )
    .unwrap();
    // Phase 1+2 by hand: use the executor with a trivial evaluator that
    // marks nothing, then integrate candidates in parallel.
    let mut oracle = Quadrature2dEvaluator::default();
    let truth = sorted_ids(
        &PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut oracle)
            .unwrap(),
    );
    let candidates: Vec<Vector<2>> = tree.iter().map(|(p, _)| *p).collect();
    let flags = ParallelIntegrator::new(100_000, 31, 4)
        .unwrap()
        .qualify(&query, &candidates);
    let mut par_ids: Vec<usize> = tree
        .iter()
        .enumerate()
        .filter(|(i, _)| flags[*i])
        .map(|(_, (_, d))| *d)
        .collect();
    par_ids.sort_unstable();
    // MC noise tolerance at the threshold.
    let diff = truth
        .iter()
        .filter(|x| par_ids.binary_search(x).is_err())
        .chain(par_ids.iter().filter(|x| truth.binary_search(x).is_err()))
        .count();
    assert!(diff <= truth.len().max(8) / 8, "diff {diff}");
}
