//! Offline, API-compatible subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! for the gaussian-prq workspace.
//!
//! The reproduction environment builds without network access, so the
//! workspace cannot pull the real `rand` from crates.io. This shim
//! implements the exact slice of the 0.8 API the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] — every RNG in this project is
//!   explicitly seeded (enforced by `cargo xtask audit`);
//! * [`Rng::gen`] for `f64`, `f32`, `u32`, `u64`, `usize`, `bool`;
//! * [`Rng::gen_range`] over half-open and inclusive ranges;
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator.
//!
//! The numeric streams differ from upstream `rand` (which uses ChaCha12
//! for `StdRng`), but nothing in the workspace depends on the exact
//! stream — only on determinism under a fixed seed and on statistical
//! quality, both of which xoshiro256** provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution for `T`:
    /// uniform `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 top bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// The single blanket [`SampleRange`] impl below keys range and element
/// type together, which is what lets integer-literal inference flow
/// through `gen_range(0..n)` the same way it does with upstream rand.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

// Multiply-shift bounded integers: floor(next_u64 * span / 2^64). The
// bias is < span/2^64, immaterial at the span sizes used in this
// workspace (< 2^32).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // The closed endpoint is a measure-zero distinction for
                // floats; reuse the half-open sampler.
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            let k: usize = rng.gen_range(0..9);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }
}
