//! Test configuration and the deterministic RNG driving value
//! generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that so coverage is
        // comparable.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator for strategies, seeded from the test name so
/// every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates a generator whose seed is an FNV-1a hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
