//! Array strategies (`proptest::array::uniform3` etc.).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing fixed-size arrays from a single element strategy.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|_| self.element.sample(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        /// Generates arrays whose elements are all drawn from `element`.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}

uniform_fn!(
    uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
    uniform9 => 9
);
