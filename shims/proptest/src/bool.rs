//! Boolean strategies (`proptest::bool::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `true` with a fixed probability.
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    probability: f64,
}

/// Generates `true` with probability `probability`.
pub fn weighted(probability: f64) -> Weighted {
    assert!(
        (0.0..=1.0).contains(&probability),
        "bool::weighted: probability {probability} outside [0, 1]"
    );
    Weighted { probability }
}

impl Strategy for Weighted {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen_bool(self.probability)
    }
}
