//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Anything usable as the size argument of [`vec()`]: a fixed length or
/// a half-open range of lengths.
pub trait IntoSizeRange {
    /// Lower/upper (exclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

/// Generates vectors whose length lies in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    assert!(min_len < max_len, "collection::vec: empty size range");
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng.gen_range(self.min_len..self.max_len);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
