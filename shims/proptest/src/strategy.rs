//! The [`Strategy`] trait and its implementations for ranges, tuples,
//! and arrays.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampler over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|i| self[i].sample(rng))
    }
}
