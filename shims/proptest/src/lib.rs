//! Offline API-compatible subset of [`proptest`](https://docs.rs/proptest)
//! for the gaussian-prq workspace.
//!
//! The build environment has no network access, so this shim provides the
//! slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support);
//! * [`strategy::Strategy`] implemented for numeric ranges, tuples,
//!   arrays, [`collection::vec`], [`array::uniform3`]/[`array::uniform4`],
//!   and [`bool::weighted`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate: inputs are drawn from a fixed
//! deterministic seed derived from the test name (no `PROPTEST_` env
//! handling), and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]`-style function that draws `config.cases` inputs from the
/// strategies and runs the body on each. A panicking body fails the
/// test after printing the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    // `$arg:tt` (not `ident`/`pat`): parameters may be plain names or
    // tuple-destructuring patterns like `(a, b) in strat` — both are a
    // single token tree, which can be re-parsed as a binding pattern in
    // the `let` below *and* as an expression (rebuilding the tuple from
    // its bindings) in the failure report.
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest shim: {} failed on case {}/{} with inputs:",
                            stringify!($name), __case + 1, __config.cases,
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        eprintln!("(no shrinking in the offline shim)");
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
