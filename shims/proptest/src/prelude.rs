//! The glob-importable prelude, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Alias of the crate root, so `prop::collection::vec(...)` paths work.
pub mod prop {
    pub use crate::{array, bool, collection, strategy};
}
