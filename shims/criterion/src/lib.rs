//! Offline API-compatible subset of [`criterion`](https://docs.rs/criterion)
//! for the gaussian-prq workspace.
//!
//! The build environment cannot reach crates.io, so this shim supplies
//! the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple warm-up + median-of-samples timer. Numbers are printed to
//! stdout; there is no HTML report, outlier analysis, or baseline
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimiser from const-folding
/// benchmark inputs/outputs away. Uses the stable `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording `samples`
    /// timed executions.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50 ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warmed = 0;
        while warmed < 3 || (warm_start.elapsed() < Duration::from_millis(50) && warmed < 1_000) {
            black_box(routine());
            warmed += 1;
        }
        self.measured.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.measured.push(t0.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        let mut m = self.measured.clone();
        m.sort_unstable();
        m.get(m.len() / 2).copied()
    }
}

fn report(group: Option<&str>, id: &str, bencher: &Bencher) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    match bencher.median() {
        Some(t) => println!(
            "bench {label:<50} median {t:>12.3?} ({} samples)",
            bencher.measured.len()
        ),
        None => println!("bench {label:<50} (no samples recorded)"),
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed executions each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut bencher);
        report(Some(&self.name), &id.to_string(), &bencher);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id.to_string(), &bencher);
        self
    }

    /// Ends the group (report-flush no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Default number of timed executions per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut bencher);
        report(None, id, &bencher);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Compatibility no-op (criterion prints summaries here).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
