//! The deterministic interleaving explorer.
//!
//! One *execution* runs the model closure with every model thread mapped
//! onto a real OS thread, but serialized: exactly one thread owns the
//! floor at any instant, and ownership changes hands only at *yield
//! points* — every shimmed atomic access, `fence`, `spawn`, `join`, and
//! `yield_now`. At each yield point the scheduler consults a replayed
//! *schedule prefix* (the DFS stack) to decide which runnable thread
//! proceeds; decisions past the end of the prefix default to the
//! lowest-numbered runnable thread and are recorded as new branch
//! points. After the execution finishes, the deepest branch point with
//! an unexplored alternative is advanced and the model is re-run. When
//! no branch point has an alternative left, the schedule space at the
//! configured bounds is exhausted.
//!
//! Failures (a panicking model thread, a join deadlock, an exceeded
//! bound) abort the execution: scheduling stops, the surviving threads
//! free-run to completion (their results no longer matter), and the
//! failure is reported with the schedule that produced it.
//!
//! The model closure must be deterministic given the schedule: no
//! ambient randomness, time, or I/O — the same choices must replay the
//! same yield-point sequence, or prefix replay diverges.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration bounds. An exploration that hits a bound is reported as
/// incomplete ([`Exploration::complete`] is `false`) rather than
/// silently truncated.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum model threads alive in one execution (including the
    /// model closure itself, which is thread 0).
    pub max_threads: usize,
    /// Maximum yield points in one execution — a guard against
    /// unbounded spin loops, which would make the schedule space
    /// infinite.
    pub max_steps: usize,
    /// Maximum executions before the exploration gives up.
    pub max_executions: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_threads: 4,
            max_steps: 10_000,
            max_executions: 1_000_000,
        }
    }
}

/// Result of a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Exploration {
    /// Number of executions (distinct schedules) run.
    pub executions: usize,
    /// `true` when every schedule within the bounds was explored;
    /// `false` when [`Bounds::max_executions`] stopped the DFS early.
    pub complete: bool,
    /// Deepest branch-point count seen in any single execution.
    pub max_branch_points: usize,
}

/// A model failure: the schedule that produced it plus the panic or
/// scheduler diagnostic.
#[derive(Debug, Clone)]
pub struct Failure {
    /// 1-based index of the failing execution.
    pub execution: usize,
    /// Panic message or scheduler diagnostic.
    pub message: String,
    /// The branch decisions of the failing schedule, as
    /// `(chosen, enabled)` pairs — replayable by inspection.
    pub schedule: Vec<(usize, usize)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed on execution {} — {}\n  schedule (chosen/enabled): {:?}",
            self.execution, self.message, self.schedule
        )
    }
}

/// Scheduling status of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting in `join` on another model thread.
    Blocked { on: usize },
    /// Closure returned (or unwound).
    Finished,
}

/// One recorded branch point.
#[derive(Debug, Clone, Copy)]
struct Choice {
    /// Index into the runnable set that was taken.
    chosen: usize,
    /// Size of the runnable set (number of alternatives).
    enabled: usize,
}

/// Mutable scheduler state, behind the execution mutex.
struct ExecState {
    statuses: Vec<Status>,
    /// Thread id that currently owns the floor.
    current: usize,
    /// Yield points taken so far (spin-loop guard).
    steps: usize,
    /// Replayed DFS prefix: branch index per recorded choice point.
    prefix: Vec<usize>,
    /// Branch points recorded this execution (only yield points with
    /// two or more runnable threads — forced moves are not branches).
    trace: Vec<Choice>,
    /// Set on failure: scheduling stops and threads free-run.
    abort: bool,
    failure: Option<String>,
    /// OS handles of every spawned model thread, joined by the driver.
    handles: Vec<std::thread::JoinHandle<()>>,
    finished: usize,
}

/// One execution's scheduler. Shared by all its model threads.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    bounds: Bounds,
}

thread_local! {
    /// The (execution, thread id) pair of the current OS thread, when it
    /// is a model thread. Shim operations outside a model context fall
    /// back to plain `std` behavior.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to tear down model threads once an execution
/// aborts (failure recorded or bound exceeded): each thread unwinds at
/// its next yield point so even infinite spin loops terminate. The
/// thread wrappers recognize and swallow it — it is not a model
/// failure in itself.
struct ModelAbort;

/// Unwinds the current model thread without running the panic hook.
fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(ModelAbort));
}

/// The current thread's model context, if any.
pub(crate) fn context() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_context(exec: Arc<Execution>, id: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((exec, id)));
}

impl Execution {
    fn new(prefix: Vec<usize>, bounds: Bounds) -> Self {
        Execution {
            state: Mutex::new(ExecState {
                statuses: Vec::new(),
                current: 0,
                steps: 0,
                prefix,
                trace: Vec::new(),
                abort: false,
                failure: None,
                handles: Vec::new(),
                finished: 0,
            }),
            cv: Condvar::new(),
            bounds,
        }
    }

    /// Locks the state, recovering from poisoning (a model thread that
    /// panicked never holds this lock across user code, so the state is
    /// consistent even when poisoned).
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, st: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Records the first failure and switches the execution to
    /// free-running abort mode.
    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Picks the next floor owner among runnable threads, replaying the
    /// prefix or extending the trace. No-op in abort mode.
    fn choose_next(&self, st: &mut ExecState) {
        if st.abort {
            return;
        }
        let enabled: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.finished < st.statuses.len() {
                self.fail(
                    st,
                    "deadlock: every live model thread is blocked in join".to_owned(),
                );
            }
            return;
        }
        let next = if enabled.len() == 1 {
            // Forced move: not a branch point, nothing to record.
            enabled[0]
        } else {
            let k = st.trace.len();
            let chosen = st.prefix.get(k).copied().unwrap_or(0);
            st.trace.push(Choice {
                chosen,
                enabled: enabled.len(),
            });
            enabled[chosen]
        };
        st.current = next;
    }

    /// One scheduling round on behalf of thread `me`: pick who runs the
    /// next operation, then wait until the floor comes back to `me`.
    /// Unwinds ([`abort_unwind`]) instead of returning once the
    /// execution has aborted.
    fn schedule_and_wait(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > self.bounds.max_steps {
            self.fail(
                &mut st,
                format!(
                    "schedule exceeded {} yield points — unbounded spin loop in the model?",
                    self.bounds.max_steps
                ),
            );
            drop(st);
            abort_unwind();
        }
        self.choose_next(&mut st);
        self.cv.notify_all();
        while !st.abort && st.current != me {
            st = self.wait(st);
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
    }

    /// Blocks until the floor is first handed to `me` (thread startup).
    /// Returns `false` when the execution aborted before `me` ever ran
    /// — the closure must then be skipped.
    fn wait_until_scheduled(&self, me: usize) -> bool {
        let mut st = self.lock();
        while !st.abort && st.current != me {
            st = self.wait(st);
        }
        !st.abort
    }

    /// Marks `me` finished, wakes its joiners, and hands the floor on.
    fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.statuses[me] = Status::Finished;
        st.finished += 1;
        for s in st.statuses.iter_mut() {
            if *s == (Status::Blocked { on: me }) {
                *s = Status::Runnable;
            }
        }
        if st.finished < st.statuses.len() {
            self.choose_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Extracts a human-readable message from a panic payload.
    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model thread panicked (non-string payload)".to_owned()
        }
    }
}

/// The scheduler yield point: every shimmed synchronization operation
/// calls this before performing its effect. Outside a model context it
/// is a no-op, so the shimmed types behave like plain `std` atomics.
pub(crate) fn yield_point() {
    if let Some((exec, me)) = context() {
        exec.schedule_and_wait(me);
    }
}

/// Spawns a model thread running `f`, registered with the current
/// execution. Must only be called from a model context.
pub(crate) fn spawn_model_thread<T, F>(
    exec: &Arc<Execution>,
    f: F,
) -> (usize, Arc<Mutex<Option<std::thread::Result<T>>>>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let id = {
        let mut st = exec.lock();
        if st.statuses.len() >= exec.bounds.max_threads {
            let max = exec.bounds.max_threads;
            exec.fail(
                &mut st,
                format!("model spawned more than max_threads = {max} threads"),
            );
        }
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    };
    let exec2 = Arc::clone(exec);
    let slot2 = Arc::clone(&slot);
    let handle = std::thread::spawn(move || {
        set_context(Arc::clone(&exec2), id);
        let result = if exec2.wait_until_scheduled(id) {
            catch_unwind(AssertUnwindSafe(f))
        } else {
            // Aborted before this thread ever ran.
            Err(Box::new(ModelAbort) as Box<dyn std::any::Any + Send>)
        };
        if let Err(payload) = &result {
            if !payload.is::<ModelAbort>() {
                let mut st = exec2.lock();
                let msg = Execution::panic_message(payload.as_ref());
                exec2.fail(&mut st, msg);
            }
        }
        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        exec2.finish_thread(id);
    });
    exec.lock().handles.push(handle);
    // The spawn itself is a synchronization operation: the child is now
    // runnable and may be scheduled before the parent's next operation.
    yield_point();
    (id, slot)
}

/// Waits (from a model thread) for model thread `target` to finish.
/// Unwinds (abort teardown) if the execution aborts while the target is
/// still alive.
pub(crate) fn join_model_thread(exec: &Arc<Execution>, me: usize, target: usize) {
    // Joining is itself a synchronization operation.
    exec.schedule_and_wait(me);
    let mut st = exec.lock();
    if !st.abort && st.statuses[target] != Status::Finished {
        st.statuses[me] = Status::Blocked { on: target };
        exec.choose_next(&mut st);
        exec.cv.notify_all();
    }
    while !st.abort && st.statuses[target] != Status::Finished {
        st = exec.wait(st);
    }
    if st.statuses[target] != Status::Finished {
        drop(st);
        abort_unwind();
    }
    while !st.abort && st.current != me {
        st = exec.wait(st);
    }
}

/// Runs one execution of `f` under `prefix`; returns the recorded trace
/// and the failure, if any.
fn run_once(
    prefix: Vec<usize>,
    bounds: Bounds,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Choice>, Option<String>) {
    let exec = Arc::new(Execution::new(prefix, bounds));
    exec.lock().statuses.push(Status::Runnable);
    let exec2 = Arc::clone(&exec);
    let f2 = Arc::clone(f);
    let root = std::thread::spawn(move || {
        set_context(Arc::clone(&exec2), 0);
        let result = catch_unwind(AssertUnwindSafe(|| f2()));
        if let Err(payload) = &result {
            if !payload.is::<ModelAbort>() {
                let mut st = exec2.lock();
                let msg = Execution::panic_message(payload.as_ref());
                exec2.fail(&mut st, msg);
            }
        }
        exec2.finish_thread(0);
    });
    exec.lock().handles.push(root);
    let (handles, trace, failure) = {
        let mut st = exec.lock();
        while st.finished < st.statuses.len() {
            st = exec.wait(st);
        }
        (
            std::mem::take(&mut st.handles),
            std::mem::take(&mut st.trace),
            st.failure.clone(),
        )
    };
    for h in handles {
        let _ = h.join();
    }
    (trace, failure)
}

/// Advances the deepest branch point with an unexplored alternative;
/// `None` when the DFS is exhausted.
fn next_prefix(trace: &[Choice]) -> Option<Vec<usize>> {
    let k = trace.iter().rposition(|c| c.chosen + 1 < c.enabled)?;
    let mut prefix: Vec<usize> = trace[..=k].iter().map(|c| c.chosen).collect();
    prefix[k] += 1;
    Some(prefix)
}

/// Explores every schedule of `f` within `bounds`. Returns the
/// exploration summary, or the first [`Failure`] encountered.
///
/// # Errors
///
/// Returns `Err` when a model thread panics (an assertion in the model
/// failed), when the model deadlocks, or when a per-execution bound
/// (threads, yield points) is exceeded.
pub fn try_explore_with<F>(bounds: Bounds, f: F) -> Result<Exploration, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        context().is_none(),
        "nested loom models are not supported by the shim"
    );
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix = Vec::new();
    let mut executions = 0usize;
    let mut max_branch_points = 0usize;
    loop {
        executions += 1;
        let (trace, failure) = run_once(prefix, bounds, &f);
        if let Some(message) = failure {
            return Err(Failure {
                execution: executions,
                message,
                schedule: trace.iter().map(|c| (c.chosen, c.enabled)).collect(),
            });
        }
        max_branch_points = max_branch_points.max(trace.len());
        match next_prefix(&trace) {
            Some(p) if executions < bounds.max_executions => prefix = p,
            Some(_) => {
                return Ok(Exploration {
                    executions,
                    complete: false,
                    max_branch_points,
                })
            }
            None => {
                return Ok(Exploration {
                    executions,
                    complete: true,
                    max_branch_points,
                })
            }
        }
    }
}

/// [`try_explore_with`] under default [`Bounds`].
///
/// # Errors
///
/// Same failure conditions as [`try_explore_with`].
pub fn try_explore<F>(f: F) -> Result<Exploration, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    try_explore_with(Bounds::default(), f)
}

/// Explores every schedule of `f`, panicking on a model failure or an
/// incomplete exploration. This is the loom-compatible entry point.
///
/// # Panics
///
/// Panics when any schedule fails the model's assertions, when the
/// model deadlocks, or when the exploration hits a bound before
/// covering every schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    match try_explore(f) {
        Ok(exploration) => assert!(
            exploration.complete,
            "exploration incomplete: {} executions hit the max_executions bound",
            exploration.executions
        ),
        Err(failure) => panic!("{failure}"),
    }
}
