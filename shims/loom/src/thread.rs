//! Shimmed `std::thread` subset: model-registered spawn/join.

use std::sync::{Arc, Mutex};

use crate::scheduler::{self, Execution};

/// Handle to a spawned thread, mirroring `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// Spawned outside a model: a real `std` thread.
    Native(std::thread::JoinHandle<T>),
    /// Spawned inside a model: the scheduler tracks it; the closure's
    /// result (or panic payload) lands in `slot`.
    Model {
        exec: Arc<Execution>,
        target: usize,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

impl<T> std::fmt::Debug for Inner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inner::Native(_) => f.write_str("Native"),
            Inner::Model { target, .. } => write!(f, "Model({target})"),
        }
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler and only runs when scheduled; outside a model this is
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match scheduler::context() {
        None => JoinHandle {
            inner: Inner::Native(std::thread::spawn(f)),
        },
        Some((exec, _me)) => {
            let (target, slot) = scheduler::spawn_model_thread(&exec, f);
            JoinHandle {
                inner: Inner::Model { exec, target, slot },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result or the
    /// panic payload, mirroring `std::thread::JoinHandle::join`.
    ///
    /// # Errors
    ///
    /// Returns the panic payload when the joined thread panicked.
    ///
    /// # Panics
    ///
    /// Panics if called on a model handle from outside its model
    /// context, or if the result slot is unexpectedly empty (a shim
    /// invariant violation).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Native(h) => h.join(),
            Inner::Model { exec, target, slot } => {
                let (_, me) = scheduler::context()
                    .expect("model JoinHandle joined outside its model context");
                scheduler::join_model_thread(&exec, me, target);
                let result = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                result.expect("finished model thread left no result")
            }
        }
    }
}

/// A scheduling point: inside a model, offers the scheduler a branch;
/// outside, forwards to `std::thread::yield_now`.
pub fn yield_now() {
    if scheduler::context().is_some() {
        scheduler::yield_point();
    } else {
        std::thread::yield_now();
    }
}
