//! Shimmed `std::sync` subset: model-aware atomic types.

/// Model-aware atomics mirroring `std::sync::atomic`.
///
/// Each type wraps its `std` counterpart and calls the scheduler's
/// yield point before every operation, so the interleaving explorer can
/// branch on which thread performs its next access. Outside a model
/// context (plain `cargo test` without `loom::model`), the yield point
/// is a no-op and the types behave exactly like `std` atomics.
pub mod atomic {
    use crate::scheduler::yield_point;

    pub use std::sync::atomic::Ordering;

    /// A shimmed memory fence: a scheduling point followed by the real
    /// `std::sync::atomic::fence`.
    pub fn fence(order: Ordering) {
        yield_point();
        std::sync::atomic::fence(order);
    }

    macro_rules! shim_atomic_int {
        ($(#[$meta:meta])* $Shim:ident, $Std:ident, $T:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            pub struct $Shim {
                inner: std::sync::atomic::$Std,
            }

            impl $Shim {
                /// Creates a new atomic holding `v`.
                #[must_use]
                pub const fn new(v: $T) -> Self {
                    Self {
                        inner: std::sync::atomic::$Std::new(v),
                    }
                }

                /// Loads the value (scheduling point).
                #[must_use]
                pub fn load(&self, order: Ordering) -> $T {
                    yield_point();
                    self.inner.load(order)
                }

                /// Stores `v` (scheduling point).
                pub fn store(&self, v: $T, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order);
                }

                /// Swaps in `v`, returning the previous value
                /// (scheduling point).
                pub fn swap(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.swap(v, order)
                }

                /// Compare-and-exchange (scheduling point).
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from
                /// `current`, exactly like the `std` counterpart.
                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-and-exchange (scheduling point). The
                /// shim never fails spuriously — under sequential
                /// consistency a spurious failure adds no schedules.
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from
                /// `current`.
                pub fn compare_exchange_weak(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Atomic add, returning the previous value
                /// (scheduling point).
                pub fn fetch_add(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic bitwise OR, returning the previous value
                /// (scheduling point).
                pub fn fetch_or(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_or(v, order)
                }

                /// Atomic bitwise AND, returning the previous value
                /// (scheduling point).
                pub fn fetch_and(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_and(v, order)
                }

                /// Atomic maximum, returning the previous value
                /// (scheduling point).
                pub fn fetch_max(&self, v: $T, order: Ordering) -> $T {
                    yield_point();
                    self.inner.fetch_max(v, order)
                }

                /// Consumes the atomic, returning the contained value.
                #[must_use]
                pub fn into_inner(self) -> $T {
                    self.inner.into_inner()
                }
            }
        };
    }

    shim_atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    shim_atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    shim_atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );

    /// Model-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic holding `v`.
        #[must_use]
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Loads the value (scheduling point).
        #[must_use]
        pub fn load(&self, order: Ordering) -> bool {
            yield_point();
            self.inner.load(order)
        }

        /// Stores `v` (scheduling point).
        pub fn store(&self, v: bool, order: Ordering) {
            yield_point();
            self.inner.store(v, order);
        }

        /// Swaps in `v`, returning the previous value (scheduling
        /// point).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.swap(v, order)
        }

        /// Compare-and-exchange (scheduling point).
        ///
        /// # Errors
        ///
        /// Returns the actual value when it differs from `current`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}
