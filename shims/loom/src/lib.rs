//! Offline API-compatible subset of [`loom`](https://docs.rs/loom) for
//! the gaussian-prq workspace.
//!
//! The build environment has no network access, so this shim vendors a
//! minimal deterministic interleaving explorer. [`model`] re-runs a
//! closure under **every** thread schedule within configured bounds: a
//! DFS over replayed schedule prefixes, where the shimmed atomics in
//! [`sync::atomic`] and the thread primitives in [`thread`] hand control
//! to the scheduler at every access.
//!
//! # What it checks — and what it cannot
//!
//! The shim explores interleavings under **sequential consistency**
//! only: every schedule is a total order of the model's synchronization
//! operations, and each shimmed atomic op takes effect immediately in
//! that order. Weak-memory effects (store buffering, reordering allowed
//! by `Relaxed`/`Acquire`/`Release`) are *not* modeled — the real loom
//! tracks those; this shim does not. The workspace compensates with a
//! ThreadSanitizer CI lane that runs the same algorithms under real
//! hardware concurrency. Use the shim to prove schedule-level protocol
//! correctness (lost updates, torn multi-word reads, lock-protocol
//! violations, deadlocks); use TSan to catch ordering mistakes.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{model, try_explore, try_explore_with, Bounds, Exploration, Failure};

/// Hints to the processor or scheduler, mirroring `loom::hint`.
pub mod hint {
    /// Yield point marking a spin-wait iteration; under a model this is
    /// a full scheduling point so other threads can make progress.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}
