//! Self-tests for the vendored interleaving explorer: the DFS must be
//! exhaustive (find every interleaving), deterministic (same schedule
//! count on every run), and sound (a genuinely racy model MUST fail).

use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};

/// Two threads each incrementing atomically always end at 2, under
/// every schedule, and the exploration terminates complete.
#[test]
fn atomic_counter_is_race_free_under_all_schedules() {
    let exploration = loom::try_explore(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("atomic counter model must not fail");
    assert!(exploration.complete, "exploration must be exhaustive");
    assert!(
        exploration.executions >= 2,
        "two racing increments must produce multiple schedules, got {}",
        exploration.executions
    );
}

/// The checker has teeth: a read-modify-write race (separate load and
/// store) loses an update in SOME schedule, and the explorer must find
/// that schedule and report the model's assertion failure.
#[test]
fn explorer_finds_the_lost_update_in_a_racy_counter() {
    let failure = loom::try_explore(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    })
    .expect_err("the explorer must find the lost-update schedule");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "failure must carry the schedule that produced it"
    );
}

/// Exploration is deterministic: the same model explores the same
/// number of schedules every time.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        loom::try_explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        })
        .expect("deterministic model must not fail")
    };
    let a = run();
    let b = run();
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.max_branch_points, b.max_branch_points);
    assert!(a.complete && a.executions >= 3);
}

/// Three threads: the explorer covers the full interleaving space of
/// two children racing against the parent.
#[test]
fn three_thread_model_explores_and_sums_correctly() {
    let exploration = loom::try_explore(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        n.fetch_add(1, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    })
    .expect("three-way atomic counter must not fail");
    assert!(exploration.complete);
    assert!(
        exploration.executions >= 6,
        "three racing threads must produce at least 3! orderings, got {}",
        exploration.executions
    );
}

/// A model that exceeds the step bound (unbounded spin with no writer)
/// is reported as a failure, not an infinite hang.
#[test]
fn unbounded_spin_is_cut_off_by_the_step_bound() {
    let bounds = loom::Bounds {
        max_threads: 2,
        max_steps: 64,
        max_executions: 1_000,
    };
    let failure = loom::try_explore_with(bounds, || {
        let flag = Arc::new(AtomicUsize::new(0));
        // Nobody ever sets the flag: this spin cannot terminate.
        while flag.load(Ordering::SeqCst) == 0 {
            loom::hint::spin_loop();
        }
    })
    .expect_err("an unbounded spin must trip the step bound");
    assert!(
        failure.message.contains("yield points"),
        "unexpected failure: {failure}"
    );
}

/// Outside any model context the shimmed types degrade to plain `std`
/// atomics and `std` threads.
#[test]
fn shim_falls_back_to_std_outside_a_model() {
    let n = Arc::new(AtomicUsize::new(40));
    let n2 = Arc::clone(&n);
    let t = loom::thread::spawn(move || n2.fetch_add(2, Ordering::SeqCst));
    t.join().unwrap();
    assert_eq!(n.load(Ordering::SeqCst), 42);
    loom::thread::yield_now();
    loom::sync::atomic::fence(Ordering::SeqCst);
}

/// `model` (the loom-compatible entry point) runs a passing model to
/// completion without panicking.
#[test]
fn model_entry_point_passes_on_a_correct_model() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || n2.swap(7, Ordering::SeqCst));
        let prev = t.join().unwrap();
        assert_eq!(prev, 0);
        assert_eq!(n.load(Ordering::SeqCst), 7);
    });
}
