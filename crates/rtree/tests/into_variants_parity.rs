//! Parity tests for the buffer-reusing `*_into` query variants: on a
//! seeded workload they must return exactly the same results, in the
//! same order, as the allocating entry points they back — and reused
//! buffers must be cleared between calls, never accumulated into.

use gprq_linalg::Vector;
use gprq_rtree::{KnnScratch, RTree, Rect, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                i,
            )
        })
        .collect()
}

fn build_tree(points: &[(Vector<2>, usize)]) -> RTree<2, usize> {
    let mut tree = RTree::new();
    for (p, id) in points {
        tree.insert(*p, *id);
    }
    tree.validate().expect("tree invariants");
    tree
}

#[test]
fn query_rect_into_matches_query_rect() {
    let points = random_points(2_500, 11, 1_000.0);
    let tree = build_tree(&points);
    let mut rng = StdRng::seed_from_u64(12);
    let mut buf = Vec::new();
    for _ in 0..60 {
        let c = Vector::from([rng.gen::<f64>() * 1_000.0, rng.gen::<f64>() * 1_000.0]);
        let half = Vector::from([rng.gen::<f64>() * 120.0, rng.gen::<f64>() * 120.0]);
        let rect = Rect::centered(&c, &half);

        let mut stats_a = SearchStats::default();
        let alloc = tree.query_rect_with_stats(&rect, &mut stats_a);
        let mut stats_b = SearchStats::default();
        tree.query_rect_into(&rect, &mut stats_b, &mut buf);

        // Identical results in identical order, identical traversal stats.
        let a: Vec<(&Vector<2>, usize)> = alloc.iter().map(|(p, d)| (*p, **d)).collect();
        let b: Vec<(&Vector<2>, usize)> = buf.iter().map(|(p, d)| (*p, **d)).collect();
        assert_eq!(a, b);
        assert_eq!(stats_a.nodes_visited, stats_b.nodes_visited);
        assert_eq!(stats_a.entries_checked, stats_b.entries_checked);
        assert_eq!(stats_a.results, stats_b.results);
    }
}

#[test]
fn try_query_rect_visit_matches_infallible_and_aborts_cleanly() {
    let points = random_points(2_500, 13, 1_000.0);
    let tree = build_tree(&points);
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..40 {
        let c = Vector::from([rng.gen::<f64>() * 1_000.0, rng.gen::<f64>() * 1_000.0]);
        let half = Vector::from([rng.gen::<f64>() * 120.0, rng.gen::<f64>() * 120.0]);
        let rect = Rect::centered(&c, &half);

        let mut stats_a = SearchStats::default();
        let mut infallible: Vec<(&Vector<2>, usize)> = Vec::new();
        tree.query_rect_visit(&rect, &mut stats_a, |p, d| infallible.push((p, *d)));

        // An always-Ok visitor is indistinguishable from the infallible path.
        let mut stats_b = SearchStats::default();
        let mut fallible: Vec<(&Vector<2>, usize)> = Vec::new();
        let ok: Result<(), ()> = tree.try_query_rect_visit(&rect, &mut stats_b, |p, d| {
            fallible.push((p, *d));
            Ok(())
        });
        assert_eq!(ok, Ok(()));
        assert_eq!(infallible, fallible);
        assert_eq!(stats_a, stats_b);

        // Aborting mid-traversal stops immediately after the cap.
        if infallible.len() >= 2 {
            let cap = infallible.len() / 2;
            let mut stats_c = SearchStats::default();
            let mut partial: Vec<(&Vector<2>, usize)> = Vec::new();
            let aborted = tree.try_query_rect_visit(&rect, &mut stats_c, |p, d| {
                if partial.len() == cap {
                    return Err("cap hit");
                }
                partial.push((p, *d));
                Ok(())
            });
            assert_eq!(aborted, Err("cap hit"));
            assert_eq!(partial.len(), cap);
            assert_eq!(&infallible[..cap], &partial[..]);
            assert!(stats_c.nodes_visited <= stats_a.nodes_visited);
        }
    }
}

#[test]
fn query_ball_into_matches_query_ball() {
    let points = random_points(2_500, 21, 1_000.0);
    let tree = build_tree(&points);
    let mut rng = StdRng::seed_from_u64(22);
    let mut buf = Vec::new();
    for _ in 0..60 {
        let c = Vector::from([rng.gen::<f64>() * 1_000.0, rng.gen::<f64>() * 1_000.0]);
        let r = rng.gen::<f64>() * 150.0;

        let alloc = tree.query_ball(&c, r);
        let mut stats = SearchStats::default();
        tree.query_ball_into(&c, r, &mut stats, &mut buf);

        let a: Vec<(&Vector<2>, usize)> = alloc.iter().map(|(p, d)| (*p, **d)).collect();
        let b: Vec<(&Vector<2>, usize)> = buf.iter().map(|(p, d)| (*p, **d)).collect();
        assert_eq!(a, b);
    }
}

#[test]
fn nearest_neighbors_into_matches_nearest_neighbors() {
    let points = random_points(2_500, 31, 1_000.0);
    let tree = build_tree(&points);
    let mut rng = StdRng::seed_from_u64(32);
    let mut scratch = KnnScratch::new();
    let mut buf = Vec::new();
    for _ in 0..40 {
        let c = Vector::from([rng.gen::<f64>() * 1_000.0, rng.gen::<f64>() * 1_000.0]);
        let k = 1 + rng.gen::<usize>() % 50;

        let mut stats_a = SearchStats::default();
        let alloc = tree.nearest_neighbors_with_stats(&c, k, &mut stats_a);
        let mut stats_b = SearchStats::default();
        tree.nearest_neighbors_into(&c, k, &mut stats_b, &mut scratch, &mut buf);

        let a: Vec<(f64, &Vector<2>, usize)> =
            alloc.iter().map(|(d, p, v)| (*d, *p, **v)).collect();
        let b: Vec<(f64, &Vector<2>, usize)> = buf.iter().map(|(d, p, v)| (*d, *p, **v)).collect();
        assert_eq!(a, b);
        assert_eq!(stats_a.nodes_visited, stats_b.nodes_visited);
    }
}

#[test]
fn into_buffers_are_cleared_not_appended() {
    let points = random_points(500, 41, 100.0);
    let tree = build_tree(&points);
    let everything = Rect::everything();
    let mut stats = SearchStats::default();
    let mut buf = Vec::new();
    tree.query_rect_into(&everything, &mut stats, &mut buf);
    assert_eq!(buf.len(), 500);
    // A second call must replace, not extend.
    tree.query_rect_into(&everything, &mut stats, &mut buf);
    assert_eq!(buf.len(), 500);

    let mut scratch = KnnScratch::new();
    let mut knn = Vec::new();
    tree.nearest_neighbors_into(
        &Vector::from([50.0, 50.0]),
        7,
        &mut stats,
        &mut scratch,
        &mut knn,
    );
    assert_eq!(knn.len(), 7);
    tree.nearest_neighbors_into(
        &Vector::from([50.0, 50.0]),
        7,
        &mut stats,
        &mut scratch,
        &mut knn,
    );
    assert_eq!(knn.len(), 7);
}
