//! Property tests for the flat index: across random workloads (including
//! empty trees) and degenerate rectangles (zero-width, inverted, huge),
//! the flat image must return identical candidate sets — and, where the
//! topology is shared, identical `SearchStats` tallies — to both the
//! sequential `RTree` and the `ConcurrentRTree`.

use gprq_linalg::Vector;
use gprq_rtree::{ConcurrentRTree, FlatRTree, Phase1Index, RStarParams, RTree, Rect, SearchStats};
use proptest::prelude::*;

/// One drawn rectangle before shaping: center, half-extents, selector.
type RawRect = ((f64, f64), (f64, f64), u8);

/// Candidate list a Phase-1 backend returns for one rectangle.
type Candidates<'t> = Vec<(&'t Vector<2>, &'t usize)>;

/// Sorted bitwise candidate key set: (x bits, y bits, payload).
fn key_set(candidates: &[(&Vector<2>, &usize)]) -> Vec<(u64, u64, usize)> {
    let mut keys: Vec<(u64, u64, usize)> = candidates
        .iter()
        .map(|(p, d)| (p[0].to_bits(), p[1].to_bits(), **d))
        .collect();
    keys.sort_unstable();
    keys
}

fn search<'t, I: Phase1Index<2, usize>>(
    index: &'t I,
    rect: &Rect<2>,
) -> (Candidates<'t>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    index.search_rect_into(rect, &mut stats, &mut out);
    (out, stats)
}

/// Point sets may be empty (empty-tree case is always in scope).
fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 0..160)
}

/// Raw rectangle draws: center, half-extent draw, and a shape selector.
fn arb_raw_rects() -> impl Strategy<Value = Vec<RawRect>> {
    proptest::collection::vec(
        (
            (-600.0f64..600.0, -600.0f64..600.0),
            (-40.0f64..40.0, -40.0f64..40.0),
            0u8..4,
        ),
        1..8,
    )
}

/// Materializes the interesting rectangle shapes from a raw draw:
/// ordinary boxes, zero-width (point) rects, inverted rects (a negative
/// half-extent makes `lo > hi`, matching nothing), and huge rects that
/// cover the whole workload.
fn make_rects(raw: &[RawRect]) -> Vec<Rect<2>> {
    raw.iter()
        .map(|&((cx, cy), (hx, hy), kind)| {
            let (hx, hy) = match kind {
                0 => (0.0, 0.0),
                1 => (1e4, 1e4),
                _ => (hx, hy),
            };
            // Built from lo/hi directly: a negative half-extent draw
            // yields an inverted rect, which `Rect::centered` rejects.
            Rect {
                lo: Vector::from([cx - hx, cy - hy]),
                hi: Vector::from([cx + hx, cy + hy]),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A frozen image shares the source topology: candidates (order
    /// included) and every stats counter must match the pointer tree
    /// bitwise, for both solo and packed entry points.
    #[test]
    fn prop_frozen_matches_rtree_bitwise(
        points in arb_points(),
        raw_rects in arb_raw_rects(),
        bulk in proptest::bool::weighted(0.5),
    ) {
        let rects = make_rects(&raw_rects);
        let records: Vec<(Vector<2>, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Vector::from([x, y]), i))
            .collect();
        let tree = if bulk {
            RTree::bulk_load(records, RStarParams::paper_default(2))
        } else {
            let mut t = RTree::new();
            for (p, id) in records {
                t.insert(p, id);
            }
            t
        };
        let flat = FlatRTree::freeze(tree.clone());
        prop_assert_eq!(flat.len(), tree.len());
        prop_assert_eq!(flat.node_count(), tree.node_count());

        for rect in &rects {
            let (tree_out, tree_stats) = search(&tree, rect);
            let (flat_out, flat_stats) = search(&flat, rect);
            prop_assert_eq!(&flat_out, &tree_out);
            prop_assert_eq!(flat_stats, tree_stats);
        }

        // Packed multi-rect descent: same contract per query.
        let mut stats = vec![SearchStats::default(); rects.len()];
        let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
        flat.query_rects_into(&rects, &mut stats, &mut out);
        for (q, rect) in rects.iter().enumerate() {
            let (tree_out, tree_stats) = search(&tree, rect);
            prop_assert_eq!(&out[q], &tree_out);
            prop_assert_eq!(stats[q], tree_stats);
        }
    }

    /// The packed (fanout-64) layout reshapes the tree, so node counters
    /// differ — but the candidate sets and the result tallies must be
    /// identical to both existing backends on every workload.
    #[test]
    fn prop_packed_layout_matches_both_backends(
        points in arb_points(),
        raw_rects in arb_raw_rects(),
    ) {
        let rects = make_rects(&raw_rects);
        let records: Vec<(Vector<2>, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Vector::from([x, y]), i))
            .collect();
        let tree = RTree::bulk_load(records.clone(), RStarParams::paper_default(2));
        let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        for (p, id) in &records {
            conc.insert(*p, *id);
        }
        let flat = FlatRTree::bulk_load(records);
        prop_assert_eq!(flat.len(), tree.len());

        for rect in &rects {
            let (tree_out, tree_stats) = search(&tree, rect);
            let (conc_out, conc_stats) = search(&conc, rect);
            let (flat_out, flat_stats) = search(&flat, rect);
            prop_assert_eq!(key_set(&flat_out), key_set(&tree_out));
            prop_assert_eq!(key_set(&flat_out), key_set(&conc_out));
            prop_assert_eq!(flat_stats.results, tree_stats.results);
            prop_assert_eq!(flat_stats.results, conc_stats.results);
        }
    }
}
