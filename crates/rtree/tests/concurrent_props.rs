//! Correctness suite for the concurrent OLC R\*-tree
//! (`gprq_rtree::concurrent`): quiescent parity against the
//! single-writer tree, real-thread readers racing writers, and the
//! ISSUE-8 ground-truth property — N concurrent readers over a mutating
//! tree always return exactly the single-threaded result set when the
//! mutations stay outside the query window.
//!
//! This file is also the ThreadSanitizer CI target for the concurrent
//! tree: the racing tests exercise the seqlock capture/validate path,
//! the append-only stores, and the pessimistic fallback under real
//! hardware reordering.

use gprq_linalg::Vector;
use gprq_rtree::{
    ConcQueryScratch, ConcurrentRTree, ContentionLadder, RStarParams, RTree, Rect, SearchStats,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random point cloud.
fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                i,
            )
        })
        .collect()
}

fn sorted_ids(hits: &[(&Vector<2>, &usize)]) -> Vec<usize> {
    let mut ids: Vec<usize> = hits.iter().map(|(_, d)| **d).collect();
    ids.sort_unstable();
    ids
}

fn brute_force_rect(points: &[(Vector<2>, usize)], rect: &Rect<2>) -> Vec<usize> {
    let mut ids: Vec<usize> = points
        .iter()
        .filter(|(p, _)| rect.contains_point(p))
        .map(|(_, id)| *id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn quiescent_parity_with_sequential_tree_across_seeds() {
    for seed in [3_u64, 17, 99] {
        let points = random_points(3_000, seed, 1000.0);
        let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        let mut seq = RTree::with_params(RStarParams::paper_default(2));
        for (p, d) in &points {
            conc.insert(*p, *d);
            seq.insert(*p, *d);
        }
        assert!(conc.validate().is_ok(), "{:?}", conc.validate());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..40 {
            let cx = rng.gen::<f64>() * 1000.0;
            let cy = rng.gen::<f64>() * 1000.0;
            let w = rng.gen::<f64>() * 200.0;
            let rect = Rect::centered(&Vector::from([cx, cy]), &Vector::from([w, w]));
            assert_eq!(
                sorted_ids(&conc.query_rect(&rect)),
                brute_force_rect(&points, &rect),
                "seed {seed}"
            );
            assert_eq!(
                sorted_ids(&seq.query_rect(&rect)),
                sorted_ids(&conc.query_rect(&rect)),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn removals_keep_parity_with_brute_force() {
    let mut points = random_points(1_500, 7, 500.0);
    let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, d) in &points {
        conc.insert(*p, *d);
    }
    // Remove every third record, checking parity as we go.
    let removed: Vec<(Vector<2>, usize)> = points.iter().step_by(3).copied().collect();
    for (p, d) in &removed {
        assert!(conc.remove(p, d), "record {d} must be present");
    }
    points.retain(|(_, d)| d % 3 != 0);
    assert_eq!(conc.len(), points.len());
    assert!(conc.validate().is_ok(), "{:?}", conc.validate());
    let rect = Rect::centered(&Vector::from([250.0, 250.0]), &Vector::from([180.0, 180.0]));
    assert_eq!(
        sorted_ids(&conc.query_rect(&rect)),
        brute_force_rect(&points, &rect)
    );
}

/// ISSUE-8 ground-truth property: N concurrent readers over a mutating
/// tree return exactly the single-threaded result set, because every
/// mutation stays outside the query window. Any torn snapshot, lost
/// subtree, or double-visited split half would make some read differ.
#[test]
fn concurrent_readers_see_exact_ground_truth_while_writer_mutates_outside() {
    // Stable population inside the window [0, 100]^2 …
    let inside = random_points(800, 11, 100.0);
    // … and a churn set strictly outside it (offset by +200).
    let churn: Vec<(Vector<2>, usize)> = random_points(800, 13, 100.0)
        .into_iter()
        .map(|(p, d)| (Vector::from([p[0] + 200.0, p[1] + 200.0]), d + 10_000))
        .collect();

    let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, d) in &inside {
        tree.insert(*p, *d);
    }
    let window = Rect::from_corners(&Vector::from([0.0, 0.0]), &Vector::from([100.0, 100.0]));
    let truth = brute_force_rect(&inside, &window);
    assert_eq!(truth.len(), inside.len(), "window covers the stable set");

    const READERS: usize = 4;
    const READS_PER_READER: usize = 60;
    let mut reader_stats = vec![SearchStats::default(); READERS];
    let tree_ref = &tree;
    let truth_ref = &truth;
    let window_ref = &window;
    std::thread::scope(|scope| {
        // Writer: churn inserts/removes strictly outside the window,
        // forcing splits, dead nodes, and MBR updates the readers race.
        scope.spawn(|| {
            for pass in 0..3 {
                for (p, d) in &churn {
                    tree.insert(*p, *d);
                }
                for (p, d) in &churn {
                    assert!(tree.remove(p, d), "pass {pass}: churn record present");
                }
            }
        });
        for stats in &mut reader_stats {
            scope.spawn(move || {
                let mut scratch = ConcQueryScratch::new();
                let mut out = Vec::new();
                for read in 0..READS_PER_READER {
                    tree_ref.query_rect_with_scratch(window_ref, stats, &mut scratch, &mut out);
                    assert_eq!(
                        &sorted_ids(&out),
                        truth_ref,
                        "read {read} diverged from ground truth"
                    );
                }
            });
        }
    });
    let mut total = SearchStats::default();
    for stats in &reader_stats {
        total.merge(stats);
    }
    // Optimistic visits cost at least one attempt each; only the
    // pessimistic fallback visits nodes without attempts.
    if total.olc_fallbacks == 0 {
        assert!(
            total.olc_attempts >= total.nodes_visited,
            "every optimistic visit costs at least one attempt"
        );
    }
    assert!(
        total.olc_attempts > 0,
        "readers must have read optimistically"
    );
    // The ladder is bounded: each query makes at most
    // (restart_budget + 1) descents, each spending at most
    // node_attempts per node it touches (visited nodes plus at most one
    // failing node per descent) before the lock-based fallback.
    let ladder = ContentionLadder::default();
    let per_visit_cap = ladder.node_attempts * (ladder.restart_budget + 1);
    let total_queries = READERS * READS_PER_READER;
    assert!(
        total.olc_attempts
            <= per_visit_cap.saturating_mul(total.nodes_visited.saturating_add(total_queries)),
        "retry explosion: {} attempts for {} visits over {} queries",
        total.olc_attempts,
        total.nodes_visited,
        total_queries
    );
    assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    assert_eq!(sorted_ids(&tree.query_rect(&window)), truth);
}

/// Readers racing a writer that inserts *into* the window: each read
/// must return a consistent subset — exactly the stable records plus
/// some prefix-closed subset of the already-inserted growth records,
/// never a torn half-record or a duplicate.
#[test]
fn concurrent_readers_never_see_duplicates_or_tears_during_window_growth() {
    let stable = random_points(400, 21, 100.0);
    let growth: Vec<(Vector<2>, usize)> = random_points(400, 23, 100.0)
        .into_iter()
        .map(|(p, d)| (p, d + 50_000))
        .collect();
    let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, d) in &stable {
        tree.insert(*p, *d);
    }
    let window = Rect::from_corners(&Vector::from([0.0, 0.0]), &Vector::from([100.0, 100.0]));
    let stable_ids = brute_force_rect(&stable, &window);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for (p, d) in &growth {
                tree.insert(*p, *d);
            }
        });
        for _ in 0..3 {
            scope.spawn(|| {
                let mut stats = SearchStats::default();
                let mut scratch = ConcQueryScratch::new();
                let mut out = Vec::new();
                for _ in 0..80 {
                    tree.query_rect_with_scratch(&window, &mut stats, &mut scratch, &mut out);
                    let ids = sorted_ids(&out);
                    // No duplicates (a reader visiting both split halves
                    // of one node would double-count records).
                    let mut dedup = ids.clone();
                    dedup.dedup();
                    assert_eq!(ids, dedup, "duplicate records in one read");
                    // Every stable record present, every extra one a
                    // real growth record.
                    let mut stable_seen = 0_usize;
                    for id in &ids {
                        if *id < 50_000 {
                            stable_seen += 1;
                        } else {
                            assert!(growth.iter().any(|(_, d)| d == id), "phantom record {id}");
                        }
                    }
                    assert_eq!(stable_seen, stable_ids.len(), "lost a stable record");
                }
            });
        }
    });
    assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    let final_ids = sorted_ids(&tree.query_rect(&window));
    let mut want: Vec<usize> = stable_ids;
    want.extend(brute_force_rect(&growth, &window));
    want.sort_unstable();
    assert_eq!(final_ids, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized operation sequences applied to both trees: rectangle
    /// queries agree exactly after every batch.
    #[test]
    fn random_ops_keep_exact_parity(seed in 0_u64..1_000, n in 50_usize..400) {
        let points = random_points(n, seed, 300.0);
        let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        let mut seq = RTree::with_params(RStarParams::paper_default(2));
        for (p, d) in &points {
            conc.insert(*p, *d);
            seq.insert(*p, *d);
        }
        // Remove a deterministic subset through both trees.
        for (p, d) in points.iter().filter(|(_, d)| d % 5 == 0) {
            prop_assert!(conc.remove(p, d));
            prop_assert!(seq.remove(p, d));
        }
        prop_assert_eq!(conc.len(), seq.len());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        for _ in 0..10 {
            let cx = rng.gen::<f64>() * 300.0;
            let cy = rng.gen::<f64>() * 300.0;
            let w = rng.gen::<f64>() * 80.0;
            let rect = Rect::centered(&Vector::from([cx, cy]), &Vector::from([w, w]));
            prop_assert_eq!(
                sorted_ids(&conc.query_rect(&rect)),
                sorted_ids(&seq.query_rect(&rect))
            );
        }
        prop_assert!(conc.validate().is_ok());
    }
}
