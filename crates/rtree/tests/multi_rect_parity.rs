//! Parity tests for the batched multi-rectangle probe: a single
//! `query_rects_into` descent must reproduce, per query, exactly the
//! candidates (same order) and exactly the `SearchStats` of N solo
//! `query_rect_into` calls — batching is a pure amortization. The trait
//! default (used by `ConcurrentRTree`) is held to the same contract.

use gprq_linalg::Vector;
use gprq_rtree::{ConcurrentRTree, Phase1Index, RTree, Rect, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                i,
            )
        })
        .collect()
}

fn build_tree(points: &[(Vector<2>, usize)]) -> RTree<2, usize> {
    let mut tree = RTree::new();
    for (p, id) in points {
        tree.insert(*p, *id);
    }
    tree.validate().expect("tree invariants");
    tree
}

fn random_rects(n: usize, seed: u64, extent: f64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]);
            let half = Vector::from([rng.gen::<f64>() * 120.0, rng.gen::<f64>() * 120.0]);
            Rect::centered(&c, &half)
        })
        .collect()
}

/// Solo baseline for one rectangle via the single-rect entry point.
fn solo<'t>(
    tree: &'t RTree<2, usize>,
    rect: &Rect<2>,
) -> (Vec<(&'t Vector<2>, &'t usize)>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    tree.query_rect_into(rect, &mut stats, &mut out);
    (out, stats)
}

#[test]
fn multi_rect_matches_solo_bitwise() {
    let points = random_points(3_000, 51, 1_000.0);
    let tree = build_tree(&points);
    for (rect_seed, batch) in [(52u64, 1usize), (53, 2), (54, 7), (55, 16), (56, 33)] {
        let rects = random_rects(batch, rect_seed, 1_000.0);
        let mut stats = vec![SearchStats::default(); batch];
        let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); batch];
        tree.query_rects_into(&rects, &mut stats, &mut out);

        for q in 0..batch {
            let (solo_out, solo_stats) = solo(&tree, &rects[q]);
            assert_eq!(out[q], solo_out, "candidates diverge for query {q}");
            assert_eq!(stats[q], solo_stats, "stats diverge for query {q}");
        }
    }
}

#[test]
fn duplicate_and_disjoint_rects_stay_independent() {
    let points = random_points(1_200, 61, 500.0);
    let tree = build_tree(&points);
    let hot = Rect::centered(&Vector::from([250.0, 250.0]), &Vector::from([80.0, 80.0]));
    let cold = Rect::centered(
        &Vector::from([-1_000.0, -1_000.0]),
        &Vector::from([1.0, 1.0]),
    );
    let rects = [hot, hot, cold, hot];
    let mut stats = vec![SearchStats::default(); rects.len()];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    tree.query_rects_into(&rects, &mut stats, &mut out);

    let (hot_out, hot_stats) = solo(&tree, &hot);
    let (cold_out, cold_stats) = solo(&tree, &cold);
    assert!(!hot_out.is_empty());
    assert!(cold_out.is_empty());
    for q in [0, 1, 3] {
        assert_eq!(out[q], hot_out);
        assert_eq!(stats[q], hot_stats);
    }
    assert_eq!(out[2], cold_out);
    assert_eq!(stats[2], cold_stats);
}

#[test]
fn empty_inputs_and_empty_tree_are_well_defined() {
    let tree = build_tree(&random_points(300, 71, 100.0));

    // No rects: nothing happens, buffers beyond the batch are still cleared.
    let mut stats: Vec<SearchStats> = Vec::new();
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![vec![]; 2];
    out[0].push((tree.iter().next().unwrap().0, tree.iter().next().unwrap().1));
    tree.query_rects_into(&[], &mut stats, &mut out);
    assert!(out[0].is_empty() && out[1].is_empty());

    // Empty tree: every query answers empty with zero stats.
    let empty: RTree<2, usize> = RTree::new();
    let rects = [Rect::everything(), Rect::everything()];
    let mut stats = vec![SearchStats::default(); 2];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); 2];
    empty.query_rects_into(&rects, &mut stats, &mut out);
    for q in 0..2 {
        assert!(out[q].is_empty());
        assert_eq!(stats[q], SearchStats::default());
    }
}

#[test]
fn shorter_stat_slice_bounds_the_batch() {
    let tree = build_tree(&random_points(600, 81, 200.0));
    let rects = random_rects(4, 82, 200.0);
    // Only two stats slots: queries 2 and 3 must not run (their buffers
    // are still cleared).
    let mut stats = vec![SearchStats::default(); 2];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); 4];
    tree.query_rects_into(&rects, &mut stats, &mut out);
    for q in 0..2 {
        let (solo_out, solo_stats) = solo(&tree, &rects[q]);
        assert_eq!(out[q], solo_out);
        assert_eq!(stats[q], solo_stats);
    }
    assert!(out[2].is_empty() && out[3].is_empty());
}

#[test]
fn trait_default_on_concurrent_tree_matches_sequential_tree() {
    let points = random_points(1_500, 91, 400.0);
    let seq = build_tree(&points);
    let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, id) in &points {
        conc.insert(*p, *id);
    }
    let rects = random_rects(9, 92, 400.0);

    let mut seq_stats = vec![SearchStats::default(); rects.len()];
    let mut seq_out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    Phase1Index::search_rects_into(&seq, &rects, &mut seq_stats, &mut seq_out);

    let mut conc_stats = vec![SearchStats::default(); rects.len()];
    let mut conc_out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    Phase1Index::search_rects_into(&conc, &rects, &mut conc_stats, &mut conc_out);

    for q in 0..rects.len() {
        // Same answer sets (order may differ across tree shapes): compare
        // as sorted id lists, and values bitwise.
        let mut a: Vec<(u64, u64, usize)> = seq_out[q]
            .iter()
            .map(|(p, d)| (p[0].to_bits(), p[1].to_bits(), **d))
            .collect();
        let mut b: Vec<(u64, u64, usize)> = conc_out[q]
            .iter()
            .map(|(p, d)| (p[0].to_bits(), p[1].to_bits(), **d))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "answer sets diverge for query {q}");
        assert_eq!(conc_stats[q].results, seq_stats[q].results);
    }
}
