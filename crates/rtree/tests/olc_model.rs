//! Exhaustive interleaving model checks for the OLC seqlock word
//! (`VersionCell`), under the vendored loom shim.
//!
//! Run with `cargo test -p gprq-rtree --features model-check --test
//! olc_model`. Each test re-executes its model closure under **every**
//! thread schedule the explorer's bounds admit (the explorer reports
//! `complete == true`), so a passing test is a proof over the whole
//! schedule space — under sequential consistency; weak-memory orderings
//! are covered separately by the TSan lane (see DESIGN.md §12).
#![cfg(feature = "model-check")]

use std::sync::Arc;

use gprq_rtree::VersionCell;
use loom::sync::atomic::{AtomicU64, Ordering};

/// A version word plus the two-word payload it protects. The payload
/// words are loom atomics accessed with `Relaxed`, which models plain
/// (non-atomic) memory: each access is a scheduling point, so the
/// explorer can interleave a writer between a reader's two loads —
/// exactly the torn read the seqlock must detect.
struct Node {
    version: VersionCell,
    lo: AtomicU64,
    hi: AtomicU64,
}

impl Node {
    fn new() -> Self {
        Node {
            version: VersionCell::new(),
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
        }
    }

    /// Writes the pair `(x, 2x)` under the write lock.
    fn locked_write(&self, x: u64) -> bool {
        let Some(guard) = self.version.write_lock() else {
            return false;
        };
        assert!(guard.version() & 1 == 1, "locked version must be odd");
        self.lo.store(x, Ordering::Relaxed);
        self.hi.store(2 * x, Ordering::Relaxed);
        true
    }

    /// One optimistic read attempt of the pair.
    fn read_pair(&self, max_retries: usize) -> Option<(u64, u64)> {
        self.version.read_consistent(max_retries, || {
            (
                self.lo.load(Ordering::Relaxed),
                self.hi.load(Ordering::Relaxed),
            )
        })
    }
}

/// One writer racing one optimistic reader: across EVERY schedule, a
/// snapshot that survives validation is never torn — it is either the
/// initial `(0, 0)` or the complete write `(7, 14)`.
#[test]
fn validated_reads_are_never_torn_one_writer_one_reader() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                assert!(node.locked_write(7), "uncontended write lock must succeed");
            })
        };
        if let Some((lo, hi)) = node.read_pair(2) {
            assert!(
                (lo, hi) == (0, 0) || (lo, hi) == (7, 14),
                "validated snapshot is torn: ({lo}, {hi})"
            );
        }
        writer.join().unwrap();
        // After the writer retires, the final state is fully published.
        let v = node.version.version();
        assert_eq!(v, 2, "one completed write advances the version by 2");
        assert_eq!(node.read_pair(0), Some((7, 14)));
    })
    .expect("seqlock reader/writer model must hold under every schedule");
    assert!(
        exploration.complete,
        "exploration hit a bound — the proof is not exhaustive"
    );
    assert!(
        exploration.executions >= 10,
        "suspiciously few schedules explored: {}",
        exploration.executions
    );
}

/// Two writers: the CAS protocol admits at most one lock holder at a
/// time, every completed write bumps the version by exactly 2, and at
/// least one writer always gets through from an unlocked start.
#[test]
fn write_lock_is_mutually_exclusive_between_two_writers() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        // Success tallies use std (non-shim) atomics so they are not
        // scheduling points — they record, they don't interleave.
        let wins = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let other = {
            let node = Arc::clone(&node);
            let wins = Arc::clone(&wins);
            loom::thread::spawn(move || {
                if node.locked_write(3) {
                    wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            })
        };
        if node.locked_write(5) {
            wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        other.join().unwrap();
        let wins = wins.load(std::sync::atomic::Ordering::SeqCst);
        assert!(wins >= 1, "from an unlocked cell, the first CAS wins");
        assert_eq!(
            node.version.version(),
            2 * wins,
            "each completed write advances the version by exactly 2"
        );
        assert!(!node.version.is_write_locked(), "all guards released");
        // Whichever writer won last, the pair is consistent.
        let (lo, hi) = node.read_pair(0).expect("quiescent read must validate");
        assert_eq!(
            hi,
            2 * lo,
            "payload torn after writers retired: ({lo}, {hi})"
        );
    })
    .expect("two-writer mutual exclusion must hold under every schedule");
    assert!(exploration.complete);
}

/// The checker has teeth: a writer that SKIPS the lock produces a torn
/// snapshot that `validate` cannot detect (the version never moves),
/// and the explorer must find a schedule where the reader observes it.
/// This proves the harness actually explores the interleavings the
/// locked protocol excludes — the passing tests above are not vacuous.
#[test]
fn unlocked_writer_produces_a_validated_torn_read_in_some_schedule() {
    // Recorded across executions with a std atomic: the explorer reruns
    // the closure many times; we need "some schedule saw it", not
    // "every schedule saw it".
    let torn_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let torn_recorder = Arc::clone(&torn_seen);
    let exploration = loom::try_explore(move || {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                // BROKEN on purpose: no write_lock around the pair.
                node.lo.store(9, Ordering::Relaxed);
                node.hi.store(18, Ordering::Relaxed);
            })
        };
        if let Some((lo, hi)) = node.read_pair(0) {
            if hi != 2 * lo {
                torn_recorder.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        writer.join().unwrap();
    })
    .expect("the broken model itself asserts nothing, so it cannot fail");
    assert!(exploration.complete);
    assert!(
        torn_seen.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "no schedule produced a validated torn read — the explorer is \
         not actually interleaving payload accesses"
    );
}

/// Reader retries ride out a writer: with enough retries the reader
/// always lands a validated snapshot in this bounded model.
#[test]
fn reader_with_retries_always_converges_after_writer_retires() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                assert!(node.locked_write(11));
            })
        };
        writer.join().unwrap();
        // The writer has fully retired: one attempt must succeed.
        let pair = node.read_pair(0);
        assert_eq!(pair, Some((11, 22)));
    })
    .expect("post-join reads are quiescent and must validate");
    assert!(exploration.complete);
}
