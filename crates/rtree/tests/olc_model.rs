//! Exhaustive interleaving model checks for the OLC seqlock word
//! (`VersionCell`), under the vendored loom shim.
//!
//! Run with `cargo test -p gprq-rtree --features model-check --test
//! olc_model`. Each test re-executes its model closure under **every**
//! thread schedule the explorer's bounds admit (the explorer reports
//! `complete == true`), so a passing test is a proof over the whole
//! schedule space — under sequential consistency; weak-memory orderings
//! are covered separately by the TSan lane (see DESIGN.md §12).
#![cfg(feature = "model-check")]

use std::sync::Arc;

use gprq_rtree::{ReadOutcome, VersionCell};
use loom::sync::atomic::{AtomicU64, Ordering};

/// A version word plus the two-word payload it protects. The payload
/// words are loom atomics accessed with `Relaxed`, which models plain
/// (non-atomic) memory: each access is a scheduling point, so the
/// explorer can interleave a writer between a reader's two loads —
/// exactly the torn read the seqlock must detect.
struct Node {
    version: VersionCell,
    lo: AtomicU64,
    hi: AtomicU64,
}

impl Node {
    fn new() -> Self {
        Node {
            version: VersionCell::new(),
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
        }
    }

    /// Writes the pair `(x, 2x)` under the write lock.
    fn locked_write(&self, x: u64) -> bool {
        let Some(guard) = self.version.write_lock() else {
            return false;
        };
        assert!(guard.version() & 1 == 1, "locked version must be odd");
        self.lo.store(x, Ordering::Relaxed);
        self.hi.store(2 * x, Ordering::Relaxed);
        true
    }

    /// One optimistic read attempt of the pair.
    fn read_pair(&self, max_retries: usize) -> Option<(u64, u64)> {
        self.version.read_consistent(max_retries, || {
            (
                self.lo.load(Ordering::Relaxed),
                self.hi.load(Ordering::Relaxed),
            )
        })
    }
}

/// One writer racing one optimistic reader: across EVERY schedule, a
/// snapshot that survives validation is never torn — it is either the
/// initial `(0, 0)` or the complete write `(7, 14)`.
#[test]
fn validated_reads_are_never_torn_one_writer_one_reader() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                assert!(node.locked_write(7), "uncontended write lock must succeed");
            })
        };
        if let Some((lo, hi)) = node.read_pair(2) {
            assert!(
                (lo, hi) == (0, 0) || (lo, hi) == (7, 14),
                "validated snapshot is torn: ({lo}, {hi})"
            );
        }
        writer.join().unwrap();
        // After the writer retires, the final state is fully published.
        let v = node.version.version();
        assert_eq!(v, 2, "one completed write advances the version by 2");
        assert_eq!(node.read_pair(0), Some((7, 14)));
    })
    .expect("seqlock reader/writer model must hold under every schedule");
    assert!(
        exploration.complete,
        "exploration hit a bound — the proof is not exhaustive"
    );
    assert!(
        exploration.executions >= 10,
        "suspiciously few schedules explored: {}",
        exploration.executions
    );
}

/// Two writers: the CAS protocol admits at most one lock holder at a
/// time, every completed write bumps the version by exactly 2, and at
/// least one writer always gets through from an unlocked start.
#[test]
fn write_lock_is_mutually_exclusive_between_two_writers() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        // Success tallies use std (non-shim) atomics so they are not
        // scheduling points — they record, they don't interleave.
        let wins = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let other = {
            let node = Arc::clone(&node);
            let wins = Arc::clone(&wins);
            loom::thread::spawn(move || {
                if node.locked_write(3) {
                    wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            })
        };
        if node.locked_write(5) {
            wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        other.join().unwrap();
        let wins = wins.load(std::sync::atomic::Ordering::SeqCst);
        assert!(wins >= 1, "from an unlocked cell, the first CAS wins");
        assert_eq!(
            node.version.version(),
            2 * wins,
            "each completed write advances the version by exactly 2"
        );
        assert!(!node.version.is_write_locked(), "all guards released");
        // Whichever writer won last, the pair is consistent.
        let (lo, hi) = node.read_pair(0).expect("quiescent read must validate");
        assert_eq!(
            hi,
            2 * lo,
            "payload torn after writers retired: ({lo}, {hi})"
        );
    })
    .expect("two-writer mutual exclusion must hold under every schedule");
    assert!(exploration.complete);
}

/// The checker has teeth: a writer that SKIPS the lock produces a torn
/// snapshot that `validate` cannot detect (the version never moves),
/// and the explorer must find a schedule where the reader observes it.
/// This proves the harness actually explores the interleavings the
/// locked protocol excludes — the passing tests above are not vacuous.
#[test]
fn unlocked_writer_produces_a_validated_torn_read_in_some_schedule() {
    // Recorded across executions with a std atomic: the explorer reruns
    // the closure many times; we need "some schedule saw it", not
    // "every schedule saw it".
    let torn_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let torn_recorder = Arc::clone(&torn_seen);
    let exploration = loom::try_explore(move || {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                // BROKEN on purpose: no write_lock around the pair.
                node.lo.store(9, Ordering::Relaxed);
                node.hi.store(18, Ordering::Relaxed);
            })
        };
        if let Some((lo, hi)) = node.read_pair(0) {
            if hi != 2 * lo {
                torn_recorder.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        writer.join().unwrap();
    })
    .expect("the broken model itself asserts nothing, so it cannot fail");
    assert!(exploration.complete);
    assert!(
        torn_seen.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "no schedule produced a validated torn read — the explorer is \
         not actually interleaving payload accesses"
    );
}

/// A parent/child pair under lock coupling: the parent's `ptr` word
/// names the active child, and a "split" writer repoints it to the
/// pre-populated sibling and then poisons the abandoned child — all
/// under both write locks, the way an OLC tree node split abandons its
/// old page. The two readers below differ ONLY in when they validate
/// the parent relative to taking the child guard; that ordering is
/// exactly what the `olc-use-before-validate` audit rule pins for the
/// real tree descent.
struct TwoCell {
    parent: VersionCell,
    ptr: AtomicU64,
    children: [Node; 2],
}

impl TwoCell {
    /// Child 0 active with `(7, 14)`; child 1 pre-populated with
    /// `(21, 42)` so the split writer only repoints and poisons —
    /// keeping its scheduling-point count (and the schedule space)
    /// small enough for exhaustive exploration.
    fn new() -> Self {
        let cell = TwoCell {
            parent: VersionCell::new(),
            ptr: AtomicU64::new(0),
            children: [Node::new(), Node::new()],
        };
        cell.children[0].lo.store(7, Ordering::Relaxed);
        cell.children[0].hi.store(14, Ordering::Relaxed);
        cell.children[1].lo.store(21, Ordering::Relaxed);
        cell.children[1].hi.store(42, Ordering::Relaxed);
        cell
    }

    /// Split: repoint `ptr` to child 1 and poison child 0's payload,
    /// holding the parent lock and the abandoned child's lock for the
    /// whole operation.
    fn split(&self) {
        let parent_guard = self
            .parent
            .write_lock()
            .expect("uncontended parent lock must succeed");
        let child_guard = self.children[0]
            .version
            .write_lock()
            .expect("uncontended child lock must succeed");
        self.ptr.store(1, Ordering::Relaxed);
        self.children[0].lo.store(99, Ordering::Relaxed);
        drop(child_guard);
        drop(parent_guard);
    }

    /// CORRECT lock-coupled read: take the child guard BEFORE
    /// validating the parent, so the parent validation also vouches
    /// for the `ptr` dereference that chose the child.
    fn coupled_read(&self) -> Option<(u64, u64)> {
        let parent_guard = self.parent.optimistic_read()?;
        let idx = self.ptr.load(Ordering::Relaxed) as usize;
        let child = &self.children[idx & 1];
        let child_guard = child.version.optimistic_read()?;
        if !parent_guard.validate() {
            return None;
        }
        let lo = child.lo.load(Ordering::Relaxed);
        let hi = child.hi.load(Ordering::Relaxed);
        if !child_guard.validate() {
            return None;
        }
        Some((lo, hi))
    }

    /// BROKEN on purpose: validates the parent BEFORE taking the child
    /// guard. In the handoff window between the two, a completed split
    /// can poison the chosen child without either validation noticing.
    fn naive_read(&self) -> Option<(u64, u64)> {
        let parent_guard = self.parent.optimistic_read()?;
        let idx = self.ptr.load(Ordering::Relaxed) as usize;
        if !parent_guard.validate() {
            return None;
        }
        let child = &self.children[idx & 1];
        let child_guard = child.version.optimistic_read()?;
        let lo = child.lo.load(Ordering::Relaxed);
        let hi = child.hi.load(Ordering::Relaxed);
        if !child_guard.validate() {
            return None;
        }
        Some((lo, hi))
    }
}

/// Across EVERY schedule of a concurrent split, the lock-coupled
/// reader only ever returns one of the two consistent pairs — the
/// poisoned `(99, 14)` never escapes validation.
#[test]
fn lock_coupled_read_never_yields_the_poisoned_child() {
    let exploration = loom::try_explore(|| {
        let cell = Arc::new(TwoCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || cell.split())
        };
        if let Some((lo, hi)) = cell.coupled_read() {
            assert!(
                (lo, hi) == (7, 14) || (lo, hi) == (21, 42),
                "poisoned snapshot escaped lock coupling: ({lo}, {hi})"
            );
        }
        writer.join().unwrap();
        // After the split retires, a read must land on the new child.
        assert_eq!(cell.coupled_read(), Some((21, 42)));
    })
    .expect("lock-coupled handoff must hold under every schedule");
    assert!(
        exploration.complete,
        "exploration hit a bound — the proof is not exhaustive"
    );
    assert!(
        exploration.executions >= 50,
        "suspiciously few schedules explored: {}",
        exploration.executions
    );
}

/// The coupling order has teeth: the reader that validates the parent
/// before taking the child guard DOES observe the poisoned child in
/// some schedule. This pins the handoff window the correct reader
/// closes — and is the concurrent counterpart of the static
/// `olc-use-before-validate` rule's dominance requirement.
#[test]
fn naive_handoff_admits_the_poisoned_child_in_some_schedule() {
    let poison_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let recorder = Arc::clone(&poison_seen);
    let exploration = loom::try_explore(move || {
        let cell = Arc::new(TwoCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || cell.split())
        };
        if let Some((lo, _hi)) = cell.naive_read() {
            if lo == 99 {
                recorder.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        writer.join().unwrap();
    })
    .expect("the naive reader asserts nothing, so it cannot fail");
    assert!(exploration.complete);
    assert!(
        poison_seen.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "no schedule leaked the poisoned child through the naive \
         handoff — the model is not exercising the window that lock \
         coupling closes"
    );
}

/// High bit marks a killed node, mirroring `concurrent.rs`'s
/// `DEAD_BIT` packing in `ConcNode::meta`.
const MODEL_DEAD_BIT: u64 = 1 << 63;

/// A version-protected single word, standing in for a `ConcNode`'s
/// packed `meta` (dead flag + payload in one word).
struct MetaChild {
    version: VersionCell,
    meta: AtomicU64,
}

impl MetaChild {
    fn new(payload: u64) -> Self {
        MetaChild {
            version: VersionCell::new(),
            meta: AtomicU64::new(payload),
        }
    }
}

/// One validated capture of `word` under `cell`, the way
/// `ConcurrentRTree::read_node` captures a node snapshot:
/// `read_tracked(0, capture)` — speculate, then accept only a
/// validated value.
fn validated_word(cell: &VersionCell, word: &AtomicU64) -> Option<u64> {
    match cell.read_tracked(0, || word.load(Ordering::Relaxed)) {
        ReadOutcome::Validated { value, .. } => Some(value),
        ReadOutcome::Contended { .. } | ReadOutcome::LockedOnArrival { .. } => None,
    }
}

/// Two-level descent racing a node split, modeling the REAL
/// `ConcurrentRTree` read protocol: per-node validated snapshots plus
/// a dead-flag restart — deliberately NO lock coupling (contrast
/// [`TwoCell::coupled_read`]). The protocol is sound without coupling
/// because the split writer marks the abandoned node DEAD inside the
/// same version-locked write that repoints the parent, so a reader
/// that raced past the parent either fails the child's validation or
/// sees the dead flag and restarts the descent.
struct SplitRace {
    parent: VersionCell,
    /// The parent's child slot: index of the active child.
    slot: AtomicU64,
    children: [MetaChild; 2],
}

impl SplitRace {
    /// Child 0 active with payload 7; sibling child 1 pre-populated
    /// with 21, so the split only repoints and kills (few scheduling
    /// points keeps the exploration exhaustive).
    fn new() -> Self {
        SplitRace {
            parent: VersionCell::new(),
            slot: AtomicU64::new(0),
            children: [MetaChild::new(7), MetaChild::new(21)],
        }
    }

    /// Split: under the parent and victim locks (PR-7 lock order:
    /// parent before child), repoint the slot to child 1 and kill
    /// child 0, poisoning its payload word the way a real split node
    /// stops being meaningful.
    fn split(&self) {
        let parent_guard = self
            .parent
            .write_lock()
            .expect("uncontended parent lock must succeed");
        let child_guard = self.children[0]
            .version
            .write_lock()
            .expect("uncontended child lock must succeed");
        self.slot.store(1, Ordering::Relaxed);
        self.children[0]
            .meta
            .store(MODEL_DEAD_BIT | 99, Ordering::Relaxed);
        drop(child_guard);
        drop(parent_guard);
    }

    /// The real descent ladder, restart budget 1: validated parent
    /// snapshot chooses the child; a validated-but-dead child restarts
    /// the whole descent; any contention gives up (`None` stands for
    /// the pessimistic fallback the real tree degrades to).
    fn descend(&self) -> Option<u64> {
        for _ in 0..2 {
            let idx = validated_word(&self.parent, &self.slot)?;
            let child = self.children.get((idx & 1) as usize)?;
            let meta = validated_word(&child.version, &child.meta)?;
            if meta & MODEL_DEAD_BIT != 0 {
                continue;
            }
            return Some(meta);
        }
        None
    }

    /// BROKEN on purpose: same per-node validation, but the dead flag
    /// is stripped instead of honored.
    fn descend_ignoring_dead(&self) -> Option<u64> {
        let idx = validated_word(&self.parent, &self.slot)?;
        let child = self.children.get((idx & 1) as usize)?;
        validated_word(&child.version, &child.meta).map(|m| m & !MODEL_DEAD_BIT)
    }
}

/// Across EVERY schedule of a two-level descent racing a node split,
/// the dead-flag protocol returns only the pre-split payload (7) or
/// the post-split payload (21) — never the poisoned word of the
/// abandoned node, and never a torn mix. This is the model-checked
/// counterpart of `concurrent.rs`'s "why per-node validation
/// suffices" argument.
#[test]
fn descent_racing_a_split_sees_pre_or_post_state_never_torn() {
    let exploration = loom::try_explore(|| {
        let race = Arc::new(SplitRace::new());
        let writer = {
            let race = Arc::clone(&race);
            loom::thread::spawn(move || race.split())
        };
        if let Some(payload) = race.descend() {
            assert!(
                payload == 7 || payload == 21,
                "descent returned a torn or dead payload: {payload}"
            );
        }
        writer.join().unwrap();
        // Split retired: the descent must land on the new child. This
        // also exercises the dead-restart rung deterministically when
        // the racing descend above consumed child 0's death.
        assert_eq!(race.descend(), Some(21));
    })
    .expect("dead-flag descent must hold under every schedule");
    assert!(
        exploration.complete,
        "exploration hit a bound — the proof is not exhaustive"
    );
    assert!(
        exploration.executions >= 50,
        "suspiciously few schedules explored: {}",
        exploration.executions
    );
}

/// The dead flag has teeth: a reader that validates every node but
/// ignores the flag DOES surface the abandoned node's poisoned
/// payload in some schedule (validation alone cannot reject a
/// node that was killed before the snapshot began).
#[test]
fn ignoring_the_dead_flag_leaks_the_abandoned_node_in_some_schedule() {
    let poison_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let recorder = Arc::clone(&poison_seen);
    let exploration = loom::try_explore(move || {
        let race = Arc::new(SplitRace::new());
        let writer = {
            let race = Arc::clone(&race);
            loom::thread::spawn(move || race.split())
        };
        if let Some(payload) = race.descend_ignoring_dead() {
            if payload == 99 {
                recorder.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        writer.join().unwrap();
    })
    .expect("the dead-blind reader asserts nothing, so it cannot fail");
    assert!(exploration.complete);
    assert!(
        poison_seen.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "no schedule surfaced the poisoned payload — the model is not \
         exercising the window the dead flag closes"
    );
}

/// Reader retries ride out a writer: with enough retries the reader
/// always lands a validated snapshot in this bounded model.
#[test]
fn reader_with_retries_always_converges_after_writer_retires() {
    let exploration = loom::try_explore(|| {
        let node = Arc::new(Node::new());
        let writer = {
            let node = Arc::clone(&node);
            loom::thread::spawn(move || {
                assert!(node.locked_write(11));
            })
        };
        writer.join().unwrap();
        // The writer has fully retired: one attempt must succeed.
        let pair = node.read_pair(0);
        assert_eq!(pair, Some((11, 22)));
    })
    .expect("post-join reads are quiescent and must validate");
    assert!(exploration.complete);
}
