//! Property and stress tests for the OLC seqlock word (`VersionCell`)
//! under plain `std` atomics and real OS concurrency.
//!
//! Complements `olc_model.rs` (exhaustive schedules under the loom
//! shim): these tests run the same protocol on real hardware, and the
//! stress test doubles as the ThreadSanitizer CI target for the `olc`
//! module.

use std::sync::atomic::{AtomicU64, Ordering};

use gprq_rtree::{ReadOutcome, VersionCell};
use proptest::proptest;

#[test]
fn fresh_cell_is_unlocked_at_version_zero() {
    let cell = VersionCell::new();
    assert_eq!(cell.version(), 0);
    assert!(!cell.is_write_locked());
    let cell = VersionCell::default();
    assert_eq!(cell.version(), 0);
}

#[test]
fn write_lock_excludes_other_writers_and_optimistic_readers() {
    let cell = VersionCell::new();
    let guard = cell.write_lock().expect("uncontended lock succeeds");
    assert_eq!(guard.version(), 1, "locked version is odd");
    assert!(cell.is_write_locked());
    assert!(cell.write_lock().is_none(), "second writer must be refused");
    assert!(
        cell.optimistic_read().is_none(),
        "readers must not snapshot a locked cell"
    );
    drop(guard);
    assert_eq!(cell.version(), 2, "release lands on the next even version");
    assert!(!cell.is_write_locked());
}

#[test]
fn stale_read_guard_fails_validation_after_a_write() {
    let cell = VersionCell::new();
    let guard = cell.optimistic_read().expect("unlocked cell snapshots");
    assert_eq!(guard.version(), 0);
    assert!(guard.validate(), "no writer intervened yet");
    drop(cell.write_lock());
    assert!(
        !guard.validate(),
        "a completed write must invalidate earlier snapshots"
    );
    // A copy of the stale guard is equally stale.
    let copy = guard;
    assert!(!copy.validate());
}

#[test]
fn read_guard_taken_during_a_lock_window_detects_the_writer() {
    let cell = VersionCell::new();
    let before = cell.optimistic_read().expect("snapshot at v0");
    {
        let _w = cell.write_lock().expect("lock");
        assert!(cell.optimistic_read().is_none(), "no snapshot while locked");
    }
    assert!(!before.validate(), "write overlapped the snapshot");
    let after = cell.optimistic_read().expect("snapshot at v2");
    assert_eq!(after.version(), 2);
    assert!(after.validate());
}

#[test]
fn read_consistent_gives_up_when_the_cell_stays_locked() {
    let cell = VersionCell::new();
    let _w = cell.write_lock().expect("lock");
    assert_eq!(
        cell.read_consistent(8, || 1_u32),
        None,
        "a permanently locked cell exhausts every retry"
    );
}

// --- read_tracked retry-accounting regressions (ISSUE 8 satellite) ---

#[test]
fn zero_max_retries_means_exactly_one_attempt() {
    // Quiescent cell: the single attempt validates with zero retries.
    let cell = VersionCell::new();
    let calls = AtomicU64::new(0);
    let outcome = cell.read_tracked(0, || calls.fetch_add(1, Ordering::SeqCst));
    assert_eq!(
        outcome,
        ReadOutcome::Validated {
            value: 0,
            retries: 0
        }
    );
    assert_eq!(calls.load(Ordering::SeqCst), 1, "read ran exactly once");

    // Same budget through read_consistent: one attempt, no retry.
    let calls = AtomicU64::new(0);
    assert_eq!(
        cell.read_consistent(0, || calls.fetch_add(1, Ordering::SeqCst)),
        Some(0)
    );
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn locked_on_arrival_is_distinguished_and_never_speculates() {
    let cell = VersionCell::new();
    let _w = cell.write_lock().expect("lock");
    let calls = AtomicU64::new(0);
    let outcome = cell.read_tracked(3, || calls.fetch_add(1, Ordering::SeqCst));
    assert_eq!(
        outcome,
        ReadOutcome::LockedOnArrival { attempts: 4 },
        "max_retries = 3 permits exactly 4 attempts"
    );
    assert_eq!(
        calls.load(Ordering::SeqCst),
        0,
        "a locked cell must never run the speculative read"
    );
}

#[test]
fn torn_reads_report_contended_not_locked() {
    // The read closure itself bumps the version (lock + unlock), so
    // every attempt starts on an unlocked cell, speculates, and fails
    // validation: the outcome must be Contended.
    let cell = VersionCell::new();
    let outcome = cell.read_tracked(2, || {
        if let Some(g) = cell.write_lock() {
            drop(g);
        }
        7_u32
    });
    assert_eq!(outcome, ReadOutcome::Contended { attempts: 3 });
}

#[test]
fn validated_outcome_counts_the_retries_it_consumed() {
    // First attempt is torn (the closure bumps the version once), the
    // second validates: retries == 1.
    let cell = VersionCell::new();
    let calls = AtomicU64::new(0);
    let outcome = cell.read_tracked(3, || {
        if calls.fetch_add(1, Ordering::SeqCst) == 0 {
            if let Some(g) = cell.write_lock() {
                drop(g);
            }
        }
        42_u32
    });
    assert_eq!(
        outcome,
        ReadOutcome::Validated {
            value: 42,
            retries: 1
        }
    );
}

proptest! {
    /// Random lock/unlock/read sequences: the version is monotone
    /// nondecreasing, odd exactly while a writer holds the cell, and
    /// advances by exactly 2 per completed lock/unlock cycle.
    #[test]
    fn version_is_monotone_and_odd_iff_locked(ops in proptest::collection::vec(0u8..3, 1..64)) {
        let cell = VersionCell::new();
        let mut guard = None;
        let mut last_version = cell.version();
        let mut completed_writes = 0_u64;
        for &op in &ops {
            match op {
                // Try to lock: succeeds iff we do not already hold it.
                0 => {
                    let attempt = cell.write_lock();
                    proptest::prop_assert_eq!(attempt.is_some(), guard.is_none());
                    if attempt.is_some() {
                        guard = attempt;
                    }
                }
                // Unlock if held.
                1 => {
                    if guard.take().is_some() {
                        completed_writes += 1;
                    }
                }
                // Optimistic read: snapshots iff unlocked, and an
                // undisturbed snapshot validates.
                _ => {
                    let snapshot = cell.optimistic_read();
                    proptest::prop_assert_eq!(snapshot.is_some(), guard.is_none());
                    if let Some(s) = snapshot {
                        proptest::prop_assert!(s.validate());
                    }
                }
            }
            let v = cell.version();
            proptest::prop_assert!(v >= last_version, "version went backwards");
            proptest::prop_assert_eq!(v & 1 == 1, guard.is_some(), "odd iff locked");
            last_version = v;
        }
        drop(guard);
        proptest::prop_assert_eq!(cell.version() & 1, 0);
        proptest::prop_assert!(cell.version() >= 2 * completed_writes);
    }
}

/// Real-concurrency stress (and the TSan lane target): one writer
/// republishing a two-word payload under the lock, several optimistic
/// readers validating snapshots. A validated snapshot must never be
/// torn: `hi` is always exactly `3 * lo`.
#[test]
fn optimistic_readers_never_observe_torn_writes_under_stress() {
    const WRITES: u64 = 2_000;
    const READERS: usize = 3;
    let cell = VersionCell::new();
    let lo = AtomicU64::new(0);
    let hi = AtomicU64::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for x in 1..=WRITES {
                // Writer loop: spin until the (single-writer) lock is
                // free — contention only comes from this thread's own
                // release racing the next acquire, so this terminates.
                let guard = loop {
                    if let Some(g) = cell.write_lock() {
                        break g;
                    }
                    std::hint::spin_loop();
                };
                lo.store(x, Ordering::Relaxed);
                hi.store(3 * x, Ordering::Relaxed);
                drop(guard);
            }
        });
        for _ in 0..READERS {
            scope.spawn(|| {
                let mut validated = 0_u64;
                let mut last_lo = 0_u64;
                while validated < WRITES / 4 {
                    let snapshot = cell.read_consistent(64, || {
                        (lo.load(Ordering::Relaxed), hi.load(Ordering::Relaxed))
                    });
                    if let Some((a, b)) = snapshot {
                        assert_eq!(b, 3 * a, "validated snapshot is torn");
                        assert!(a >= last_lo, "snapshots went backwards in time");
                        last_lo = a;
                        validated += 1;
                    }
                }
            });
        }
    });
    assert_eq!(cell.version(), 2 * WRITES);
    assert_eq!(hi.load(Ordering::Relaxed), 3 * lo.load(Ordering::Relaxed));
}
