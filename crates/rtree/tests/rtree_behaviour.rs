//! Behavioural tests for the R*-tree: every query is cross-checked against
//! a brute-force linear scan, and structural invariants are validated
//! after batches of mutations.

use gprq_linalg::Vector;
use gprq_rtree::{RStarParams, RTree, Rect, SearchStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random point cloud.
fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                i,
            )
        })
        .collect()
}

fn brute_force_rect(points: &[(Vector<2>, usize)], rect: &Rect<2>) -> Vec<usize> {
    let mut ids: Vec<usize> = points
        .iter()
        .filter(|(p, _)| rect.contains_point(p))
        .map(|(_, id)| *id)
        .collect();
    ids.sort_unstable();
    ids
}

fn brute_force_ball(points: &[(Vector<2>, usize)], center: &Vector<2>, radius: f64) -> Vec<usize> {
    let mut ids: Vec<usize> = points
        .iter()
        .filter(|(p, _)| p.distance(center) <= radius)
        .map(|(_, id)| *id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn empty_tree_behaviour() {
    let tree: RTree<2, usize> = RTree::new();
    assert!(tree.is_empty());
    assert_eq!(tree.len(), 0);
    assert!(tree.bounding_rect().is_none());
    assert!(tree.query_rect(&Rect::everything()).is_empty());
    assert!(tree.query_ball(&Vector::ZERO, 100.0).is_empty());
    assert!(tree.nearest_neighbors(&Vector::ZERO, 5).is_empty());
    assert!(tree.validate().is_ok());
}

#[test]
fn single_point() {
    let mut tree: RTree<2, usize> = RTree::new();
    tree.insert(Vector::from([3.0, 4.0]), 7);
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.height(), 1);
    let hits = tree.query_ball(&Vector::ZERO, 5.0);
    assert_eq!(hits.len(), 1);
    assert_eq!(*hits[0].1, 7);
    assert!(tree.query_ball(&Vector::ZERO, 4.999).is_empty());
    assert!(tree.validate().is_ok());
}

#[test]
fn insert_queries_match_brute_force() {
    let points = random_points(5_000, 42, 1000.0);
    let mut tree: RTree<2, usize> = RTree::with_params(RStarParams::paper_default(2));
    for (p, id) in &points {
        tree.insert(*p, *id);
    }
    assert_eq!(tree.len(), points.len());
    tree.validate().expect("valid after inserts");

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let cx = rng.gen::<f64>() * 1000.0;
        let cy = rng.gen::<f64>() * 1000.0;
        let half = rng.gen::<f64>() * 100.0;
        let rect = Rect::centered(&Vector::from([cx, cy]), &Vector::from([half, half]));
        let mut got: Vec<usize> = tree.query_rect(&rect).iter().map(|(_, id)| **id).collect();
        got.sort_unstable();
        assert_eq!(got, brute_force_rect(&points, &rect));

        let radius = rng.gen::<f64>() * 80.0;
        let center = Vector::from([cx, cy]);
        let mut got: Vec<usize> = tree
            .query_ball(&center, radius)
            .iter()
            .map(|(_, id)| **id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force_ball(&points, &center, radius));
    }
}

#[test]
fn bulk_load_queries_match_brute_force() {
    let points = random_points(20_000, 99, 1000.0);
    let tree = RTree::bulk_load(points.clone(), RStarParams::paper_default(2));
    assert_eq!(tree.len(), points.len());
    tree.validate().expect("valid after bulk load");

    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..30 {
        let center = Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]);
        let radius = rng.gen::<f64>() * 120.0;
        let mut got: Vec<usize> = tree
            .query_ball(&center, radius)
            .iter()
            .map(|(_, id)| **id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force_ball(&points, &center, radius));
    }
}

#[test]
fn bulk_load_equals_incremental_results() {
    let points = random_points(3_000, 5, 500.0);
    let bulk = RTree::bulk_load(points.clone(), RStarParams::new(16));
    let mut incr: RTree<2, usize> = RTree::with_params(RStarParams::new(16));
    for (p, id) in &points {
        incr.insert(*p, *id);
    }
    let rect = Rect::centered(&Vector::from([250.0, 250.0]), &Vector::from([100.0, 60.0]));
    let mut a: Vec<usize> = bulk.query_rect(&rect).iter().map(|(_, id)| **id).collect();
    let mut b: Vec<usize> = incr.query_rect(&rect).iter().map(|(_, id)| **id).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn knn_matches_brute_force() {
    let points = random_points(4_000, 17, 1000.0);
    let tree = RTree::bulk_load(points.clone(), RStarParams::paper_default(2));
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..25 {
        let center = Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]);
        let k = 1 + rng.gen::<usize>() % 40;
        let got = tree.nearest_neighbors(&center, k);
        assert_eq!(got.len(), k);
        // Distances ascending.
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Compare the distance multiset against brute force (ids can tie).
        let mut brute: Vec<f64> = points.iter().map(|(p, _)| p.distance(&center)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, (dist, _, _)) in got.iter().enumerate() {
            assert!(
                (dist - brute[i]).abs() < 1e-9,
                "k-NN rank {i}: {dist} vs {}",
                brute[i]
            );
        }
    }
}

#[test]
fn knn_k_larger_than_len() {
    let points = random_points(10, 1, 100.0);
    let tree = RTree::bulk_load(points, RStarParams::new(4));
    let got = tree.nearest_neighbors(&Vector::ZERO, 50);
    assert_eq!(got.len(), 10);
}

#[test]
fn removal_then_queries() {
    let points = random_points(2_000, 8, 1000.0);
    let mut tree: RTree<2, usize> = RTree::with_params(RStarParams::new(8));
    for (p, id) in &points {
        tree.insert(*p, *id);
    }
    // Remove every third point.
    let mut remaining: Vec<(Vector<2>, usize)> = Vec::new();
    for (i, (p, id)) in points.iter().enumerate() {
        if i % 3 == 0 {
            assert!(tree.remove(p, id), "record {id} must exist");
        } else {
            remaining.push((*p, *id));
        }
    }
    assert_eq!(tree.len(), remaining.len());
    tree.validate().expect("valid after removals");

    let center = Vector::from([500.0, 500.0]);
    let mut got: Vec<usize> = tree
        .query_ball(&center, 300.0)
        .iter()
        .map(|(_, id)| **id)
        .collect();
    got.sort_unstable();
    assert_eq!(got, brute_force_ball(&remaining, &center, 300.0));

    // Removing a missing record is a no-op returning false.
    assert!(!tree.remove(&Vector::from([-1.0, -1.0]), &0));
}

#[test]
fn remove_everything_empties_tree() {
    let points = random_points(500, 21, 100.0);
    let mut tree: RTree<2, usize> = RTree::with_params(RStarParams::new(6));
    for (p, id) in &points {
        tree.insert(*p, *id);
    }
    for (p, id) in &points {
        assert!(tree.remove(p, id));
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    assert!(tree.validate().is_ok());
    // Tree remains usable.
    tree.insert(Vector::from([1.0, 1.0]), 0);
    assert_eq!(tree.len(), 1);
}

#[test]
fn duplicate_points_supported() {
    let mut tree: RTree<2, u32> = RTree::with_params(RStarParams::new(4));
    let p = Vector::from([5.0, 5.0]);
    for i in 0..100 {
        tree.insert(p, i);
    }
    assert_eq!(tree.len(), 100);
    tree.validate().unwrap();
    assert_eq!(tree.query_ball(&p, 0.0).len(), 100);
    // Remove one specific payload.
    assert!(tree.remove(&p, &42));
    assert_eq!(tree.len(), 99);
    assert!(!tree.query_ball(&p, 0.0).iter().any(|(_, d)| **d == 42));
}

#[test]
fn iter_visits_every_record() {
    let points = random_points(1_234, 33, 50.0);
    let tree = RTree::bulk_load(points.clone(), RStarParams::new(10));
    let mut ids: Vec<usize> = tree.iter().map(|(_, id)| *id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..1_234).collect::<Vec<_>>());
}

#[test]
fn search_stats_accumulate_and_prune() {
    let points = random_points(10_000, 77, 1000.0);
    let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
    let mut stats = SearchStats::default();
    let small = Rect::centered(&Vector::from([500.0, 500.0]), &Vector::from([10.0, 10.0]));
    tree.query_rect_visit(&small, &mut stats, |_, _| {});
    assert!(stats.nodes_visited >= 1);
    // A tiny query must not visit the whole tree.
    assert!(
        stats.nodes_visited < tree.node_count() / 2,
        "visited {} of {} nodes",
        stats.nodes_visited,
        tree.node_count()
    );
    let mut full = SearchStats::default();
    tree.query_rect_visit(&Rect::everything(), &mut full, |_, _| {});
    assert_eq!(full.results, 10_000);
    assert_eq!(full.nodes_visited, tree.node_count());
    // merge() accumulates counters component-wise.
    let mut merged = stats;
    merged.merge(&full);
    assert_eq!(
        merged.nodes_visited,
        stats.nodes_visited + full.nodes_visited
    );
    assert_eq!(
        merged.entries_checked,
        stats.entries_checked + full.entries_checked
    );
    assert_eq!(merged.results, stats.results + full.results);
    // Saturating at the top instead of wrapping.
    let mut top = SearchStats {
        nodes_visited: usize::MAX,
        entries_checked: usize::MAX,
        results: usize::MAX,
        ..SearchStats::default()
    };
    top.merge(&full);
    assert_eq!(top.nodes_visited, usize::MAX);
}

#[test]
fn tree_stats_report_occupancy() {
    let points = random_points(10_000, 12, 1000.0);
    let bulk = RTree::bulk_load(points.clone(), RStarParams::paper_default(2));
    let stats = bulk.tree_stats();
    assert_eq!(stats.records, 10_000);
    assert_eq!(stats.height, bulk.height());
    assert_eq!(stats.leaf_nodes + stats.internal_nodes, bulk.node_count());
    // STR packing fills leaves nearly to capacity.
    assert!(
        stats.mean_leaf_occupancy > 0.9,
        "bulk-loaded occupancy {}",
        stats.mean_leaf_occupancy
    );
    // Incremental insertion is sparser but must stay above m/M = 40 %.
    let mut incr: RTree<2, usize> = RTree::with_params(RStarParams::paper_default(2));
    for (p, id) in &points {
        incr.insert(*p, *id);
    }
    let istats = incr.tree_stats();
    assert!(istats.mean_leaf_occupancy >= 0.4);
    assert!(istats.mean_leaf_occupancy <= stats.mean_leaf_occupancy);
}

#[test]
fn height_grows_logarithmically() {
    let points = random_points(10_000, 2, 1000.0);
    let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
    // fanout 25 → 10k records needs 3 levels (25² = 625 < 10k ≤ 25³).
    assert_eq!(tree.height(), 3);
}

#[test]
fn nine_dimensional_tree() {
    let mut rng = StdRng::seed_from_u64(4);
    let points: Vec<(Vector<9>, usize)> = (0..2_000)
        .map(|i| (Vector::from_fn(|_| rng.gen::<f64>() * 10.0), i))
        .collect();
    let tree = RTree::bulk_load(points.clone(), RStarParams::paper_default(9));
    tree.validate().unwrap();
    let center = points[100].0;
    let hits = tree.query_ball(&center, 2.0);
    let brute = points
        .iter()
        .filter(|(p, _)| p.distance(&center) <= 2.0)
        .count();
    assert_eq!(hits.len(), brute);
    // k-NN should find the query point itself first at distance 0.
    let knn = tree.nearest_neighbors(&center, 5);
    assert_eq!(knn[0].0, 0.0);
}

#[test]
#[should_panic(expected = "finite")]
fn rejects_nan_key() {
    let mut tree: RTree<2, ()> = RTree::new();
    tree.insert(Vector::from([f64::NAN, 0.0]), ());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After an arbitrary interleaving of inserts and removes, the tree
    /// validates and matches a naive set implementation.
    #[test]
    fn prop_mutations_preserve_invariants(ops in proptest::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0, proptest::bool::weighted(0.3)),
        1..200,
    )) {
        let mut tree: RTree<2, usize> = RTree::with_params(RStarParams::new(5));
        let mut shadow: Vec<(Vector<2>, usize)> = Vec::new();
        for (i, (x, y, is_remove)) in ops.iter().enumerate() {
            if *is_remove && !shadow.is_empty() {
                let victim = shadow.swap_remove(i % shadow.len());
                prop_assert!(tree.remove(&victim.0, &victim.1));
            } else {
                let p = Vector::from([*x, *y]);
                tree.insert(p, i);
                shadow.push((p, i));
            }
        }
        prop_assert_eq!(tree.len(), shadow.len());
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        // Full-space query returns exactly the shadow contents.
        let mut got: Vec<usize> = tree.query_rect(&Rect::everything()).iter().map(|(_, id)| **id).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = shadow.iter().map(|(_, id)| *id).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Ball queries agree with brute force on arbitrary inputs.
    #[test]
    fn prop_ball_query_correct(
        pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..150),
        cx in 0.0f64..50.0,
        cy in 0.0f64..50.0,
        radius in 0.0f64..30.0,
    ) {
        let points: Vec<(Vector<2>, usize)> = pts.iter().enumerate()
            .map(|(i, (x, y))| (Vector::from([*x, *y]), i)).collect();
        let tree = RTree::bulk_load(points.clone(), RStarParams::new(4));
        let center = Vector::from([cx, cy]);
        let mut got: Vec<usize> = tree.query_ball(&center, radius).iter().map(|(_, id)| **id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_force_ball(&points, &center, radius));
    }
}
