//! Parity tests for the cache-conscious flat index: a frozen image must
//! reproduce the pointer tree bitwise (candidates, order, and every
//! `SearchStats` counter), and the packed multi-rect descent must
//! reproduce, per query, exactly what N solo flat descents produce —
//! mirroring `multi_rect_parity.rs` for the pointer tree.

use gprq_linalg::Vector;
use gprq_rtree::{FlatRTree, Phase1Index, RStarParams, RTree, Rect, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                i,
            )
        })
        .collect()
}

fn build_tree(points: &[(Vector<2>, usize)]) -> RTree<2, usize> {
    let mut tree = RTree::new();
    for (p, id) in points {
        tree.insert(*p, *id);
    }
    tree.validate().expect("tree invariants");
    tree
}

fn random_rects(n: usize, seed: u64, extent: f64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]);
            let half = Vector::from([rng.gen::<f64>() * 120.0, rng.gen::<f64>() * 120.0]);
            Rect::centered(&c, &half)
        })
        .collect()
}

/// Solo baseline for one rectangle via the flat single-rect entry point.
fn solo<'t>(
    flat: &'t FlatRTree<2, usize>,
    rect: &Rect<2>,
) -> (Vec<(&'t Vector<2>, &'t usize)>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    flat.query_rect_into(rect, &mut stats, &mut out);
    (out, stats)
}

#[test]
fn frozen_image_matches_pointer_tree_bitwise() {
    let points = random_points(3_000, 41, 1_000.0);
    // Both topologies: incremental R* inserts and STR bulk load.
    for tree in [
        build_tree(&points),
        RTree::bulk_load(points.clone(), RStarParams::paper_default(2)),
    ] {
        let flat = FlatRTree::freeze(tree.clone());
        for rect in random_rects(40, 42, 1_000.0) {
            let mut tree_stats = SearchStats::default();
            let mut tree_out = Vec::new();
            tree.query_rect_into(&rect, &mut tree_stats, &mut tree_out);
            let (flat_out, flat_stats) = solo(&flat, &rect);
            assert_eq!(flat_out, tree_out, "candidates diverge from source tree");
            assert_eq!(flat_stats, tree_stats, "stats diverge from source tree");
        }
    }
}

#[test]
fn packed_multi_rect_matches_solo_bitwise() {
    let points = random_points(3_000, 51, 1_000.0);
    let flat = FlatRTree::freeze(build_tree(&points));
    for (rect_seed, batch) in [(52u64, 1usize), (53, 2), (54, 7), (55, 16), (56, 33)] {
        let rects = random_rects(batch, rect_seed, 1_000.0);
        let mut stats = vec![SearchStats::default(); batch];
        let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); batch];
        flat.query_rects_into(&rects, &mut stats, &mut out);

        for q in 0..batch {
            let (solo_out, solo_stats) = solo(&flat, &rects[q]);
            assert_eq!(out[q], solo_out, "candidates diverge for query {q}");
            assert_eq!(stats[q], solo_stats, "stats diverge for query {q}");
        }
    }
}

#[test]
fn packed_multi_rect_on_packed_layout_matches_solo() {
    // Same contract on the bulk-load (fanout-64) layout, whose nodes
    // exceed one mask chunk less often but still exercise leaf packing.
    let points = random_points(4_000, 57, 800.0);
    let flat = FlatRTree::bulk_load(points);
    let rects = random_rects(21, 58, 800.0);
    let mut stats = vec![SearchStats::default(); rects.len()];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    flat.query_rects_into(&rects, &mut stats, &mut out);
    for (q, rect) in rects.iter().enumerate() {
        let (solo_out, solo_stats) = solo(&flat, rect);
        assert_eq!(out[q], solo_out, "candidates diverge for query {q}");
        assert_eq!(stats[q], solo_stats, "stats diverge for query {q}");
    }
}

#[test]
fn duplicate_and_disjoint_rects_stay_independent() {
    let points = random_points(1_200, 61, 500.0);
    let flat = FlatRTree::freeze(build_tree(&points));
    let hot = Rect::centered(&Vector::from([250.0, 250.0]), &Vector::from([80.0, 80.0]));
    let cold = Rect::centered(
        &Vector::from([-1_000.0, -1_000.0]),
        &Vector::from([1.0, 1.0]),
    );
    let rects = [hot, hot, cold, hot];
    let mut stats = vec![SearchStats::default(); rects.len()];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    flat.query_rects_into(&rects, &mut stats, &mut out);

    let (hot_out, hot_stats) = solo(&flat, &hot);
    let (cold_out, cold_stats) = solo(&flat, &cold);
    assert!(!hot_out.is_empty());
    assert!(cold_out.is_empty());
    for q in [0, 1, 3] {
        assert_eq!(out[q], hot_out);
        assert_eq!(stats[q], hot_stats);
    }
    assert_eq!(out[2], cold_out);
    assert_eq!(stats[2], cold_stats);
}

#[test]
fn empty_inputs_and_empty_tree_are_well_defined() {
    let flat = FlatRTree::freeze(build_tree(&random_points(300, 71, 100.0)));

    // No rects: nothing happens, buffers beyond the batch are still cleared.
    let mut stats: Vec<SearchStats> = Vec::new();
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![vec![]; 2];
    out[0].push((flat.iter().next().unwrap().0, flat.iter().next().unwrap().1));
    flat.query_rects_into(&[], &mut stats, &mut out);
    assert!(out[0].is_empty() && out[1].is_empty());

    // Empty index: every query answers empty with zero stats.
    let empty: FlatRTree<2, usize> = FlatRTree::freeze(RTree::new());
    let rects = [Rect::everything(), Rect::everything()];
    let mut stats = vec![SearchStats::default(); 2];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); 2];
    empty.query_rects_into(&rects, &mut stats, &mut out);
    for q in 0..2 {
        assert!(out[q].is_empty());
        assert_eq!(stats[q], SearchStats::default());
    }
}

#[test]
fn shorter_stat_slice_bounds_the_batch() {
    let flat = FlatRTree::freeze(build_tree(&random_points(600, 81, 200.0)));
    let rects = random_rects(4, 82, 200.0);
    // Only two stats slots: queries 2 and 3 must not run (their buffers
    // are still cleared).
    let mut stats = vec![SearchStats::default(); 2];
    let mut out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); 4];
    flat.query_rects_into(&rects, &mut stats, &mut out);
    for q in 0..2 {
        let (solo_out, solo_stats) = solo(&flat, &rects[q]);
        assert_eq!(out[q], solo_out);
        assert_eq!(stats[q], solo_stats);
    }
    assert!(out[2].is_empty() && out[3].is_empty());
}

#[test]
fn trait_dispatch_matches_pointer_tree_through_phase1_index() {
    let points = random_points(1_500, 91, 400.0);
    let tree = build_tree(&points);
    let flat = FlatRTree::freeze(tree.clone());
    let rects = random_rects(9, 92, 400.0);

    let mut tree_stats = vec![SearchStats::default(); rects.len()];
    let mut tree_out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    Phase1Index::search_rects_into(&tree, &rects, &mut tree_stats, &mut tree_out);

    let mut flat_stats = vec![SearchStats::default(); rects.len()];
    let mut flat_out: Vec<Vec<(&Vector<2>, &usize)>> = vec![Vec::new(); rects.len()];
    Phase1Index::search_rects_into(&flat, &rects, &mut flat_stats, &mut flat_out);

    for q in 0..rects.len() {
        assert_eq!(flat_out[q], tree_out[q], "candidates diverge for query {q}");
        assert_eq!(flat_stats[q], tree_stats[q], "stats diverge for query {q}");
    }
}
