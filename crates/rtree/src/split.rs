//! The R\* node-split algorithm (Beckmann, Kriegel, Schneider, Seeger 1990).
//!
//! Splitting an overflowing set of `M + 1` items proceeds in two steps:
//!
//! 1. **Choose split axis** — for every axis, sort the items by their MBR's
//!    lower then upper boundary and sum the margins of all legal
//!    two-group distributions; pick the axis with the minimum margin sum.
//! 2. **Choose split index** — along the chosen axis, pick the
//!    distribution with minimum overlap between the two group MBRs,
//!    breaking ties by minimum combined area.
//!
//! The implementation is generic over [`HasMbr`] so the identical code
//! splits both leaf entries (points) and internal children (rectangles).

use crate::node::HasMbr;
use crate::rect::Rect;

/// Outcome of a split: the two groups, in arbitrary order. Both satisfy
/// the minimum-occupancy constraint `m`.
pub(crate) struct Split<I> {
    pub left: Vec<I>,
    pub right: Vec<I>,
}

/// Splits `items` (an overflowing node's contents, `M + 1` of them) into
/// two groups per the R\* heuristics.
///
/// # Panics
///
/// Debug-asserts `items.len() >= 2 * min_entries`.
pub(crate) fn rstar_split<const D: usize, I: HasMbr<D>>(
    mut items: Vec<I>,
    min_entries: usize,
) -> Split<I> {
    let n = items.len();
    debug_assert!(
        n >= 2 * min_entries,
        "cannot split {n} items with m = {min_entries}"
    );

    // Step 1: choose the split axis by minimum margin sum over both
    // sortings (by lower and by upper boundary).
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin = 0.0;
        for sort_by_upper in [false, true] {
            sort_items(&mut items, axis, sort_by_upper);
            margin += distributions_margin_sum::<D, I>(&items, min_entries);
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    // Step 2: along the chosen axis, choose the distribution minimizing
    // overlap (ties: minimum total area) across both sortings.
    let mut best: Option<(bool, usize, f64, f64)> = None; // (upper?, k, overlap, area)
    for sort_by_upper in [false, true] {
        sort_items(&mut items, best_axis, sort_by_upper);
        let prefixes = prefix_mbrs::<D, I>(&items);
        let suffixes = suffix_mbrs::<D, I>(&items);
        for k in min_entries..=(n - min_entries) {
            let left = prefixes[k - 1];
            let right = suffixes[k];
            let overlap = left.overlap_area(&right);
            let area = left.area() + right.area();
            let better = match best {
                None => true,
                Some((_, _, bo, ba)) => overlap < bo || (overlap == bo && area < ba),
            };
            if better {
                best = Some((sort_by_upper, k, overlap, area));
            }
        }
    }
    // `n ≥ 2·min_entries` (overflow is what triggered the split), so the
    // k-loop admits at least one distribution; an empty `best` would be a
    // parameter-validation bug, degraded to an even split, not a panic.
    let Some((sort_by_upper, k, _, _)) = best else {
        let right = items.split_off(n / 2);
        return Split { left: items, right };
    };
    sort_items(&mut items, best_axis, sort_by_upper);
    let right = items.split_off(k);
    Split { left: items, right }
}

fn sort_items<const D: usize, I: HasMbr<D>>(items: &mut [I], axis: usize, by_upper: bool) {
    items.sort_by(|a, b| {
        let (ka, kb) = if by_upper {
            (a.item_mbr().hi[axis], b.item_mbr().hi[axis])
        } else {
            (a.item_mbr().lo[axis], b.item_mbr().lo[axis])
        };
        ka.total_cmp(&kb)
    });
}

/// Sum of `margin(left) + margin(right)` over every legal distribution of
/// the (already sorted) items.
fn distributions_margin_sum<const D: usize, I: HasMbr<D>>(items: &[I], min_entries: usize) -> f64 {
    let n = items.len();
    let prefixes = prefix_mbrs::<D, I>(items);
    let suffixes = suffix_mbrs::<D, I>(items);
    let mut total = 0.0;
    for k in min_entries..=(n - min_entries) {
        total += prefixes[k - 1].margin() + suffixes[k].margin();
    }
    total
}

/// `prefix_mbrs[i]` = MBR of `items[0..=i]`.
fn prefix_mbrs<const D: usize, I: HasMbr<D>>(items: &[I]) -> Vec<Rect<D>> {
    let mut out = Vec::with_capacity(items.len());
    let mut acc = items[0].item_mbr();
    out.push(acc);
    for item in &items[1..] {
        acc.extend_rect(&item.item_mbr());
        out.push(acc);
    }
    out
}

/// `suffix_mbrs[i]` = MBR of `items[i..]`.
fn suffix_mbrs<const D: usize, I: HasMbr<D>>(items: &[I]) -> Vec<Rect<D>> {
    let mut out = vec![items[items.len() - 1].item_mbr(); items.len()];
    for i in (0..items.len() - 1).rev() {
        let mut acc = items[i].item_mbr();
        acc.extend_rect(&out[i + 1]);
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use gprq_linalg::Vector;

    fn entries(points: &[[f64; 2]]) -> Vec<LeafEntry<2, usize>> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry {
                point: Vector::from(*p),
                data: i,
            })
            .collect()
    }

    fn group_mbr(items: &[LeafEntry<2, usize>]) -> Rect<2> {
        let mut mbr = Rect::from_point(&items[0].point);
        for e in &items[1..] {
            mbr.extend_point(&e.point);
        }
        mbr
    }

    #[test]
    fn splits_two_obvious_clusters() {
        // Two tight clusters far apart: the split must separate them.
        let pts = [
            [0.0, 0.0],
            [1.0, 1.0],
            [0.5, 0.2],
            [0.1, 0.9],
            [100.0, 100.0],
            [101.0, 101.0],
            [100.5, 100.2],
            [100.1, 100.9],
        ];
        let split = rstar_split(entries(&pts), 2);
        let (l, r) = (group_mbr(&split.left), group_mbr(&split.right));
        assert_eq!(l.overlap_area(&r), 0.0);
        assert_eq!(split.left.len() + split.right.len(), 8);
        // Each group must contain one full cluster.
        let left_is_low = split.left[0].point[0] < 50.0;
        for e in &split.left {
            assert_eq!(e.point[0] < 50.0, left_is_low);
        }
    }

    #[test]
    fn respects_min_entries() {
        // Highly skewed: 9 points in one spot, 1 far away. With m = 4 the
        // split still must give each side at least 4.
        let mut pts = vec![[1000.0, 1000.0]];
        for i in 0..9 {
            pts.push([i as f64 * 0.01, 0.0]);
        }
        let split = rstar_split(entries(&pts), 4);
        assert!(split.left.len() >= 4);
        assert!(split.right.len() >= 4);
        assert_eq!(split.left.len() + split.right.len(), 10);
    }

    #[test]
    fn chooses_better_axis() {
        // Points form two rows stacked vertically — splitting on y gives
        // zero overlap; splitting on x would interleave.
        let pts = [
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [3.0, 0.0],
            [0.0, 10.0],
            [1.0, 10.0],
            [2.0, 10.0],
            [3.0, 10.0],
        ];
        let split = rstar_split(entries(&pts), 2);
        let (l, r) = (group_mbr(&split.left), group_mbr(&split.right));
        assert_eq!(l.overlap_area(&r), 0.0);
        let ys_left: Vec<f64> = split.left.iter().map(|e| e.point[1]).collect();
        assert!(ys_left.iter().all(|&y| y == ys_left[0]));
    }

    #[test]
    fn split_preserves_all_items() {
        let pts: Vec<[f64; 2]> = (0..20).map(|i| [i as f64, (i * 7 % 13) as f64]).collect();
        let split = rstar_split(entries(&pts), 8);
        let mut ids: Vec<usize> = split
            .left
            .iter()
            .chain(split.right.iter())
            .map(|e| e.data)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }
}
