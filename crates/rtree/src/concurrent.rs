//! Concurrent R\*-tree with an optimistic-lock-coupling (OLC) read path
//! and a contention-robustness ladder (ROADMAP item #1).
//!
//! [`ConcurrentRTree`] shares one index between many reader threads and
//! concurrent writers. Readers traverse **without taking any lock**:
//! every node carries a [`VersionCell`] seqlock, and a reader captures a
//! node's payload speculatively, then validates the version
//! ([`VersionCell::read_tracked`]). Writers serialize on an exclusive
//! latch, take each touched node's version write lock, and bump the
//! version on every structural change.
//!
//! # The contention ladder
//!
//! A reader that races a writer never spins forever; it descends a fixed
//! ladder whose last rung cannot fail:
//!
//! 1. **Optimistic attempt** — capture + validate, free of atomic RMWs.
//! 2. **Bounded per-node retries** — up to
//!    [`ContentionLadder::node_attempts`] attempts per node, separated
//!    by exponential backoff with deterministic seeded jitter
//!    (distinguishing *contended* from *write-locked on arrival* via
//!    [`ReadOutcome`] to pick the wait).
//! 3. **Descent restart** — a dead node (split away under the reader's
//!    feet) or an exhausted per-node budget restarts the whole query,
//!    at most [`ContentionLadder::restart_budget`] times.
//! 4. **Pessimistic fallback** — the reader takes the writer-excluding
//!    latch in *shared* mode and re-runs the traversal. With writers
//!    excluded, plain payload reads are consistent by construction, so
//!    this rung always terminates with a correct result: readers are
//!    starvation-free even under a 100 % conflict storm.
//!
//! # Why per-node validation suffices
//!
//! Nodes and records live in append-only stores whose slots are **never
//! reused**, and every content move (a split) marks the source node
//! *dead* inside the same version-locked write. A reader holding a
//! stale child id therefore observes either the full pre-split contents
//! (a consistent snapshot) or the dead flag (→ restart); it can never
//! see a half-moved child list. Records are immutable once published,
//! so validated references stay valid for the tree borrow's lifetime.
//! The two-level split race has its thread interleavings model-checked
//! under the vendored loom shim (`tests/olc_model.rs`, feature
//! `model-check` — schedules only, under the host's memory model; see
//! the [`crate::olc`] module docs for the shim's limits) and is
//! stress-checked under ThreadSanitizer (`tests/concurrent_props.rs`).
//!
//! ```
//! use gprq_rtree::{ConcurrentRTree, Rect, SearchStats};
//! use gprq_linalg::Vector;
//!
//! let tree: ConcurrentRTree<2, u32> = ConcurrentRTree::new();
//! for i in 0..100u32 {
//!     tree.insert(Vector::from([f64::from(i % 10), f64::from(i / 10)]), i);
//! }
//! let mut stats = SearchStats::default();
//! let mut out = Vec::new();
//! let rect = Rect::from_corners(&Vector::from([0.0, 0.0]), &Vector::from([3.0, 3.0]));
//! tree.query_rect_into(&rect, &mut stats, &mut out);
//! assert_eq!(out.len(), 16);
//! assert!(stats.olc_attempts >= stats.nodes_visited);
//! ```

use crate::node::HasMbr;
use crate::olc::{ReadOutcome, VersionCell, WriteGuard};
use crate::params::RStarParams;
use crate::query::{Phase1Index, SearchStats};
use crate::rect::Rect;
use crate::split::rstar_split;
use gprq_linalg::Vector;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Upper bound on node fan-out: snapshots copy child ids into a
/// fixed-size stack array so the hot capture helper never allocates.
/// `RStarParams::paper_default` tops out at 42 entries (1 KB pages,
/// `D = 1`), well under this cap.
pub const MAX_FANOUT: usize = 64;

/// Sentinel id for unused slots (never a valid store index).
const NIL: usize = usize::MAX;

/// First chunk size of the append-only stores; chunk `c` holds
/// `STORE_BASE << c` slots, so capacity doubles per chunk.
const STORE_BASE: usize = 64;

/// Number of chunks: total capacity `STORE_BASE * (2^STORE_CHUNKS - 1)`
/// (~1.8e16 slots) — unreachable in practice, and out-of-range ids
/// simply resolve to `None`.
const STORE_CHUNKS: usize = 48;

/// Top bit of the node meta word: set when the node has been split away
/// and must never be trusted by a reader.
const DEAD_BIT: usize = 1 << (usize::BITS - 1);

/// Low bits of the meta word: the live entry count.
const COUNT_MASK: usize = DEAD_BIT - 1;

/// `splitmix64` — the standard seed expander; deterministic and cheap.
/// (Same algorithm as `gprq_core::fault`; duplicated to keep the crates
/// dependency-free of each other.)
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning for the reader-side contention-robustness ladder.
#[derive(Debug, Clone, Copy)]
pub struct ContentionLadder {
    /// Optimistic attempts per node before the descent restarts
    /// (minimum 1; each failed attempt backs off before the next).
    pub node_attempts: usize,
    /// Whole-descent restarts before the reader escalates to the
    /// pessimistic shared-latch path (0 = escalate on first restart).
    pub restart_budget: usize,
    /// Seed for the deterministic backoff jitter. Mixed with a
    /// per-thread salt (`thread_jitter_salt`) and the contended
    /// node's id, so concurrent readers stuck on the same node
    /// de-synchronize instead of stampeding in lock-step.
    pub backoff_seed: u64,
}

impl Default for ContentionLadder {
    fn default() -> Self {
        ContentionLadder {
            node_attempts: 4,
            restart_budget: 8,
            backoff_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Per-thread jitter salt, lazily derived from the thread id: the
/// ladder's `backoff_seed` is per-*tree*, so without a per-thread
/// component every reader contending on the same node would compute an
/// identical backoff sequence and retry in lock-step — exactly the
/// stampede jitter exists to break. `DefaultHasher::new()` uses fixed
/// keys, so the salt stays deterministic given the thread id and the
/// ladder keeps its "deterministic seeded jitter" contract.
fn thread_jitter_salt() -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    thread_local! {
        static SALT: u64 = {
            let mut h = DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() | 1
        };
    }
    SALT.with(|s| *s)
}

impl ContentionLadder {
    /// Spins for `2^min(attempt, 6)` iterations plus a deterministic
    /// jitter derived from the seed, `salt`, and a per-thread
    /// component ([`thread_jitter_salt`]), so concurrent readers
    /// contending on the same node de-correlate instead of retrying in
    /// lock-step — without any shared RNG state.
    fn backoff(&self, attempt: usize, salt: usize) {
        let exp = attempt.min(6);
        let mut state = self.backoff_seed
            ^ thread_jitter_salt()
            ^ u64::try_from(salt)
                .unwrap_or(0)
                .wrapping_mul(0xA24B_AED4_963E_E407)
            ^ u64::try_from(attempt).unwrap_or(0);
        let jitter = usize::try_from(splitmix64(&mut state) & 0xF).unwrap_or(0);
        for _ in 0..(1_usize << exp).saturating_add(jitter) {
            std::hint::spin_loop();
        }
    }
}

/// Append-only chunked slot store: `push` under the writer latch,
/// lock-free `get` from any thread. Slots are never reused or moved, so
/// a published `&V` stays valid for the store's lifetime — the property
/// the per-node validation argument rests on (module docs).
struct SlotStore<V> {
    /// Lazily initialized doubling chunks; the outer `Vec` is sized once
    /// at construction and never resized, so `&self` access is safe.
    chunks: Vec<OnceLock<Box<[OnceLock<V>]>>>,
    len: AtomicUsize,
}

impl<V> SlotStore<V> {
    fn new() -> Self {
        SlotStore {
            chunks: (0..STORE_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Maps a slot id to `(chunk index, offset within chunk)`.
    /// Out-of-range ids (e.g. the `NIL` sentinel) map to a chunk index
    /// past `STORE_CHUNKS`, which `get` resolves to `None`.
    fn locate(id: usize) -> (usize, usize) {
        let q = id / STORE_BASE + 1;
        let c = usize::try_from(usize::BITS - 1 - q.leading_zeros()).unwrap_or(0);
        let chunk_start = STORE_BASE * ((1_usize << c) - 1);
        (c, id - chunk_start)
    }

    fn len(&self) -> usize {
        // ORDERING: Acquire pairs with the Release store in `publish`, so
        // thread that observes the new length also observes the slot.
        self.len.load(Ordering::Acquire)
    }

    /// Appends a value and returns its id. Caller must hold the writer
    /// latch (single pusher); concurrent `get`s are safe throughout.
    fn publish(&self, value: V) -> usize {
        // ORDERING: Relaxed — the writer latch serializes all pushes, so
        // no other thread advances `len`; the Release store below is the
        // publication point.
        let id = self.len.load(Ordering::Relaxed);
        let (c, off) = Self::locate(id);
        if let Some(chunk_cell) = self.chunks.get(c) {
            let chunk = chunk_cell.get_or_init(|| {
                (0..STORE_BASE << c)
                    .map(|_| OnceLock::new())
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            });
            if let Some(slot) = chunk.get(off) {
                let displaced = slot.set(value);
                debug_assert!(displaced.is_ok(), "slot store ids are never reused");
            }
        }
        // ORDERING: Release publishes the slot write to readers that
        // load `len` with Acquire.
        self.len.store(id + 1, Ordering::Release);
        id
    }

    /// Lock-free lookup; `None` for never-assigned ids (including the
    /// `NIL` sentinel).
    fn get(&self, id: usize) -> Option<&V> {
        let (c, off) = Self::locate(id);
        self.chunks.get(c)?.get()?.get(off)?.get()
    }
}

/// A tree node with all shared-mutable payload held in atomics, guarded
/// by a per-node seqlock. Writers mutate only while holding
/// `version.write_lock()` (plus the tree's exclusive latch); readers
/// either validate through the seqlock or hold the latch shared.
struct ConcNode<const D: usize> {
    /// Subtree height (0 = leaf). Immutable after construction.
    level: usize,
    /// Seqlock guarding `meta`, `slots`, and `mbr`.
    version: VersionCell,
    /// Entry count in the low bits, [`DEAD_BIT`] in the top bit.
    meta: AtomicUsize,
    /// Child node ids (inner nodes) or record ids (leaves); `NIL` when
    /// unused. Fixed capacity `params.max_entries`.
    slots: Box<[AtomicUsize]>,
    /// The node's own MBR as `f64` bit patterns: `lo[0..D]`, `hi[0..D]`.
    mbr: Box<[AtomicU64]>,
}

impl<const D: usize> ConcNode<D> {
    fn new(level: usize, capacity: usize) -> Self {
        ConcNode {
            level,
            version: VersionCell::new(),
            meta: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| AtomicUsize::new(NIL)).collect(),
            mbr: (0..2 * D).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// `(count, dead)` from one meta load.
    fn plain_meta(&self) -> (usize, bool) {
        // ORDERING: Relaxed — callers either hold the writer latch (sole
        // payload mutator) or revalidate through the seqlock afterwards.
        let m = self.meta.load(Ordering::Relaxed);
        (m & COUNT_MASK, m & DEAD_BIT != 0)
    }

    /// Stores count + dead flag. Caller holds the node write lock (or
    /// the node is not yet published).
    fn store_meta(&self, count: usize, dead: bool) {
        let m = (count & COUNT_MASK) | if dead { DEAD_BIT } else { 0 };
        // ORDERING: Relaxed — the seqlock release bump (or the store's
        // publication) orders this store for readers.
        self.meta.store(m, Ordering::Relaxed);
    }

    fn slot(&self, i: usize) -> usize {
        // ORDERING: Relaxed — guarded by the seqlock / writer latch like
        // every other payload word.
        self.slots.get(i).map_or(NIL, |s| s.load(Ordering::Relaxed))
    }

    fn set_slot(&self, i: usize, value: usize) {
        if let Some(s) = self.slots.get(i) {
            // ORDERING: Relaxed — payload word under the seqlock; the
            // release bump publishes.
            s.store(value, Ordering::Relaxed);
        }
    }

    /// Reads the node's MBR from its atomic bit-pattern words.
    fn load_mbr(&self) -> Rect<D> {
        // ORDERING: Relaxed payload loads — ordered by the surrounding
        // seqlock validation or the writer latch; a torn read is
        // discarded by a failed validation.
        let lo = Vector::from_fn(|i| {
            f64::from_bits(self.mbr.get(i).map_or(0, |w| w.load(Ordering::Relaxed)))
        });
        let hi = Vector::from_fn(|i| {
            f64::from_bits(self.mbr.get(D + i).map_or(0, |w| w.load(Ordering::Relaxed)))
        });
        Rect { lo, hi }
    }

    /// Stores the node's MBR. Caller holds the node write lock (or the
    /// node is not yet published).
    fn store_mbr(&self, rect: &Rect<D>) {
        let words = rect.lo.as_slice().iter().chain(rect.hi.as_slice().iter());
        for (w, v) in self.mbr.iter().zip(words) {
            // ORDERING: Relaxed — payload word under the seqlock; the
            // release bump publishes.
            w.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A validated (or about-to-be-validated) copy of one node's payload.
/// Fixed-size and stack-only so capturing never allocates.
#[derive(Clone, Copy)]
struct NodeSnapshot<const D: usize> {
    level: usize,
    count: usize,
    dead: bool,
    mbr: Rect<D>,
    slots: [usize; MAX_FANOUT],
}

impl<const D: usize> NodeSnapshot<D> {
    fn slot_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().take(self.count).copied()
    }
}

/// Copies a node's payload words. Consistency is the *caller's*
/// responsibility: either validate through the node's seqlock
/// afterwards, or hold the writer-excluding latch.
// HOT-PATH: runs once per node per optimistic attempt; must stay
// allocation- and lock-free.
fn capture<const D: usize>(node: &ConcNode<D>) -> NodeSnapshot<D> {
    let (count, dead) = node.plain_meta();
    let count = count.min(MAX_FANOUT);
    let mut slots = [NIL; MAX_FANOUT];
    for (i, dst) in slots.iter_mut().enumerate().take(count) {
        *dst = node.slot(i);
    }
    NodeSnapshot {
        level: node.level,
        count,
        dead,
        mbr: node.load_mbr(),
        slots,
    }
}

/// The descent observed a dead node or exhausted a per-node attempt
/// budget; the whole query restarts (rung 3 of the ladder).
struct Interrupted;

/// Deterministic version-conflict injector (the `fault-inject` cargo
/// feature): every `every_nth`-th payload capture bumps the captured
/// node's version so the subsequent validation fails — an artificial
/// "conflict storm" that drives readers down the whole ladder.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Default)]
struct ConflictStorm {
    /// Invalidate every n-th capture (0 = off).
    every_nth: AtomicUsize,
    /// Captures consulted so far.
    hits: AtomicUsize,
    /// Version bumps actually injected.
    injected: AtomicUsize,
}

#[cfg(feature = "fault-inject")]
impl ConflictStorm {
    fn maybe_invalidate<const D: usize>(&self, node: &ConcNode<D>) {
        // ORDERING: Relaxed — configuration word, set before the storm
        // run starts; exactness of the cross-thread schedule is not
        // required, only that bumps happen at the configured rate.
        let n = self.every_nth.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        // ORDERING: Relaxed — statistics counter.
        let hit = self.hits.fetch_add(1, Ordering::Relaxed);
        if (hit + 1) % n == 0 {
            // Bump the version mid-read: lock + immediate unlock moves
            // it two past the reader's snapshot, failing validation. A
            // failed write_lock means a real writer (or another storm
            // bump) already holds the node — contention exists anyway.
            if let Some(guard) = node.version.write_lock() {
                // ORDERING: Relaxed — statistics counter.
                self.injected.fetch_add(1, Ordering::Relaxed);
                drop(guard);
            }
        }
    }
}

/// A concurrent R\*-tree: shared-reader OLC traversal with the
/// contention ladder (module docs), writers serialized on an exclusive
/// latch.
///
/// Compared to [`RTree`](crate::RTree), insertion descends by minimum
/// MBR enlargement and splits with the same R\* margin/overlap
/// heuristics, but skips forced reinsertion (a reinsert would move
/// entries through transient states readers could observe — splits keep
/// every intermediate state consistent). Deletion leaves empty leaves
/// in place instead of condensing the tree. Both divergences affect
/// only tree shape, never query results.
pub struct ConcurrentRTree<const D: usize, T> {
    params: RStarParams,
    ladder: ContentionLadder,
    /// Writer-excluding latch: writers hold it exclusively (serializing
    /// all structural mutation), pessimistic readers hold it shared.
    /// Optimistic readers never touch it.
    latch: RwLock<()>,
    /// Current root node id; swapped (under the exclusive latch) only
    /// when the root splits.
    root: AtomicUsize,
    nodes: SlotStore<ConcNode<D>>,
    records: SlotStore<(Vector<D>, T)>,
    len: AtomicUsize,
    #[cfg(feature = "fault-inject")]
    storm: ConflictStorm,
}

/// Leaf- or child-level split input: a store id plus its bounding rect,
/// so `rstar_split` runs unchanged over the concurrent layout.
struct SplitItem<const D: usize> {
    id: usize,
    rect: Rect<D>,
}

impl<const D: usize> HasMbr<D> for SplitItem<D> {
    fn item_mbr(&self) -> Rect<D> {
        self.rect
    }
}

impl<const D: usize, T> ConcurrentRTree<D, T> {
    /// An empty tree with the paper's page-derived parameters and the
    /// default contention ladder.
    #[must_use]
    pub fn new() -> Self {
        Self::with_params(RStarParams::paper_default(D), ContentionLadder::default())
    }

    /// An empty tree with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.max_entries` exceeds [`MAX_FANOUT`] (node
    /// snapshots are fixed-size stack arrays).
    #[must_use]
    pub fn with_params(params: RStarParams, ladder: ContentionLadder) -> Self {
        assert!(
            params.max_entries <= MAX_FANOUT,
            "max_entries {} exceeds MAX_FANOUT {}",
            params.max_entries,
            MAX_FANOUT
        );
        let nodes = SlotStore::new();
        let root = nodes.publish(ConcNode::new(0, params.max_entries));
        ConcurrentRTree {
            params,
            ladder,
            latch: RwLock::new(()),
            root: AtomicUsize::new(root),
            nodes,
            records: SlotStore::new(),
            len: AtomicUsize::new(0),
            #[cfg(feature = "fault-inject")]
            storm: ConflictStorm::default(),
        }
    }

    /// Number of records currently in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        // ORDERING: Acquire pairs with the Release store in
        // `insert`/`remove`.
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The construction parameters.
    #[must_use]
    pub fn params(&self) -> &RStarParams {
        &self.params
    }

    /// The reader contention-ladder tuning.
    #[must_use]
    pub fn ladder(&self) -> &ContentionLadder {
        &self.ladder
    }

    // ------------------------------------------------------------------
    // Read path (the ladder)
    // ------------------------------------------------------------------

    /// Returns all records whose points lie in `rect` (boundary
    /// inclusive). Safe to call from any number of threads concurrently
    /// with writers.
    #[must_use]
    pub fn query_rect(&self, rect: &Rect<D>) -> Vec<(&Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        self.query_rect_into(rect, &mut stats, &mut out);
        out
    }

    /// Buffer-reusing rectangle query: clears `out`, then appends every
    /// matching record. Allocates a fresh traversal stack; batch callers
    /// should prefer [`ConcurrentRTree::query_rect_with_scratch`].
    pub fn query_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        let mut scratch = ConcQueryScratch::new();
        self.query_rect_with_scratch(rect, stats, &mut scratch, out);
    }

    /// Rectangle query over caller-owned scratch: the traversal stack is
    /// reused across queries, so a batch driver allocates it once.
    ///
    /// Runs the full contention ladder: bounded optimistic attempts per
    /// node, backoff with seeded jitter, whole-descent restarts, and
    /// finally the pessimistic shared-latch path — so this returns a
    /// correct result set under any amount of writer contention.
    pub fn query_rect_with_scratch<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        scratch: &mut ConcQueryScratch,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        for restart in 0..=self.ladder.restart_budget {
            match self.try_collect(rect, stats, &mut scratch.stack, out) {
                Ok(()) => return,
                Err(Interrupted) => self.ladder.backoff(restart, 0x5EED),
            }
        }
        // Rung 4: writers excluded, plain reads, cannot fail.
        stats.olc_fallbacks = stats.olc_fallbacks.saturating_add(1);
        let shared = lock_shared(&self.latch);
        self.collect_pessimistic(rect, stats, &mut scratch.stack, out);
        drop(shared);
    }

    /// One optimistic descent. Fails (whole-descent restart) on a dead
    /// node or an exhausted per-node attempt budget.
    fn try_collect<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        stack: &mut Vec<usize>,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) -> Result<(), Interrupted> {
        out.clear();
        stack.clear();
        // ORDERING: Acquire pairs with the Release root swap in
        // `grow_root`, so the new root's initialization is visible.
        stack.push(self.root.load(Ordering::Acquire));
        while let Some(id) = stack.pop() {
            let Some(node) = self.nodes.get(id) else {
                return Err(Interrupted);
            };
            let snap = self.read_node(node, id, stats)?;
            if snap.dead {
                return Err(Interrupted);
            }
            self.visit_snapshot(&snap, rect, stats, stack, out);
        }
        Ok(())
    }

    /// Rung 4: the same traversal under the shared latch with plain
    /// (unvalidated) captures. Writers hold the latch exclusively for
    /// every payload write, so captures here are consistent by
    /// construction; concurrent *storm* bumps touch only version words,
    /// never payload, and are irrelevant to this path.
    fn collect_pessimistic<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        stack: &mut Vec<usize>,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        out.clear();
        stack.clear();
        // ORDERING: Acquire pairs with the Release root swap in
        // `grow_root`.
        stack.push(self.root.load(Ordering::Acquire));
        while let Some(id) = stack.pop() {
            let Some(node) = self.nodes.get(id) else {
                continue;
            };
            let snap = capture(node);
            self.visit_snapshot(&snap, rect, stats, stack, out);
        }
    }

    /// Shared per-node visit logic: MBR filter, then either test leaf
    /// records or push children.
    fn visit_snapshot<'t>(
        &'t self,
        snap: &NodeSnapshot<D>,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        stack: &mut Vec<usize>,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        stats.nodes_visited = stats.nodes_visited.saturating_add(1);
        if snap.count == 0 || !rect.intersects(&snap.mbr) {
            return;
        }
        if snap.level == 0 {
            for rid in snap.slot_ids() {
                stats.entries_checked = stats.entries_checked.saturating_add(1);
                if let Some((point, data)) = self.records.get(rid) {
                    if rect.contains_point(point) {
                        stats.results = stats.results.saturating_add(1);
                        out.push((point, data));
                    }
                }
            }
        } else {
            for cid in snap.slot_ids() {
                stack.push(cid);
            }
        }
    }

    /// Rungs 1–2: bounded validated reads of one node, with backoff
    /// between attempts. [`ReadOutcome::LockedOnArrival`] (a writer held
    /// the node before we even speculated) waits longer than
    /// [`ReadOutcome::Contended`] (our speculative read was torn), since
    /// the former means a structural change is in flight.
    fn read_node(
        &self,
        node: &ConcNode<D>,
        salt: usize,
        stats: &mut SearchStats,
    ) -> Result<NodeSnapshot<D>, Interrupted> {
        for attempt in 0..self.ladder.node_attempts.max(1) {
            stats.olc_attempts = stats.olc_attempts.saturating_add(1);
            match node.version.read_tracked(0, || self.snapshot_payload(node)) {
                ReadOutcome::Validated { value, .. } => {
                    stats.record_olc_depth(attempt);
                    return Ok(value);
                }
                ReadOutcome::Contended { .. } => {
                    stats.olc_retries = stats.olc_retries.saturating_add(1);
                    self.ladder.backoff(attempt, salt);
                }
                ReadOutcome::LockedOnArrival { .. } => {
                    stats.olc_retries = stats.olc_retries.saturating_add(1);
                    self.ladder.backoff(attempt.saturating_add(2), salt);
                }
            }
        }
        Err(Interrupted)
    }

    /// The speculative payload read passed to
    /// [`VersionCell::read_tracked`]: pure capture, plus the
    /// fault-injected version bump when a conflict storm is configured.
    // HOT-PATH: one call per optimistic attempt; allocation- and
    // lock-free (the storm's `write_lock` is a non-blocking CAS).
    fn snapshot_payload(&self, node: &ConcNode<D>) -> NodeSnapshot<D> {
        #[cfg(feature = "fault-inject")]
        self.storm.maybe_invalidate(node);
        capture(node)
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Inserts a record. Writers serialize on the exclusive latch;
    /// readers keep running optimistically throughout.
    pub fn insert(&self, point: Vector<D>, data: T) {
        let exclusive = lock_exclusive(&self.latch);
        let rid = self.records.publish((point, data));
        let Some((point, _)) = self.records.get(rid) else {
            return;
        };
        // ORDERING: Relaxed — root swaps happen only under the latch we
        // hold.
        let root_id = self.root.load(Ordering::Relaxed);
        if let Some((left, right)) = self.insert_rec(root_id, point, rid) {
            self.grow_root(left, right);
        }
        // ORDERING: Release pairs with the Acquire load in `len`.
        self.len
            .store(self.len.load(Ordering::Relaxed) + 1, Ordering::Release);
        drop(exclusive);
    }

    /// Removes one record matching `point` and `data` exactly (`f64`
    /// bit-for-bit via `==`, like [`RTree::remove`](crate::RTree::remove)).
    /// Returns whether a record was removed. Empty leaves are left in
    /// place (readers skip zero-count nodes); the tree is not condensed.
    pub fn remove(&self, point: &Vector<D>, data: &T) -> bool
    where
        T: PartialEq,
    {
        let exclusive = lock_exclusive(&self.latch);
        // ORDERING: Relaxed — root swaps happen only under the latch we
        // hold.
        let root_id = self.root.load(Ordering::Relaxed);
        let removed = self.remove_rec(root_id, point, data);
        if removed {
            // ORDERING: Release pairs with the Acquire load in `len`;
            // the Relaxed load is safe because only latch holders write.
            self.len.store(
                self.len.load(Ordering::Relaxed).saturating_sub(1),
                Ordering::Release,
            );
        }
        drop(exclusive);
        removed
    }

    /// Recursive insert descent. Returns `Some((left, right))` when the
    /// visited node split: the node is now dead and the parent must
    /// replace it with the two fresh nodes.
    fn insert_rec(&self, id: usize, point: &Vector<D>, rid: usize) -> Option<(usize, usize)> {
        let Some(node) = self.nodes.get(id) else {
            debug_assert!(false, "insert descended to a missing node");
            return None;
        };
        let (count, _) = node.plain_meta();
        if node.level == 0 {
            if count < self.params.max_entries {
                let guard = self.acquire_node(node);
                node.set_slot(count, rid);
                let mut mbr = if count == 0 {
                    Rect::from_point(point)
                } else {
                    node.load_mbr()
                };
                mbr.extend_point(point);
                node.store_mbr(&mbr);
                node.store_meta(count + 1, false);
                drop(guard);
                return None;
            }
            // Leaf overflow: split count + 1 records into two fresh
            // leaves; the old leaf dies.
            let mut items = Vec::with_capacity(count + 1);
            for s in node.slots.iter().take(count) {
                // ORDERING: Relaxed — we hold the writer latch.
                let existing = s.load(Ordering::Relaxed);
                if let Some((p, _)) = self.records.get(existing) {
                    items.push(SplitItem {
                        id: existing,
                        rect: Rect::from_point(p),
                    });
                }
            }
            items.push(SplitItem {
                id: rid,
                rect: Rect::from_point(point),
            });
            let split = rstar_split(items, self.params.min_entries);
            let left = self.new_node_from(0, &split.left);
            let right = self.new_node_from(0, &split.right);
            self.kill_node(node);
            return Some((left, right));
        }

        // Inner node: descend into the least-enlarged child.
        let Some(target) = self.choose_child(node, count, point) else {
            debug_assert!(false, "inner node with no live children");
            return None;
        };
        let child_split = self.insert_rec(target, point, rid);
        let Some((left, right)) = child_split else {
            // Child absorbed the record: just widen our MBR.
            let guard = self.acquire_node(node);
            let mut mbr = node.load_mbr();
            mbr.extend_point(point);
            node.store_mbr(&mbr);
            drop(guard);
            return None;
        };
        if count < self.params.max_entries {
            // Replace the dead child with `left`, append `right`, and
            // recompute the MBR — all in one version-locked write, so a
            // reader sees the pre-update child list (and restarts at the
            // dead child) or the complete post-update list, never a mix.
            let guard = self.acquire_node(node);
            for s in node.slots.iter().take(count) {
                // ORDERING: Relaxed — node write lock + writer latch held.
                if s.load(Ordering::Relaxed) == target {
                    s.store(left, Ordering::Relaxed);
                }
            }
            node.set_slot(count, right);
            node.store_meta(count + 1, false);
            if let Some(mbr) = self.children_union(node, count + 1) {
                node.store_mbr(&mbr);
            }
            drop(guard);
            return None;
        }
        // Inner overflow: rebuild the child list with the replacement
        // pair, split it, and die.
        let mut items = Vec::with_capacity(count + 1);
        for s in node.slots.iter().take(count) {
            // ORDERING: Relaxed — we hold the writer latch.
            let cid = s.load(Ordering::Relaxed);
            let cid = if cid == target { left } else { cid };
            if let Some(child) = self.nodes.get(cid) {
                items.push(SplitItem {
                    id: cid,
                    rect: child.load_mbr(),
                });
            }
        }
        if let Some(child) = self.nodes.get(right) {
            items.push(SplitItem {
                id: right,
                rect: child.load_mbr(),
            });
        }
        let split = rstar_split(items, self.params.min_entries);
        let a = self.new_node_from(node.level, &split.left);
        let b = self.new_node_from(node.level, &split.right);
        self.kill_node(node);
        Some((a, b))
    }

    /// Recursive remove descent; `true` once a record was removed.
    fn remove_rec(&self, id: usize, point: &Vector<D>, data: &T) -> bool
    where
        T: PartialEq,
    {
        let Some(node) = self.nodes.get(id) else {
            return false;
        };
        let (count, _) = node.plain_meta();
        if count == 0 || !node.load_mbr().contains_point(point) {
            return false;
        }
        if node.level == 0 {
            let mut found = None;
            for (i, s) in node.slots.iter().take(count).enumerate() {
                // ORDERING: Relaxed — we hold the writer latch.
                let rid = s.load(Ordering::Relaxed);
                if let Some((p, d)) = self.records.get(rid) {
                    if p == point && d == data {
                        found = Some(i);
                        break;
                    }
                }
            }
            let Some(idx) = found else {
                return false;
            };
            let guard = self.acquire_node(node);
            let last = node.slot(count - 1);
            node.set_slot(idx, last);
            node.set_slot(count - 1, NIL);
            node.store_meta(count - 1, false);
            if let Some(mbr) = self.leaf_union(node, count - 1) {
                node.store_mbr(&mbr);
            }
            drop(guard);
            return true;
        }
        for s in node.slots.iter().take(count) {
            // ORDERING: Relaxed — we hold the writer latch.
            let cid = s.load(Ordering::Relaxed);
            if self.remove_rec(cid, point, data) {
                let guard = self.acquire_node(node);
                if let Some(mbr) = self.children_union(node, count) {
                    node.store_mbr(&mbr);
                }
                drop(guard);
                return true;
            }
        }
        false
    }

    /// Builds, publishes, and links a fresh node from split output.
    /// The node is fully initialized *before* it becomes reachable, so
    /// readers never see a partial node.
    fn new_node_from(&self, level: usize, items: &[SplitItem<D>]) -> usize {
        let node = ConcNode::new(level, self.params.max_entries);
        let mut mbr: Option<Rect<D>> = None;
        for (i, item) in items.iter().enumerate() {
            node.set_slot(i, item.id);
            mbr = Some(match mbr {
                None => item.rect,
                Some(acc) => acc.union(&item.rect),
            });
        }
        if let Some(mbr) = mbr {
            node.store_mbr(&mbr);
        }
        node.store_meta(items.len(), false);
        self.nodes.publish(node)
    }

    /// Marks a node dead (split away) under its write lock; the version
    /// bump makes every in-flight optimistic capture of it invalid, and
    /// later readers restart on the flag.
    fn kill_node(&self, node: &ConcNode<D>) {
        let guard = self.acquire_node(node);
        node.store_meta(0, true);
        drop(guard);
    }

    /// Installs a new root over the split halves of the old one.
    fn grow_root(&self, left: usize, right: usize) {
        let level = self.nodes.get(left).map_or(0, |n| n.level) + 1;
        let node = ConcNode::new(level, self.params.max_entries);
        node.set_slot(0, left);
        node.set_slot(1, right);
        let left_mbr = self.nodes.get(left).map(ConcNode::load_mbr);
        let right_mbr = self.nodes.get(right).map(ConcNode::load_mbr);
        if let (Some(a), Some(b)) = (left_mbr, right_mbr) {
            node.store_mbr(&a.union(&b));
        }
        node.store_meta(2, false);
        let id = self.nodes.publish(node);
        // ORDERING: Release pairs with the Acquire root load in the
        // traversals: a reader that sees the new id sees its payload.
        self.root.store(id, Ordering::Release);
    }

    /// Acquires a node's version write lock, spinning out concurrent
    /// storm bumps (the only other write-lockers; real writers are
    /// serialized by the latch, so this terminates promptly).
    fn acquire_node<'a>(&self, node: &'a ConcNode<D>) -> WriteGuard<'a> {
        loop {
            if let Some(guard) = node.version.write_lock() {
                return guard;
            }
            std::hint::spin_loop();
        }
    }

    /// Least-enlargement child choice (ties: smaller area), reading
    /// child MBRs directly — the writer holds the latch, so they are
    /// stable.
    fn choose_child(&self, node: &ConcNode<D>, count: usize, point: &Vector<D>) -> Option<usize> {
        let prect = Rect::from_point(point);
        let mut best: Option<(usize, f64, f64)> = None;
        for s in node.slots.iter().take(count) {
            // ORDERING: Relaxed — we hold the writer latch.
            let cid = s.load(Ordering::Relaxed);
            let Some(child) = self.nodes.get(cid) else {
                continue;
            };
            let r = child.load_mbr();
            let enlargement = r.enlargement(&prect);
            let area = r.area();
            let better = match best {
                None => true,
                Some((_, be, ba)) => enlargement < be || (enlargement <= be && area < ba),
            };
            if better {
                best = Some((cid, enlargement, area));
            }
        }
        best.map(|(cid, _, _)| cid)
    }

    /// Union of the first `count` children's MBRs (writer-side).
    fn children_union(&self, node: &ConcNode<D>, count: usize) -> Option<Rect<D>> {
        let mut acc: Option<Rect<D>> = None;
        for s in node.slots.iter().take(count) {
            // ORDERING: Relaxed — we hold the writer latch.
            let cid = s.load(Ordering::Relaxed);
            if let Some(child) = self.nodes.get(cid) {
                let r = child.load_mbr();
                acc = Some(match acc {
                    None => r,
                    Some(a) => a.union(&r),
                });
            }
        }
        acc
    }

    /// Union of the first `count` records' points (writer-side).
    fn leaf_union(&self, node: &ConcNode<D>, count: usize) -> Option<Rect<D>> {
        let mut acc: Option<Rect<D>> = None;
        for s in node.slots.iter().take(count) {
            // ORDERING: Relaxed — we hold the writer latch.
            let rid = s.load(Ordering::Relaxed);
            if let Some((p, _)) = self.records.get(rid) {
                acc = Some(match acc {
                    None => Rect::from_point(p),
                    Some(mut a) => {
                        a.extend_point(p);
                        a
                    }
                });
            }
        }
        acc
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Structural self-check, for tests: walks the live tree under the
    /// shared latch and verifies level monotonicity, occupancy bounds,
    /// MBR containment, that no dead node is reachable, and that the
    /// reachable record count matches [`ConcurrentRTree::len`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let shared = lock_shared(&self.latch);
        // ORDERING: Acquire pairs with the Release root swap.
        let root_id = self.root.load(Ordering::Acquire);
        let mut reachable = 0_usize;
        let mut stack = vec![root_id];
        while let Some(id) = stack.pop() {
            let Some(node) = self.nodes.get(id) else {
                return Err(format!("node id {id} does not resolve"));
            };
            let snap = capture(node);
            if snap.dead {
                return Err(format!("dead node {id} is reachable"));
            }
            if snap.count > self.params.max_entries {
                return Err(format!(
                    "node {id} holds {} entries (max {})",
                    snap.count, self.params.max_entries
                ));
            }
            if snap.level == 0 {
                for rid in snap.slot_ids() {
                    let Some((p, _)) = self.records.get(rid) else {
                        return Err(format!("record id {rid} does not resolve"));
                    };
                    if snap.count > 0 && !snap.mbr.contains_point(p) {
                        return Err(format!("leaf {id} MBR does not contain its record"));
                    }
                    reachable += 1;
                }
            } else {
                if snap.count == 0 {
                    return Err(format!("inner node {id} has no children"));
                }
                for cid in snap.slot_ids() {
                    let Some(child) = self.nodes.get(cid) else {
                        return Err(format!("child id {cid} does not resolve"));
                    };
                    if child.level + 1 != snap.level {
                        return Err(format!(
                            "child {cid} level {} under node {id} level {}",
                            child.level, snap.level
                        ));
                    }
                    let (ccount, cdead) = child.plain_meta();
                    if cdead {
                        return Err(format!("dead child {cid} linked under {id}"));
                    }
                    if ccount > 0 && !snap.mbr.contains_rect(&child.load_mbr()) {
                        return Err(format!("node {id} MBR does not contain child {cid}"));
                    }
                    stack.push(cid);
                }
            }
        }
        drop(shared);
        if reachable != self.len() {
            return Err(format!(
                "reachable records {reachable} != len {}",
                self.len()
            ));
        }
        Ok(())
    }

    /// Total nodes ever allocated (live + dead), for tests and benches.
    #[must_use]
    pub fn nodes_allocated(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // Fault injection (`fault-inject` feature)
    // ------------------------------------------------------------------

    /// Configures a conflict storm: every `every_nth`-th optimistic
    /// payload capture gets its node version bumped mid-read, failing
    /// validation. `1` invalidates **every** capture — the adversarial
    /// schedule the chaos suite uses to prove the ladder terminates.
    /// `0` turns the storm off.
    #[cfg(feature = "fault-inject")]
    pub fn inject_conflict_storm(&self, every_nth: usize) {
        // ORDERING: Relaxed — configuration word read by the storm site.
        self.storm.every_nth.store(every_nth, Ordering::Relaxed);
    }

    /// Version bumps the storm has injected so far.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn storm_injections(&self) -> usize {
        // ORDERING: Relaxed — statistics counter.
        self.storm.injected.load(Ordering::Relaxed)
    }
}

impl<const D: usize, T> Default for ConcurrentRTree<D, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, T> Phase1Index<D, T> for ConcurrentRTree<D, T> {
    fn search_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        self.query_rect_into(rect, stats, out);
    }
}

/// Reusable traversal scratch for
/// [`ConcurrentRTree::query_rect_with_scratch`]: owns the explicit DFS
/// stack so repeated queries reuse its backing allocation.
#[derive(Debug, Default)]
pub struct ConcQueryScratch {
    stack: Vec<usize>,
}

impl ConcQueryScratch {
    /// Empty scratch (no allocation until first use).
    #[must_use]
    pub fn new() -> Self {
        ConcQueryScratch { stack: Vec::new() }
    }
}

/// Shared-latch acquisition tolerant of poisoning: a reader panicking
/// cannot corrupt the latch's `()` payload, so recovering the guard is
/// always sound.
fn lock_shared(latch: &RwLock<()>) -> RwLockReadGuard<'_, ()> {
    latch.read().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive-latch acquisition tolerant of poisoning (see
/// [`lock_shared`]).
fn lock_exclusive(latch: &RwLock<()>) -> RwLockWriteGuard<'_, ()> {
    latch.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Vector<2>, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 29) as f64;
                let y = (i / 29) as f64;
                (Vector::from([x, y]), i)
            })
            .collect()
    }

    fn sorted_payloads(hits: &[(&Vector<2>, &usize)]) -> Vec<usize> {
        let mut v: Vec<usize> = hits.iter().map(|(_, d)| **d).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        assert!(tree.is_empty());
        let hits = tree.query_rect(&Rect::everything());
        assert!(hits.is_empty());
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn insert_query_parity_with_sequential_tree() {
        let points = grid_points(500);
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        let mut seq = crate::RTree::with_params(RStarParams::paper_default(2));
        for (p, d) in &points {
            tree.insert(*p, *d);
            seq.insert(*p, *d);
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        for (lo, hi) in [
            ([0.0, 0.0], [5.0, 5.0]),
            ([3.0, 2.0], [20.0, 11.0]),
            ([100.0, 100.0], [200.0, 200.0]),
        ] {
            let rect = Rect::from_corners(&Vector::from(lo), &Vector::from(hi));
            let mut got = sorted_payloads(&tree.query_rect(&rect));
            let mut want: Vec<usize> = seq.query_rect(&rect).iter().map(|(_, d)| **d).collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "rect {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn splits_grow_the_tree_and_keep_every_record() {
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        let points = grid_points(2000);
        for (p, d) in &points {
            tree.insert(*p, *d);
        }
        assert_eq!(tree.len(), 2000);
        assert!(
            tree.nodes_allocated() > 1,
            "2000 inserts must split the root at paper fan-out"
        );
        assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        let all = tree.query_rect(&Rect::everything());
        assert_eq!(sorted_payloads(&all), (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn remove_deletes_exactly_one_matching_record() {
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        for (p, d) in grid_points(300) {
            tree.insert(p, d);
        }
        let victim = Vector::from([7.0, 3.0]); // i = 7 + 3*29 = 94
        assert!(tree.remove(&victim, &94));
        assert!(!tree.remove(&victim, &94), "already removed");
        assert_eq!(tree.len(), 299);
        assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        let all = tree.query_rect(&Rect::everything());
        assert_eq!(all.len(), 299);
        assert!(sorted_payloads(&all).binary_search(&94).is_err());
    }

    #[test]
    fn stats_account_for_the_optimistic_ladder() {
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        for (p, d) in grid_points(400) {
            tree.insert(p, d);
        }
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        tree.query_rect_into(&Rect::everything(), &mut stats, &mut out);
        assert_eq!(out.len(), 400);
        assert!(stats.nodes_visited > 0);
        // Quiescent tree: every node read validates on the first
        // attempt, so attempts == visits, no retries, no fallbacks.
        assert_eq!(stats.olc_attempts, stats.nodes_visited);
        assert_eq!(stats.olc_retries, 0);
        assert_eq!(stats.olc_fallbacks, 0);
        assert_eq!(
            stats.olc_retry_depth.first().copied(),
            Some(stats.nodes_visited)
        );
    }

    #[test]
    fn zero_restart_budget_still_answers_via_fallback() {
        let ladder = ContentionLadder {
            node_attempts: 1,
            restart_budget: 0,
            ..ContentionLadder::default()
        };
        let tree: ConcurrentRTree<2, usize> =
            ConcurrentRTree::with_params(RStarParams::paper_default(2), ladder);
        for (p, d) in grid_points(200) {
            tree.insert(p, d);
        }
        // Quiescent: even budget 0 answers optimistically (one clean pass).
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        tree.query_rect_into(&Rect::everything(), &mut stats, &mut out);
        assert_eq!(out.len(), 200);
        assert_eq!(stats.olc_fallbacks, 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn full_storm_forces_fallback_with_correct_results() {
        let tree: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
        for (p, d) in grid_points(400) {
            tree.insert(p, d);
        }
        tree.inject_conflict_storm(1); // invalidate every capture
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        tree.query_rect_into(&Rect::everything(), &mut stats, &mut out);
        assert_eq!(out.len(), 400, "storm must not lose records");
        assert!(stats.olc_fallbacks > 0, "100% storm must hit the fallback");
        assert!(stats.olc_retries > 0);
        assert!(tree.storm_injections() > 0);
        tree.inject_conflict_storm(0);
        let mut calm = SearchStats::default();
        tree.query_rect_into(&Rect::everything(), &mut calm, &mut out);
        assert_eq!(calm.olc_fallbacks, 0, "storm off: optimistic again");
    }

    #[test]
    fn jitter_salt_is_stable_per_thread_and_distinct_across_threads() {
        let here = thread_jitter_salt();
        assert_eq!(here, thread_jitter_salt(), "salt must be stable");
        let salts: Vec<u64> = (0..4)
            .map(|_| std::thread::spawn(thread_jitter_salt))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("salt thread"))
            .collect();
        for (i, s) in salts.iter().enumerate() {
            assert_ne!(*s, here, "thread {i} collided with the main thread");
            for other in &salts[i + 1..] {
                assert_ne!(s, other, "two spawned threads share a salt");
            }
        }
    }

    #[test]
    fn slot_store_locate_roundtrips() {
        // Chunk boundaries: 0..64 in chunk 0, 64..192 in chunk 1, ...
        assert_eq!(SlotStore::<u8>::locate(0), (0, 0));
        assert_eq!(SlotStore::<u8>::locate(63), (0, 63));
        assert_eq!(SlotStore::<u8>::locate(64), (1, 0));
        assert_eq!(SlotStore::<u8>::locate(191), (1, 127));
        assert_eq!(SlotStore::<u8>::locate(192), (2, 0));
        let store: SlotStore<usize> = SlotStore::new();
        for i in 0..500 {
            assert_eq!(store.publish(i * 3), i);
        }
        for i in 0..500 {
            assert_eq!(store.get(i).copied(), Some(i * 3));
        }
        assert_eq!(store.get(500), None);
        assert_eq!(store.get(NIL), None);
    }
}
