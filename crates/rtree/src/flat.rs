//! Cache-conscious read-optimized R\*-tree: a frozen, flat-arena image
//! of an [`RTree`] built for Phase-1 scan speed (ROADMAP item 3).
//!
//! The pointer tree stores each node as a `Vec`-of-`Vec` (`Node`):
//! every descent chases heap pointers and tests child MBRs stored as
//! interleaved `{lo, hi}` structs, ~88 bytes apart. [`FlatRTree`]
//! freezes that structure into four contiguous arrays:
//!
//! * **node arena** — one 16-byte `FlatNode` per node in BFS order,
//!   children addressed by `u32` offsets and stored contiguously, so a
//!   node's child headers share cache lines;
//! * **SoA bounds arena** — per internal node, its children's MBRs laid
//!   out dimension-major (`cnt` mins then `cnt` maxes per dimension),
//!   so the AABB overlap test is a branch-free row scan that
//!   auto-vectorizes like the Phase-3 `count_hits` kernel; per leaf,
//!   the entry coordinates in the same dimension-major shape;
//! * **entry columns** — leaf points and payloads in global leaf order,
//!   so the `Phase1Index` borrow contract (`(&Vector, &T)`) is served
//!   from two dense arrays.
//!
//! Every node also carries a *hint key* — its own MBR in a dense side
//! array — checked once per visit: any dimension in which the query
//! rectangle covers the node's full extent is skipped in the row scans
//! (every child/entry trivially passes it). Large query rectangles
//! degenerate to near-copy scans.
//!
//! Two constructors with different parity contracts:
//!
//! * [`FlatRTree::freeze`] preserves the source topology exactly —
//!   candidate order *and* every [`SearchStats`] counter are bitwise
//!   identical to the pointer tree's [`RTree::query_rect_into`];
//! * [`FlatRTree::bulk_load`] re-packs with a cache-line-multiple
//!   fanout ([`PACKED_FANOUT`]), trading stat-compatibility for fewer,
//!   wider nodes — the candidate *set* is still identical (same
//!   boundary-inclusive predicates on the same points).
//!
//! The index is immutable by design: the OLC
//! [`ConcurrentRTree`](crate::ConcurrentRTree) stays the mutable front
//! and a flat image is re-frozen at publish points (DESIGN.md §16).

use crate::node::Node;
use crate::params::RStarParams;
use crate::query::{Phase1Index, SearchStats};
use crate::rect::Rect;
use crate::tree::RTree;
use gprq_linalg::Vector;
use std::collections::VecDeque;

/// Scan block width: children/entries are scanned up to `CHUNK` at a
/// time, each block's survivors held as one `u64` bitset — so no node
/// size forces a heap allocation, and must stay ≤ 64 (the bitset width).
const CHUNK: usize = 64;

/// Fanout of [`FlatRTree::bulk_load`]-packed trees: 64 entries per
/// node. One SoA row of a 64-wide node is 64 × 8 B = 512 B = 8 cache
/// lines walked sequentially with no branches, and the node count (and
/// with it the tree height and per-level header traffic) drops ~2.5×
/// against the paper's 1 KB-page fanout of 25.
pub const PACKED_FANOUT: usize = 64;

/// One node of the flat arena: 16 bytes, no pointers.
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    /// Start of this node's SoA block in the bounds arena.
    block: u32,
    /// First child node index (internal) or first entry index (leaf).
    first: u32,
    /// Number of children (internal) or entries (leaf).
    count: u32,
    /// Height above the leaf level; `0` marks a leaf.
    level: u32,
}

/// A read-optimized, cache-conscious flat image of an [`RTree`].
///
/// Implements [`Phase1Index`], so the PRQ executors and the batched
/// query engine (`QueryBatch` in the core crate) run over it
/// unchanged; see the module docs for the layout and parity contracts.
///
/// ```
/// use gprq_rtree::{FlatRTree, Phase1Index, RTree, RStarParams, Rect, SearchStats};
/// use gprq_linalg::Vector;
///
/// let points: Vec<(Vector<2>, u32)> = (0..500)
///     .map(|i| (Vector::from([(i % 23) as f64, (i % 41) as f64]), i))
///     .collect();
/// let flat = FlatRTree::bulk_load(points.clone());
/// assert_eq!(flat.len(), 500);
///
/// let rect = Rect::centered(&Vector::from([10.0, 20.0]), &Vector::from([3.0, 5.0]));
/// let mut stats = SearchStats::default();
/// let mut out = Vec::new();
/// flat.search_rect_into(&rect, &mut stats, &mut out);
/// let brute = points.iter().filter(|(p, _)| rect.contains_point(p)).count();
/// assert_eq!(out.len(), brute);
/// ```
#[derive(Debug, Clone)]
pub struct FlatRTree<const D: usize, T> {
    /// Node arena in BFS order; the root is `nodes[0]` when non-empty.
    nodes: Vec<FlatNode>,
    /// SoA blocks, dimension-major per node (see module docs).
    bounds: Vec<f64>,
    /// Per-node hint keys: each node's own MBR as `2 * D` floats
    /// (`lo_0, hi_0, lo_1, hi_1, …`), indexed by node * 2D.
    boxes: Vec<f64>,
    /// Leaf points in global leaf order (the borrow the trait returns).
    points: Vec<Vector<D>>,
    /// Payloads aligned with `points`.
    payloads: Vec<T>,
    /// Record count.
    len: usize,
    /// Tree height (a lone leaf root has height 1; empty tree 0).
    height: usize,
    /// MBR of the whole dataset (meaningful only when `len > 0`).
    root_mbr: Rect<D>,
}

impl<const D: usize, T> FlatRTree<D, T> {
    /// The cache-tuned R\* parameters used by [`FlatRTree::bulk_load`].
    pub fn packed_params() -> RStarParams {
        RStarParams::new(PACKED_FANOUT)
    }

    /// Builds a packed flat index directly from records: STR bulk load
    /// at [`PACKED_FANOUT`], then freeze. Candidate sets match any
    /// other backend over the same records; node-visit statistics
    /// reflect the packed topology (fewer, wider nodes).
    ///
    /// # Panics
    ///
    /// Panics if any point is non-finite, or on a dataset too large for
    /// `u32` node/entry addressing (≥ 2³² records).
    pub fn bulk_load(points: Vec<(Vector<D>, T)>) -> Self {
        Self::freeze(RTree::bulk_load(points, Self::packed_params()))
    }

    /// Freezes `tree` into a flat image with the **same topology**:
    /// per query, the candidate list, its order, and every counter in
    /// [`SearchStats`] are bitwise identical to the source tree's
    /// [`RTree::query_rect_into`] (pinned by `tests/flat_parity.rs`).
    ///
    /// Consumes the tree, so payloads need not be `Clone`; the source
    /// remains available by freezing a clone when both are wanted.
    ///
    /// # Panics
    ///
    /// Panics if any stored point is non-finite (the hint keys assume
    /// every point lies inside its leaf MBR, which `NaN` breaks), or if
    /// the tree exceeds `u32` node/entry/arena addressing — beyond
    /// in-memory scale for this index.
    pub fn freeze(tree: RTree<D, T>) -> Self {
        let len = tree.len();
        let height = if len == 0 { 0 } else { tree.height() };
        if len == 0 {
            return FlatRTree {
                nodes: Vec::new(),
                bounds: Vec::new(),
                boxes: Vec::new(),
                points: Vec::new(),
                payloads: Vec::new(),
                len: 0,
                height: 0,
                root_mbr: Rect::from_point(&Vector::ZERO),
            };
        }
        let n_nodes = tree.node_count();
        // Exact arena size: D floats per entry (leaf rows) plus 2·D per
        // parent-held child MBR (every node except the root is a child
        // exactly once).
        let arena = D * len + 2 * D * n_nodes.saturating_sub(1);
        let addressable = u32::MAX as usize;
        assert!(
            n_nodes <= addressable && len <= addressable && arena <= addressable,
            "flat R*-tree exceeds u32 addressing: {n_nodes} nodes / {len} entries"
        );
        let root_mbr = tree.root.mbr;

        let mut nodes: Vec<FlatNode> = Vec::with_capacity(n_nodes);
        let mut bounds: Vec<f64> = Vec::with_capacity(arena);
        let mut boxes: Vec<f64> = Vec::with_capacity(2 * D * n_nodes);
        let mut points: Vec<Vector<D>> = Vec::with_capacity(len);
        let mut payloads: Vec<T> = Vec::with_capacity(len);

        // BFS flattening: nodes take indices in enqueue order, so each
        // parent's children occupy a contiguous index range starting at
        // `next_index` when the parent is popped.
        let mut queue: VecDeque<Node<D, T>> = VecDeque::new();
        queue.push_back(tree.root);
        let mut next_index = 1usize;
        while let Some(node) = queue.pop_front() {
            for d in 0..D {
                boxes.push(node.mbr.lo[d]);
                boxes.push(node.mbr.hi[d]);
            }
            // Bounds proven <= u32::MAX by the addressing assert above.
            let block = bounds.len() as u32;
            if node.is_leaf() {
                let first = points.len() as u32;
                let count = node.entries.len() as u32;
                for d in 0..D {
                    for e in &node.entries {
                        bounds.push(e.point[d]);
                    }
                }
                for e in node.entries {
                    assert!(
                        e.point.is_finite(),
                        "flat R*-tree keys must be finite (hint keys rely on points lying inside their leaf MBR)"
                    );
                    points.push(e.point);
                    payloads.push(e.data);
                }
                nodes.push(FlatNode {
                    block,
                    first,
                    count,
                    level: 0,
                });
            } else {
                let first = next_index as u32;
                let count = node.children.len() as u32;
                for d in 0..D {
                    for c in &node.children {
                        bounds.push(c.mbr.lo[d]);
                    }
                    for c in &node.children {
                        bounds.push(c.mbr.hi[d]);
                    }
                }
                nodes.push(FlatNode {
                    block,
                    first,
                    count,
                    level: node.level,
                });
                next_index += node.children.len();
                for c in node.children {
                    queue.push_back(c);
                }
            }
        }
        FlatRTree {
            nodes,
            bounds,
            boxes,
            points,
            payloads,
            len,
            height,
            root_mbr,
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the frozen tree (a lone leaf root has height 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes in the flat arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// MBR of the whole dataset (`None` when empty).
    pub fn bounding_rect(&self) -> Option<Rect<D>> {
        if self.is_empty() {
            None
        } else {
            Some(self.root_mbr)
        }
    }

    /// Iterates over all `(point, payload)` records in global leaf
    /// order (the freeze-time BFS leaf order).
    pub fn iter(&self) -> impl Iterator<Item = (&Vector<D>, &T)> {
        std::iter::zip(self.points.iter(), self.payloads.iter())
    }

    /// Returns all records whose points lie in `rect`.
    pub fn query_rect(&self, rect: &Rect<D>) -> Vec<(&Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.query_rect_with_stats(rect, &mut stats)
    }

    /// [`FlatRTree::query_rect`] with statistics accumulation.
    pub fn query_rect_with_stats(
        &self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
    ) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        self.query_rect_into(rect, stats, &mut out);
        out
    }

    /// Buffer-reusing rectangle query: clears `out`, then appends every
    /// record whose point lies in `rect` (boundary inclusive). On a
    /// [`FlatRTree::freeze`]-built index this reproduces the source
    /// tree's results and statistics bitwise.
    pub fn query_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        out.clear();
        if self.len == 0 {
            return;
        }
        self.descend_rect(0, rect, stats, &mut |p, d| out.push((p, d)));
    }

    /// Packed multi-rectangle probe: answers `rects[q]` into `out[q]`
    /// with per-query statistics in `stats[q]`, for every `q` up to the
    /// shortest of the three slices (every `out[q]` is cleared first,
    /// including any beyond that length).
    ///
    /// One descent serves the whole batch: at each node, a single pass
    /// over its SoA block computes every active query's child hit mask,
    /// and the shared depth-first order then carries the per-child
    /// query subsets down. Per query, the candidates, their order, and
    /// all counters are identical to a solo
    /// [`FlatRTree::query_rect_into`] call — batching is a pure
    /// amortization (pinned by `tests/flat_parity.rs`).
    pub fn query_rects_into<'t>(
        &'t self,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
    ) {
        for buf in out.iter_mut() {
            buf.clear();
        }
        let n = rects.len().min(stats.len()).min(out.len());
        if n == 0 || self.len == 0 {
            return;
        }
        // Segment arena for active-query subsets, used stack-wise: a
        // node's segment lives at [seg_start, seg_start + seg_len); each
        // child's filtered subset is appended, recursed into, and
        // truncated away — one growable buffer for the whole descent
        // instead of a Vec per internal node.
        let mut arena: Vec<usize> = (0..n).collect();
        self.multi_descend(0, rects, stats, out, &mut arena, 0, n);
    }

    // Packed multi-rect descent over the flat arena. Allocates the
    // per-chunk mask scratch, so — like `multi_rect_rec` on the pointer
    // tree — it is deliberately not a HOT-PATH root; the batch layer
    // trades one small allocation per internal node visit for scanning
    // shared upper levels once per batch.
    #[allow(clippy::too_many_arguments)]
    fn multi_descend<'t>(
        &'t self,
        idx: usize,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
        arena: &mut Vec<usize>,
        seg_start: usize,
        seg_len: usize,
    ) {
        let Some(&node) = self.nodes.get(idx) else {
            return;
        };
        let cnt = node.count as usize;
        let block = node.block as usize;
        let first = node.first as usize;
        for j in seg_start..seg_start + seg_len {
            let Some(&q) = arena.get(j) else { break };
            if let Some(st) = stats.get_mut(q) {
                st.nodes_visited += 1;
            }
        }
        if node.level == 0 {
            for j in seg_start..seg_start + seg_len {
                let Some(&q) = arena.get(j) else { break };
                let (Some(rect), Some(st), Some(buf)) =
                    (rects.get(q), stats.get_mut(q), out.get_mut(q))
                else {
                    continue;
                };
                self.scan_leaf(idx, rect, st, &mut |p, d| buf.push((p, d)));
            }
        } else {
            let mut base = 0usize;
            while base < cnt {
                let take = CHUNK.min(cnt - base);
                // One pass over the SoA block per query: `hit[j]` is the
                // chunk-local child bitset for the j-th segment query.
                let mut hit: Vec<u64> = Vec::with_capacity(seg_len);
                for j in seg_start..seg_start + seg_len {
                    let bits = match arena.get(j).and_then(|&q| rects.get(q)) {
                        Some(rect) => {
                            let covered = self.covered_dims(idx, rect);
                            self.inner_mask(block, cnt, base, take, rect, &covered)
                        }
                        None => 0,
                    };
                    hit.push(bits);
                }
                for i in 0..take {
                    let sub_start = arena.len();
                    for (&h, j) in std::iter::zip(&hit, seg_start..seg_start + seg_len) {
                        if h & (1u64 << i) != 0 {
                            if let Some(&q) = arena.get(j) {
                                arena.push(q);
                            }
                        }
                    }
                    let sub_len = arena.len() - sub_start;
                    if sub_len > 0 {
                        self.multi_descend(
                            first + base + i,
                            rects,
                            stats,
                            out,
                            arena,
                            sub_start,
                            sub_len,
                        );
                    }
                    arena.truncate(sub_start);
                }
                base += take;
            }
        }
    }

    // HOT-PATH: flat-index rectangle descent (cache-conscious Phase 1 inner loop)
    fn descend_rect<'t>(
        &'t self,
        idx: usize,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        visit: &mut impl FnMut(&'t Vector<D>, &'t T),
    ) {
        let Some(&node) = self.nodes.get(idx) else {
            return;
        };
        stats.nodes_visited += 1;
        let cnt = node.count as usize;
        let block = node.block as usize;
        let first = node.first as usize;
        if node.level == 0 {
            self.scan_leaf(idx, rect, stats, visit);
        } else {
            let covered = self.covered_dims(idx, rect);
            let mut base = 0usize;
            while base < cnt {
                let take = CHUNK.min(cnt - base);
                let mut m = self.inner_mask(block, cnt, base, take, rect, &covered);
                // Walk only the set bits (ascending, preserving the
                // source tree's child visit order).
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.descend_rect(first + base + i, rect, stats, visit);
                }
                base += take;
            }
        }
    }

    // HOT-PATH: packed flat leaf probe (branch-free containment scan)
    fn scan_leaf<'t>(
        &'t self,
        idx: usize,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        visit: &mut impl FnMut(&'t Vector<D>, &'t T),
    ) {
        let Some(&node) = self.nodes.get(idx) else {
            return;
        };
        let cnt = node.count as usize;
        let block = node.block as usize;
        let first = node.first as usize;
        let covered = self.covered_dims(idx, rect);
        let mut base = 0usize;
        while base < cnt {
            let take = CHUNK.min(cnt - base);
            let mut m = self.leaf_mask(block, cnt, base, take, rect, &covered);
            // Exact solo semantics: every entry of a visited leaf is
            // "checked" even when a hint skipped its comparisons.
            stats.entries_checked += take;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let e = first + base + i;
                if let (Some(p), Some(d)) = (self.points.get(e), self.payloads.get(e)) {
                    stats.results += 1;
                    visit(p, d);
                }
            }
            base += take;
        }
    }

    // HOT-PATH: branch-free SoA overlap scan over one node's child MBR rows
    //
    // Returns a bitset: bit `i` set iff chunk slot `i` overlaps `rect`
    // — the same boolean per child as `rect.intersects(&child.mbr)`
    // (`q.lo[d] <= child.hi[d] && q.hi[d] >= child.lo[d]` over every
    // dimension). Each dimension's comparison row ANDs into the running
    // bitset branch-free; a row that empties the set short-circuits the
    // remaining dimensions, and callers walk only the set bits via
    // `trailing_zeros` instead of all `CHUNK` slots.
    fn inner_mask(
        &self,
        block: usize,
        cnt: usize,
        base: usize,
        take: usize,
        rect: &Rect<D>,
        covered: &[bool; D],
    ) -> u64 {
        let mut m = chunk_mask(take);
        for (d, &cov) in std::iter::zip(0..D, covered) {
            if cov {
                continue;
            }
            let q_lo = rect.lo[d];
            let q_hi = rect.hi[d];
            let min_row = block + 2 * d * cnt + base;
            let max_row = min_row + cnt;
            let (Some(mins), Some(maxs)) = (
                self.bounds.get(min_row..min_row + take),
                self.bounds.get(max_row..max_row + take),
            ) else {
                return 0;
            };
            let mut row = 0u64;
            for (i, (mn, mx)) in std::iter::zip(0u32.., std::iter::zip(mins, maxs)) {
                row |= (u64::from(q_lo <= *mx) & u64::from(q_hi >= *mn)) << i;
            }
            m &= row;
            if m == 0 {
                return 0;
            }
        }
        m
    }

    // HOT-PATH: branch-free SoA containment scan over one leaf's coordinate rows
    //
    // Bit `i` set iff chunk entry `i` lies inside `rect` — the same
    // boolean per entry as `rect.contains_point(&p)`
    // (`q.lo[d] <= p[d] && p[d] <= q.hi[d]` over every dimension).
    fn leaf_mask(
        &self,
        block: usize,
        cnt: usize,
        base: usize,
        take: usize,
        rect: &Rect<D>,
        covered: &[bool; D],
    ) -> u64 {
        let mut m = chunk_mask(take);
        for (d, &cov) in std::iter::zip(0..D, covered) {
            if cov {
                continue;
            }
            let q_lo = rect.lo[d];
            let q_hi = rect.hi[d];
            let at = block + d * cnt + base;
            let Some(xs) = self.bounds.get(at..at + take) else {
                return 0;
            };
            let mut row = 0u64;
            for (i, x) in std::iter::zip(0u32.., xs) {
                row |= (u64::from(q_lo <= *x) & u64::from(*x <= q_hi)) << i;
            }
            m &= row;
            if m == 0 {
                return 0;
            }
        }
        m
    }

    // HOT-PATH: per-node hint key — dimensions the query fully covers
    //
    // For any dimension `d` with `q.lo[d] <= node.lo[d]` and
    // `node.hi[d] <= q.hi[d]`, every child MBR and every leaf point lies
    // inside `[node.lo, node.hi]` (the containment invariant; freeze
    // asserts finite keys), so the dimension-`d` comparison row resolves
    // to all-pass and is skipped. The skip never changes a predicate
    // outcome — it only removes comparisons whose result is forced.
    fn covered_dims(&self, idx: usize, rect: &Rect<D>) -> [bool; D] {
        let mut cov = [false; D];
        let at = 2 * D * idx;
        if let Some(bx) = self.boxes.get(at..at + 2 * D) {
            for (d, pair) in bx.chunks_exact(2).enumerate() {
                if let &[node_lo, node_hi] = pair {
                    cov[d] = rect.lo[d] <= node_lo && node_hi <= rect.hi[d];
                }
            }
        }
        cov
    }
}

// HOT-PATH: all-ones bitset over a chunk's first `take` slots
fn chunk_mask(take: usize) -> u64 {
    if take >= 64 {
        u64::MAX
    } else {
        (1u64 << take) - 1
    }
}

impl<const D: usize, T> Phase1Index<D, T> for FlatRTree<D, T> {
    fn search_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        self.query_rect_into(rect, stats, out);
    }

    fn search_rects_into<'t>(
        &'t self,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
    ) {
        self.query_rects_into(rects, stats, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64, extent: f64) -> Vec<(Vector<2>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_freezes_to_empty_index() {
        let flat: FlatRTree<2, u8> = FlatRTree::freeze(RTree::new());
        assert!(flat.is_empty());
        assert_eq!(flat.len(), 0);
        assert_eq!(flat.height(), 0);
        assert_eq!(flat.node_count(), 0);
        assert!(flat.bounding_rect().is_none());
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        flat.query_rect_into(&Rect::everything(), &mut stats, &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, SearchStats::default());
    }

    #[test]
    fn freeze_preserves_shape_and_records() {
        let points = random_points(2_000, 7, 800.0);
        let tree = RTree::bulk_load(points.clone(), RStarParams::paper_default(2));
        let (node_count, height, bbox) = (tree.node_count(), tree.height(), tree.bounding_rect());
        let flat = FlatRTree::freeze(tree);
        assert_eq!(flat.len(), 2_000);
        assert_eq!(flat.node_count(), node_count);
        assert_eq!(flat.height(), height);
        assert_eq!(flat.bounding_rect(), bbox);
        assert_eq!(flat.iter().count(), 2_000);
    }

    #[test]
    fn frozen_query_matches_pointer_tree_bitwise() {
        let points = random_points(3_000, 11, 1_000.0);
        let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
        let flat = FlatRTree::freeze(tree.clone());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..60 {
            let c = Vector::from([rng.gen::<f64>() * 1_000.0, rng.gen::<f64>() * 1_000.0]);
            let half = Vector::from([rng.gen::<f64>() * 150.0, rng.gen::<f64>() * 150.0]);
            let rect = Rect::centered(&c, &half);

            let mut tree_stats = SearchStats::default();
            let mut tree_out = Vec::new();
            tree.query_rect_into(&rect, &mut tree_stats, &mut tree_out);

            let mut flat_stats = SearchStats::default();
            let mut flat_out = Vec::new();
            flat.query_rect_into(&rect, &mut flat_stats, &mut flat_out);

            assert_eq!(flat_out, tree_out, "candidates diverge");
            assert_eq!(flat_stats, tree_stats, "stats diverge");
        }
    }

    #[test]
    fn packed_layout_matches_brute_force() {
        let points = random_points(2_500, 21, 500.0);
        let flat = FlatRTree::bulk_load(points.clone());
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..40 {
            let c = Vector::from([rng.gen::<f64>() * 500.0, rng.gen::<f64>() * 500.0]);
            let half = Vector::from([rng.gen::<f64>() * 80.0, rng.gen::<f64>() * 80.0]);
            let rect = Rect::centered(&c, &half);
            let mut got: Vec<usize> = flat.query_rect(&rect).iter().map(|(_, d)| **d).collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = points
                .iter()
                .filter(|(p, _)| rect.contains_point(p))
                .map(|(_, d)| *d)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn covering_query_returns_everything_with_leaf_level_checks() {
        let points = random_points(800, 31, 300.0);
        let flat = FlatRTree::bulk_load(points);
        let mut stats = SearchStats::default();
        let out = flat.query_rect_with_stats(&Rect::everything(), &mut stats);
        assert_eq!(out.len(), 800);
        assert_eq!(stats.results, 800);
        assert_eq!(stats.entries_checked, 800);
        assert_eq!(stats.nodes_visited, flat.node_count());
    }

    #[test]
    fn degenerate_and_disjoint_rects() {
        let points = vec![
            (Vector::from([1.0, 1.0]), 0usize),
            (Vector::from([2.0, 2.0]), 1),
            (Vector::from([1.0, 1.0]), 2),
        ];
        let flat = FlatRTree::bulk_load(points);
        // Degenerate (zero-area) rect on a duplicated point.
        let hit = flat.query_rect(&Rect::from_point(&Vector::from([1.0, 1.0])));
        assert_eq!(hit.len(), 2);
        // Inverted rect (lo > hi) matches nothing, exactly like the
        // pointer tree's predicates.
        let inverted = Rect {
            lo: Vector::from([5.0, 5.0]),
            hi: Vector::from([-5.0, -5.0]),
        };
        assert!(flat.query_rect(&inverted).is_empty());
        let far = Rect::centered(&Vector::from([1e6, 1e6]), &Vector::from([1.0, 1.0]));
        assert!(flat.query_rect(&far).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_keys_rejected_at_freeze() {
        let mut tree: RTree<2, u8> = RTree::new();
        tree.insert(Vector::from([f64::NAN, 0.0]), 1);
        let _ = FlatRTree::freeze(tree);
    }

    #[test]
    fn packed_fanout_is_cache_line_multiple() {
        // 8 f64 per 64-byte line; a packed SoA row must tile lines.
        assert_eq!(PACKED_FANOUT % 8, 0);
        assert_eq!(
            FlatRTree::<2, u8>::packed_params().max_entries,
            PACKED_FANOUT
        );
    }
}
