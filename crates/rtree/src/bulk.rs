//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building the 50,747-point (2-D) and 68,040-point (9-D) experiment
//! datasets by one-at-a-time insertion is needlessly slow and produces a
//! worse tree than offline packing. STR (Leutenegger et al.) sorts the
//! points into tiles recursively by dimension, packs full leaves, and then
//! packs each upper level the same way until a single root remains.

use crate::node::{LeafEntry, Node};
use crate::params::RStarParams;
use crate::tree::RTree;
use gprq_linalg::Vector;

impl<const D: usize, T> RTree<D, T> {
    /// Builds a packed tree from a batch of records.
    ///
    /// # Panics
    ///
    /// Panics if any point has non-finite coordinates.
    pub fn bulk_load(points: Vec<(Vector<D>, T)>, params: RStarParams) -> Self {
        assert!(
            points.iter().all(|(p, _)| p.is_finite()),
            "R-tree keys must be finite"
        );
        let len = points.len();
        if len == 0 {
            return RTree::with_params(params);
        }
        let entries: Vec<LeafEntry<D, T>> = points
            .into_iter()
            .map(|(point, data)| LeafEntry { point, data })
            .collect();

        // Pack leaves.
        let mut groups: Vec<Vec<LeafEntry<D, T>>> = Vec::new();
        str_partition(entries, params, 0, &mut groups, |e: &LeafEntry<D, T>| {
            e.point
        });
        let mut level: Vec<Node<D, T>> = groups.into_iter().map(Node::leaf_from_entries).collect();

        // Pack internal levels until one node remains.
        while level.len() > 1 {
            let mut groups: Vec<Vec<Node<D, T>>> = Vec::new();
            str_partition(level, params, 0, &mut groups, |n: &Node<D, T>| {
                n.mbr.center()
            });
            level = groups
                .into_iter()
                .map(Node::internal_from_children)
                .collect();
        }
        // `len > 0` packed at least one leaf and the loop above only
        // exits with exactly one node; an empty level would be a packing
        // bug, degraded to an empty root rather than a panic.
        let root = level.pop().unwrap_or_else(Node::empty_leaf);
        RTree { root, params, len }
    }
}

/// Recursively tiles `items` into groups of `min_entries ..= max_entries`
/// items, sorting by successive coordinate axes (the STR scheme).
/// `center` extracts the sort key point from an item.
///
/// Plain STR may strand a final remainder group below the R\*-tree's
/// minimum occupancy `m`; whenever a cut would do so, the cut point is
/// pulled back so the remainder gets exactly `m` items (always possible
/// because `M ≥ 2m` for valid parameters).
fn str_partition<const D: usize, I>(
    mut items: Vec<I>,
    params: RStarParams,
    axis: usize,
    out: &mut Vec<Vec<I>>,
    center: impl Fn(&I) -> Vector<D> + Copy,
) {
    let capacity = params.max_entries;
    let min = params.min_entries;
    let n = items.len();
    if n <= capacity {
        if n > 0 {
            out.push(items);
        }
        return;
    }
    items.sort_by(|a, b| center(a)[axis].total_cmp(&center(b)[axis]));
    if axis + 1 == D {
        // Last axis: chunk sequentially, keeping every remainder ≥ m.
        while !items.is_empty() {
            let take = balanced_take(items.len(), capacity, min);
            let rest = items.split_off(take);
            out.push(items);
            items = rest;
        }
        return;
    }
    // Number of pages this subtree needs and the slab count for the
    // remaining dimensions: S = ceil(P^(1/k)) slabs of ~n/S items.
    let pages = n.div_ceil(capacity);
    let remaining_dims = (D - axis) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs).max(min);
    while !items.is_empty() {
        let take = balanced_take(items.len(), slab_size, min);
        let rest = items.split_off(take);
        str_partition(items, params, axis + 1, out, center);
        items = rest;
    }
}

/// Chooses how many items to cut off the front so that neither the cut
/// (`≥ min`) nor the remainder (`0` or `≥ min`) underflows.
fn balanced_take(len: usize, target: usize, min: usize) -> usize {
    let take = len.min(target);
    let remainder = len - take;
    if remainder > 0 && remainder < min {
        // Pull the cut back; `len > target ≥ min` here and
        // `len = take + remainder < target + min`, so `len − min ≥ min`
        // whenever `target ≥ 2·min` (guaranteed by parameter validation
        // at the leaf/chunk stage) and harmless for slab sizing.
        (len - min).max(min)
    } else {
        take
    }
}
