//! A uniform-grid spatial index — the classical baseline against the
//! R\*-tree for Phase-1 candidate retrieval.
//!
//! A static grid partitions the data bounding box into `resolution^D`
//! equal cells and buckets points by cell. Range queries visit exactly
//! the cells overlapping the query region. On low-dimensional,
//! moderately skewed data (the paper's road network) a grid is a strong
//! baseline; in 9-D the cell count explodes or the cells degenerate —
//! which is precisely why the paper's lineage uses R-trees. The
//! `ablation` bench quantifies both sides.

use crate::query::SearchStats;
use crate::rect::Rect;
use gprq_linalg::Vector;

/// A static uniform grid over `D`-dimensional points.
///
/// Cells are stored in CSR form (the counting-sort layout `CloudGrid`
/// uses in the gaussian crate): one dense record array ordered by cell,
/// plus a `cell_count + 1` offset table. The build path therefore does
/// a constant number of allocations instead of one `Vec` per cell, and
/// a cell scan is a contiguous slice walk.
#[derive(Debug, Clone)]
pub struct UniformGrid<const D: usize, T> {
    bounds: Rect<D>,
    resolution: usize,
    /// CSR offsets: cell `c` owns `records[cell_start[c]..cell_start[c + 1]]`.
    cell_start: Vec<usize>,
    /// Records reordered by row-major cell index (stable within a cell).
    records: Vec<(Vector<D>, T)>,
}

impl<const D: usize, T> UniformGrid<D, T> {
    /// Builds a grid with `resolution` cells per axis. Resolutions whose
    /// `resolution^D` cell count would exceed the `2^26` budget are
    /// clamped down to the finest affordable per-axis resolution (a 9-D
    /// grid saturates at 7 cells per axis) — the grid is a baseline
    /// index, and degrading its granularity is preferable to aborting a
    /// benchmark run.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0` or if any point is non-finite.
    pub fn build(points: Vec<(Vector<D>, T)>, resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        const MAX_CELLS: usize = 1 << 26;
        let mut resolution = resolution;
        let cell_count = loop {
            match resolution.checked_pow(D as u32) {
                Some(c) if c <= MAX_CELLS => break c,
                _ if resolution > 1 => resolution -= 1,
                _ => break 1,
            }
        };
        assert!(
            points.iter().all(|(p, _)| p.is_finite()),
            "grid keys must be finite"
        );

        let bounds = match points.split_first() {
            None => Rect::from_point(&Vector::ZERO),
            Some(((first, _), rest)) => {
                let mut b = Rect::from_point(first);
                for (p, _) in rest {
                    b.extend_point(p);
                }
                b
            }
        };

        let mut grid = UniformGrid {
            bounds,
            resolution,
            cell_start: vec![0usize; cell_count + 1],
            records: Vec::new(),
        };
        // Counting sort into CSR (the CloudGrid layout): count per cell,
        // prefix-sum into offsets, then scatter with a cursor copy.
        let cell_of: Vec<usize> = points
            .iter()
            .map(|(p, _)| grid.cell_index(&grid.cell_coords(p)))
            .collect();
        for &c in &cell_of {
            if let Some(slot) = grid.cell_start.get_mut(c + 1) {
                *slot += 1;
            }
        }
        let mut acc = 0usize;
        for slot in grid.cell_start.iter_mut() {
            acc += *slot;
            *slot = acc;
        }
        let mut cursor = grid.cell_start.clone();
        let mut slots: Vec<Option<(Vector<D>, T)>> = Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || None);
        for (rec, &c) in std::iter::zip(points, &cell_of) {
            if let Some(at) = cursor.get_mut(c) {
                if let Some(slot) = slots.get_mut(*at) {
                    *slot = Some(rec);
                }
                *at += 1;
            }
        }
        grid.records = slots.into_iter().flatten().collect();
        grid
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Cells per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cell_start.len().saturating_sub(1)
    }

    /// Per-axis cell coordinates of a point (clamped into range).
    fn cell_coords(&self, p: &Vector<D>) -> [usize; D] {
        let mut coords = [0usize; D];
        for i in 0..D {
            let extent = (self.bounds.hi[i] - self.bounds.lo[i]).max(f64::MIN_POSITIVE);
            let t = (p[i] - self.bounds.lo[i]) / extent;
            coords[i] = ((t * self.resolution as f64) as usize).min(self.resolution - 1);
        }
        coords
    }

    /// Row-major linear index.
    fn cell_index(&self, coords: &[usize; D]) -> usize {
        let mut idx = 0usize;
        for &c in coords.iter() {
            idx = idx * self.resolution + c;
        }
        idx
    }

    /// Returns all records whose points lie in `rect`, counting visited
    /// cells in `stats.nodes_visited`.
    pub fn query_rect_with_stats(
        &self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
    ) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        if self.is_empty() || !rect.intersects(&self.bounds) {
            return out;
        }
        let lo = self.cell_coords(&rect.lo.max(&self.bounds.lo));
        let hi = self.cell_coords(&rect.hi.min(&self.bounds.hi));
        // Iterate the sub-lattice [lo, hi] with a mixed-radix odometer.
        let mut cursor = lo;
        'visit: loop {
            stats.nodes_visited += 1;
            let idx = self.cell_index(&cursor);
            let start = self.cell_start.get(idx).copied().unwrap_or(0);
            let end = self.cell_start.get(idx + 1).copied().unwrap_or(start);
            if let Some(cell) = self.records.get(start..end) {
                for (p, data) in cell {
                    stats.entries_checked += 1;
                    if rect.contains_point(p) {
                        stats.results += 1;
                        out.push((p, data));
                    }
                }
            }
            // Advance: increment the last axis that has room, resetting
            // everything after it.
            let mut axis = D;
            while axis > 0 {
                axis -= 1;
                if cursor[axis] < hi[axis] {
                    cursor[axis] += 1;
                    cursor[(axis + 1)..D].copy_from_slice(&lo[(axis + 1)..D]);
                    continue 'visit;
                }
            }
            break;
        }
        out
    }

    /// Returns all records whose points lie in `rect`.
    pub fn query_rect(&self, rect: &Rect<D>) -> Vec<(&Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.query_rect_with_stats(rect, &mut stats)
    }

    /// Returns all records within `radius` of `center`.
    pub fn query_ball(&self, center: &Vector<D>, radius: f64) -> Vec<(&Vector<D>, &T)> {
        let rect = Rect::centered(center, &Vector::splat(radius));
        let radius_sq = radius * radius;
        self.query_rect(&rect)
            .into_iter()
            .filter(|(p, _)| p.distance_squared(center) <= radius_sq)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Vector<2>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0]),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_grid() {
        let grid: UniformGrid<2, usize> = UniformGrid::build(Vec::new(), 8);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.query_rect(&Rect::everything()).is_empty());
        assert!(grid.query_ball(&Vector::ZERO, 1.0).is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let points = random_points(3_000, 5);
        let grid = UniformGrid::build(points.clone(), 16);
        assert_eq!(grid.len(), 3_000);
        assert_eq!(grid.cell_count(), 256);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let c = Vector::from([rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0]);
            let half = Vector::from([rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0]);
            let rect = Rect::centered(&c, &half);
            let mut got: Vec<usize> = grid.query_rect(&rect).iter().map(|(_, d)| **d).collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = points
                .iter()
                .filter(|(p, _)| rect.contains_point(p))
                .map(|(_, d)| *d)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);

            let r = rng.gen::<f64>() * 15.0;
            let mut got: Vec<usize> = grid.query_ball(&c, r).iter().map(|(_, d)| **d).collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = points
                .iter()
                .filter(|(p, _)| p.distance(&c) <= r)
                .map(|(_, d)| *d)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn stats_count_only_overlapping_cells() {
        let points = random_points(5_000, 9);
        let grid = UniformGrid::build(points, 32);
        let mut stats = SearchStats::default();
        // A rect covering ~1/16 of the extent per axis.
        let rect = Rect::centered(&Vector::from([50.0, 50.0]), &Vector::from([3.0, 3.0]));
        grid.query_rect_with_stats(&rect, &mut stats);
        assert!(stats.nodes_visited >= 1);
        assert!(
            stats.nodes_visited <= 16,
            "a 6×6 window over 3.125-unit cells should touch ≤ 16 cells, got {}",
            stats.nodes_visited
        );
    }

    #[test]
    fn boundary_points_are_bucketed() {
        // Points exactly on the global max corner must not be lost.
        let points = vec![
            (Vector::from([0.0, 0.0]), 0),
            (Vector::from([10.0, 10.0]), 1),
        ];
        let grid = UniformGrid::build(points, 4);
        let all = grid.query_rect(&Rect::everything());
        assert_eq!(all.len(), 2);
        let corner = grid.query_ball(&Vector::from([10.0, 10.0]), 0.0);
        assert_eq!(corner.len(), 1);
        assert_eq!(*corner[0].1, 1);
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let grid = UniformGrid::build(random_points(100, 3), 8);
        let far = Rect::centered(&Vector::from([1e6, 1e6]), &Vector::from([1.0, 1.0]));
        assert!(grid.query_rect(&far).is_empty());
    }

    #[test]
    fn oversized_grid_clamps_resolution() {
        let pts: Vec<(Vector<9>, u8)> = vec![(Vector::splat(0.0), 0)];
        // 64^9 cells requested; the finest 9-D grid within the 2^26 cell
        // budget is 7 per axis (7^9 ≈ 4.0e7 ≤ 2^26 < 8^9).
        let grid = UniformGrid::build(pts, 64);
        assert_eq!(grid.resolution(), 7);
        assert_eq!(grid.len(), 1);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let _: UniformGrid<2, u8> = UniformGrid::build(Vec::new(), 0);
    }

    #[test]
    fn identical_points_single_cell() {
        let pts = vec![(Vector::from([5.0, 5.0]), 0); 50];
        let grid = UniformGrid::build(pts, 8);
        assert_eq!(grid.query_ball(&Vector::from([5.0, 5.0]), 0.1).len(), 50);
    }
}
