//! R\*-tree tuning parameters.

/// Fanout and reinsertion parameters of an R\*-tree.
///
/// The paper's experiments use a 1 KB page size (§V-A); page size maps to
/// fanout via the on-disk entry footprint, see
/// [`RStarParams::from_page_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RStarParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`); the Beckmann et al. R\*
    /// recommendation is `m = 40 % · M`.
    pub min_entries: usize,
    /// Entries removed on forced reinsertion (`p`); the R\* recommendation
    /// is `p = 30 % · M`.
    pub reinsert_count: usize,
}

impl RStarParams {
    /// Creates parameters from an explicit maximum fanout, applying the
    /// standard R\* ratios `m = 0.4·M`, `p = 0.3·M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4` (a split of `M + 1` entries must leave
    /// both halves with at least `m ≥ 2`).
    pub fn new(max_entries: usize) -> Self {
        assert!(
            max_entries >= 4,
            "R*-tree needs max_entries >= 4, got {max_entries}"
        );
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        RStarParams {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Derives the fanout from a disk page size, matching the paper's
    /// experimental setup ("the page size of an R*-tree node was set as
    /// 1 KB", §V-A).
    ///
    /// The per-entry footprint assumes classical layouts:
    /// * leaf entry: a `d`-dimensional point (`8d` bytes) + an 8-byte
    ///   record id,
    /// * internal entry: an MBR (`16d` bytes) + an 8-byte child pointer.
    ///
    /// One fanout is used for both node kinds (the internal footprint,
    /// being larger, dominates), as in common implementations.
    ///
    /// # Panics
    ///
    /// Panics if the page is too small to hold 4 internal entries.
    pub fn from_page_size(page_bytes: usize, dim: usize) -> Self {
        let internal_entry = 16 * dim + 8;
        let fanout = page_bytes / internal_entry;
        assert!(
            fanout >= 4,
            "page of {page_bytes} bytes holds only {fanout} entries in {dim}-D; need >= 4"
        );
        Self::new(fanout)
    }

    /// The paper's configuration: 1 KB pages.
    pub fn paper_default(dim: usize) -> Self {
        Self::from_page_size(1024, dim)
    }
}

impl Default for RStarParams {
    /// A general-purpose in-memory fanout.
    fn default() -> Self {
        Self::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_follow_rstar_recommendations() {
        let p = RStarParams::new(100);
        assert_eq!(p.max_entries, 100);
        assert_eq!(p.min_entries, 40);
        assert_eq!(p.reinsert_count, 30);
    }

    #[test]
    fn small_fanout_clamps_minimums() {
        let p = RStarParams::new(4);
        assert!(p.min_entries >= 2);
        assert!(p.reinsert_count >= 1);
        // Both split halves can satisfy m: M + 1 − m ≥ m.
        assert!(p.max_entries + 1 - p.min_entries >= p.min_entries);
    }

    #[test]
    fn page_size_2d_matches_paper_setup() {
        // 1 KB page, 2-D: internal entry = 40 bytes → fanout 25.
        let p = RStarParams::paper_default(2);
        assert_eq!(p.max_entries, 25);
        assert_eq!(p.min_entries, 10);
        assert_eq!(p.reinsert_count, 7);
    }

    #[test]
    fn page_size_9d() {
        // 1 KB page, 9-D: internal entry = 152 bytes → fanout 6.
        let p = RStarParams::paper_default(9);
        assert_eq!(p.max_entries, 6);
        assert_eq!(p.min_entries, 2);
    }

    #[test]
    #[should_panic(expected = "max_entries >= 4")]
    fn rejects_tiny_fanout() {
        RStarParams::new(3);
    }

    #[test]
    #[should_panic(expected = "need >= 4")]
    fn rejects_tiny_page() {
        RStarParams::from_page_size(64, 9);
    }

    #[test]
    fn default_is_valid() {
        let p = RStarParams::default();
        assert!(p.min_entries * 2 <= p.max_entries + 1);
        assert!(p.reinsert_count < p.max_entries);
    }
}
