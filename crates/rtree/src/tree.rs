//! The R\*-tree proper: insertion (with forced reinsertion), deletion
//! (with tree condensation), and structural validation.

use crate::node::{LeafEntry, Node};
use crate::params::RStarParams;
use crate::rect::Rect;
use crate::split::rstar_split;
use gprq_linalg::Vector;

/// An in-memory R\*-tree over `D`-dimensional points with payload `T`.
///
/// This is the "conventional spatial index" of paper §III-A: the target
/// objects of a probabilistic range query have exact locations, so a
/// classical point R\*-tree (Beckmann et al.) serves Phase 1 unchanged.
///
/// ```
/// use gprq_rtree::RTree;
/// use gprq_linalg::Vector;
///
/// let mut tree: RTree<2, usize> = RTree::new();
/// for (i, xy) in [[1.0, 1.0], [2.0, 5.0], [9.0, 9.0]].iter().enumerate() {
///     tree.insert(Vector::from(*xy), i);
/// }
/// let hits = tree.query_ball(&Vector::from([1.5, 3.0]), 3.0);
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RTree<const D: usize, T> {
    pub(crate) root: Node<D, T>,
    pub(crate) params: RStarParams,
    pub(crate) len: usize,
}

/// Work queued for (re)insertion during one insert/delete operation.
enum Pending<const D: usize, T> {
    Point(LeafEntry<D, T>),
    Subtree(Node<D, T>),
}

/// Per-operation context implementing the R\* "reinsert once per level"
/// rule.
struct InsertCtx<const D: usize, T> {
    pending: Vec<Pending<D, T>>,
    reinserted_levels: Vec<bool>,
}

impl<const D: usize, T> InsertCtx<D, T> {
    fn new() -> Self {
        InsertCtx {
            pending: Vec::new(),
            reinserted_levels: Vec::new(),
        }
    }

    /// Returns `true` (and records it) if level `lvl` has not yet done a
    /// forced reinsertion during this operation.
    fn try_mark_reinserted(&mut self, lvl: usize) -> bool {
        if self.reinserted_levels.len() <= lvl {
            self.reinserted_levels.resize(lvl + 1, false);
        }
        if self.reinserted_levels[lvl] {
            false
        } else {
            self.reinserted_levels[lvl] = true;
            true
        }
    }
}

impl<const D: usize, T> Default for RTree<D, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, T> RTree<D, T> {
    /// An empty tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(RStarParams::default())
    }

    /// An empty tree with explicit parameters.
    pub fn with_params(params: RStarParams) -> Self {
        RTree {
            root: Node::empty_leaf(),
            params,
            len: 0,
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (a lone leaf root has height 1).
    pub fn height(&self) -> usize {
        self.root.level as usize + 1
    }

    /// Total number of nodes (root, internal, leaves).
    pub fn node_count(&self) -> usize {
        self.root.count_nodes()
    }

    /// The tree's parameters.
    pub fn params(&self) -> RStarParams {
        self.params
    }

    /// MBR of the whole dataset (`None` when empty).
    pub fn bounding_rect(&self) -> Option<Rect<D>> {
        if self.is_empty() {
            None
        } else {
            Some(self.root.mbr)
        }
    }

    /// Inserts a record.
    ///
    /// # Panics
    ///
    /// Panics if the point has non-finite coordinates (NaN keys would
    /// corrupt every comparison-based invariant in the tree).
    pub fn insert(&mut self, point: Vector<D>, data: T) {
        assert!(point.is_finite(), "R-tree keys must be finite, got {point}");
        let mut ctx = InsertCtx::new();
        self.insert_one(Pending::Point(LeafEntry { point, data }), &mut ctx);
        while let Some(p) = ctx.pending.pop() {
            self.insert_one(p, &mut ctx);
        }
        self.len += 1;
    }

    /// Removes one record equal to `(point, data)`.
    ///
    /// Point matching is exact (`f64` bit-for-bit via `==`); returns
    /// `false` if no such record exists. When several identical records
    /// exist, exactly one is removed.
    pub fn remove(&mut self, point: &Vector<D>, data: &T) -> bool
    where
        T: PartialEq,
    {
        let mut orphans: Vec<LeafEntry<D, T>> = Vec::new();
        if !delete_rec(&mut self.root, point, data, &mut orphans, self.params) {
            return false;
        }
        self.len -= 1;

        // Shrink the root: an internal root with a single child is
        // replaced by that child; an emptied root degenerates to a leaf.
        loop {
            if self.root.is_leaf() {
                break;
            }
            match self.root.children.len() {
                0 => {
                    self.root = Node::empty_leaf();
                    break;
                }
                1 => {
                    if let Some(child) = self.root.children.pop() {
                        self.root = child;
                    }
                }
                _ => break,
            }
        }

        // Reinsert orphaned records through the normal insertion path.
        for entry in orphans {
            let mut ctx = InsertCtx::new();
            self.insert_one(Pending::Point(entry), &mut ctx);
            while let Some(p) = ctx.pending.pop() {
                self.insert_one(p, &mut ctx);
            }
        }
        true
    }

    /// Dispatches one pending entry from the root, handling root splits.
    fn insert_one(&mut self, entry: Pending<D, T>, ctx: &mut InsertCtx<D, T>) {
        let target_level = match &entry {
            Pending::Point(_) => 0,
            Pending::Subtree(n) => n.level + 1,
        };
        debug_assert!(target_level <= self.root.level || self.root.is_leaf());
        if let Some(sibling) =
            insert_rec(&mut self.root, entry, target_level, ctx, self.params, true)
        {
            let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
            self.root = Node::internal_from_children(vec![old_root, sibling]);
        }
    }

    /// Gathers occupancy statistics (node counts and fill factors per
    /// level) — used by the experiment harness to report index quality
    /// and by tests to confirm bulk loading packs nodes densely.
    pub fn tree_stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            height: self.height(),
            records: self.len,
            ..TreeStats::default()
        };
        if !self.is_empty() {
            collect_stats(&self.root, &mut stats);
            stats.mean_leaf_occupancy = if stats.leaf_nodes > 0 {
                stats.leaf_slot_sum as f64
                    / (stats.leaf_nodes as f64 * self.params.max_entries as f64)
            } else {
                0.0
            };
        }
        stats
    }

    /// Checks every structural invariant of the tree, returning a
    /// description of the first violation.
    ///
    /// Intended for tests and debugging (it walks the whole tree):
    /// * stored record count matches `len`,
    /// * every node's MBR tightly bounds its contents,
    /// * occupancy is within `[m, M]` for all non-root nodes,
    /// * all leaves sit at level 0 and levels decrease by one per step.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant (there is no error taxonomy worth an enum here).
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        validate_rec(&self.root, self.params, true, &mut count)?;
        if count != self.len {
            return Err(format!("len = {} but found {count} records", self.len));
        }
        Ok(())
    }
}

/// Occupancy summary of a tree (see [`RTree::tree_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TreeStats {
    /// Tree height (leaf root = 1).
    pub height: usize,
    /// Stored records.
    pub records: usize,
    /// Leaf node count.
    pub leaf_nodes: usize,
    /// Internal node count (including the root when internal).
    pub internal_nodes: usize,
    /// Sum of leaf occupancies (internal detail for the mean).
    pub leaf_slot_sum: usize,
    /// Mean leaf fill factor relative to `max_entries` (0–1).
    pub mean_leaf_occupancy: f64,
}

fn collect_stats<const D: usize, T>(node: &Node<D, T>, stats: &mut TreeStats) {
    if node.is_leaf() {
        stats.leaf_nodes += 1;
        stats.leaf_slot_sum += node.entries.len();
    } else {
        stats.internal_nodes += 1;
        for c in &node.children {
            collect_stats(c, stats);
        }
    }
}

/// Recursive insertion. Returns a split-off sibling if `node` overflowed
/// and was split.
fn insert_rec<const D: usize, T>(
    node: &mut Node<D, T>,
    entry: Pending<D, T>,
    target_level: u32,
    ctx: &mut InsertCtx<D, T>,
    params: RStarParams,
    is_root: bool,
) -> Option<Node<D, T>> {
    if node.level == target_level {
        match entry {
            Pending::Point(e) => {
                debug_assert!(node.is_leaf());
                if node.entries.is_empty() && node.children.is_empty() {
                    node.mbr = Rect::from_point(&e.point);
                } else {
                    node.mbr.extend_point(&e.point);
                }
                node.entries.push(e);
            }
            Pending::Subtree(n) => {
                debug_assert!(!node.is_leaf());
                node.mbr.extend_rect(&n.mbr);
                node.children.push(n);
            }
        }
        if node.occupancy() > params.max_entries {
            return overflow_treatment(node, ctx, params, is_root);
        }
        None
    } else {
        let entry_mbr = match &entry {
            Pending::Point(e) => Rect::from_point(&e.point),
            Pending::Subtree(n) => n.mbr,
        };
        let idx = choose_subtree(node, &entry_mbr);
        let split = insert_rec(
            &mut node.children[idx],
            entry,
            target_level,
            ctx,
            params,
            false,
        );
        let result = if let Some(sibling) = split {
            node.children.push(sibling);
            if node.children.len() > params.max_entries {
                node.recompute_mbr();
                return overflow_treatment(node, ctx, params, is_root);
            }
            None
        } else {
            None
        };
        // The child's MBR may have grown (insert) or shrunk (forced
        // reinsertion removed entries), so recompute rather than extend.
        node.recompute_mbr();
        result
    }
}

/// The R\* ChooseSubtree heuristic: minimum overlap enlargement when the
/// children are leaves, minimum area enlargement otherwise.
fn choose_subtree<const D: usize, T>(node: &Node<D, T>, entry_mbr: &Rect<D>) -> usize {
    debug_assert!(!node.children.is_empty());
    let children_are_leaves = node.level == 1;
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, child) in node.children.iter().enumerate() {
        let enlarged = child.mbr.union(entry_mbr);
        let area_enlargement = enlarged.area() - child.mbr.area();
        let key = if children_are_leaves {
            // Overlap enlargement against all siblings.
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, other) in node.children.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_before += child.mbr.overlap_area(&other.mbr);
                overlap_after += enlarged.overlap_area(&other.mbr);
            }
            (
                overlap_after - overlap_before,
                area_enlargement,
                child.mbr.area(),
            )
        } else {
            (area_enlargement, child.mbr.area(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// R\* OverflowTreatment: forced reinsertion the first time a level
/// overflows during an operation, a proper split afterwards (and always
/// for the root).
fn overflow_treatment<const D: usize, T>(
    node: &mut Node<D, T>,
    ctx: &mut InsertCtx<D, T>,
    params: RStarParams,
    is_root: bool,
) -> Option<Node<D, T>> {
    let lvl = node.level as usize;
    if !is_root && ctx.try_mark_reinserted(lvl) {
        force_reinsert(node, ctx, params);
        None
    } else {
        Some(split_node(node, params))
    }
}

/// Removes the `p` entries whose centers lie farthest from the node's MBR
/// center and queues them for reinsertion, closest first ("close
/// reinsert" — the variant the R\* authors found best).
fn force_reinsert<const D: usize, T>(
    node: &mut Node<D, T>,
    ctx: &mut InsertCtx<D, T>,
    params: RStarParams,
) {
    let center = node.mbr.center();
    let p = params
        .reinsert_count
        .min(node.occupancy() - params.min_entries);
    if node.is_leaf() {
        // Sort ascending by distance; split off the far tail.
        node.entries.sort_by(|a, b| {
            a.point
                .distance_squared(&center)
                .total_cmp(&b.point.distance_squared(&center))
        });
        let tail = node.entries.split_off(node.entries.len() - p);
        // Queue far-to-near; the pending stack pops nearest first.
        for e in tail.into_iter().rev() {
            ctx.pending.push(Pending::Point(e));
        }
    } else {
        node.children.sort_by(|a, b| {
            a.mbr
                .center()
                .distance_squared(&center)
                .total_cmp(&b.mbr.center().distance_squared(&center))
        });
        let tail = node.children.split_off(node.children.len() - p);
        for n in tail.into_iter().rev() {
            ctx.pending.push(Pending::Subtree(n));
        }
    }
    node.recompute_mbr();
}

/// Splits an overflowing node in place; `node` keeps the left group and
/// the right group is returned as a new sibling.
fn split_node<const D: usize, T>(node: &mut Node<D, T>, params: RStarParams) -> Node<D, T> {
    if node.is_leaf() {
        let items = std::mem::take(&mut node.entries);
        let split = rstar_split(items, params.min_entries);
        node.entries = split.left;
        node.recompute_mbr();
        Node::leaf_from_entries(split.right)
    } else {
        let items = std::mem::take(&mut node.children);
        let split = rstar_split(items, params.min_entries);
        node.children = split.left;
        node.recompute_mbr();
        Node::internal_from_children(split.right)
    }
}

/// Recursive deletion with condensation. Underflowing nodes along the
/// path are dissolved and their records queued in `orphans`.
fn delete_rec<const D: usize, T: PartialEq>(
    node: &mut Node<D, T>,
    point: &Vector<D>,
    data: &T,
    orphans: &mut Vec<LeafEntry<D, T>>,
    params: RStarParams,
) -> bool {
    if node.is_leaf() {
        if let Some(idx) = node
            .entries
            .iter()
            .position(|e| e.point == *point && e.data == *data)
        {
            node.entries.swap_remove(idx);
            node.recompute_mbr();
            return true;
        }
        return false;
    }
    for i in 0..node.children.len() {
        if !node.children[i].mbr.contains_point(point) {
            continue;
        }
        if delete_rec(&mut node.children[i], point, data, orphans, params) {
            if node.children[i].occupancy() < params.min_entries {
                let removed = node.children.remove(i);
                collect_entries(removed, orphans);
            }
            node.recompute_mbr();
            return true;
        }
    }
    false
}

/// Flattens a dissolved subtree into its leaf records.
fn collect_entries<const D: usize, T>(node: Node<D, T>, out: &mut Vec<LeafEntry<D, T>>) {
    if node.is_leaf() {
        out.extend(node.entries);
    } else {
        for child in node.children {
            collect_entries(child, out);
        }
    }
}

fn validate_rec<const D: usize, T>(
    node: &Node<D, T>,
    params: RStarParams,
    is_root: bool,
    count: &mut usize,
) -> Result<(), String> {
    let occ = node.occupancy();
    if !is_root && occ < params.min_entries {
        return Err(format!(
            "non-root node at level {} underflows: {occ} < {}",
            node.level, params.min_entries
        ));
    }
    if occ > params.max_entries {
        return Err(format!(
            "node at level {} overflows: {occ} > {}",
            node.level, params.max_entries
        ));
    }
    if node.is_leaf() {
        if !node.children.is_empty() {
            return Err("leaf has children".into());
        }
        *count += node.entries.len();
        for e in &node.entries {
            if !node.mbr.contains_point(&e.point) {
                return Err(format!("leaf MBR does not contain point {}", e.point));
            }
        }
        // MBR must be tight.
        if !node.entries.is_empty() {
            let tight = Node::leaf_from_entries(
                node.entries
                    .iter()
                    .map(|e| LeafEntry {
                        point: e.point,
                        data: (),
                    })
                    .collect(),
            )
            .mbr;
            if tight != node.mbr {
                return Err("leaf MBR is not tight".into());
            }
        }
    } else {
        if !node.entries.is_empty() {
            return Err("internal node has leaf entries".into());
        }
        if node.children.is_empty() {
            return Err("internal node has no children".into());
        }
        let mut tight = node.children[0].mbr;
        for child in &node.children {
            if child.level + 1 != node.level {
                return Err(format!(
                    "child level {} under node level {}",
                    child.level, node.level
                ));
            }
            if !node.mbr.contains_rect(&child.mbr) {
                return Err("node MBR does not contain child MBR".into());
            }
            tight.extend_rect(&child.mbr);
            validate_rec(child, params, false, count)?;
        }
        if tight != node.mbr {
            return Err("internal MBR is not tight".into());
        }
    }
    Ok(())
}
