//! Axis-aligned `D`-dimensional rectangles (minimum bounding boxes).

use gprq_linalg::Vector;

/// An axis-aligned box `[lo, hi]` in `D` dimensions.
///
/// The fundamental geometry of the R\*-tree: every node stores the MBR of
/// its subtree, and the R\* insertion heuristics are phrased in terms of
/// the area, margin, and pairwise overlap of candidate MBRs.
///
/// Degenerate boxes (`lo == hi` in some axes) are valid — a freshly created
/// leaf MBR around a single point is fully degenerate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Lower corner (component-wise minimum).
    pub lo: Vector<D>,
    /// Upper corner (component-wise maximum).
    pub hi: Vector<D>,
}

impl<const D: usize> Rect<D> {
    /// A rectangle containing exactly one point.
    pub fn from_point(p: &Vector<D>) -> Self {
        Rect { lo: *p, hi: *p }
    }

    /// A rectangle from two opposite corners, in any order.
    pub fn from_corners(a: &Vector<D>, b: &Vector<D>) -> Self {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// The centered box `[center − half, center + half]` per axis.
    ///
    /// Used to build query regions: the RR strategy's Minkowski box has
    /// per-axis half-widths `σᵢ·r_θ + δ` (paper Fig. 4), the BF strategy's
    /// has `α∥` in every axis (Algorithm 2, line 6).
    pub fn centered(center: &Vector<D>, half_widths: &Vector<D>) -> Self {
        debug_assert!((0..D).all(|i| half_widths[i] >= 0.0));
        Rect {
            lo: *center - *half_widths,
            hi: *center + *half_widths,
        }
    }

    /// The "everything" rectangle (useful as a scan query in tests).
    pub fn everything() -> Self {
        Rect {
            lo: Vector::splat(f64::NEG_INFINITY),
            hi: Vector::splat(f64::INFINITY),
        }
    }

    /// Side length along axis `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Center point.
    pub fn center(&self) -> Vector<D> {
        Vector::from_fn(|i| 0.5 * (self.lo[i] + self.hi[i]))
    }

    /// Hyper-volume (product of extents).
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            a *= self.extent(i);
        }
        a
    }

    /// Margin (sum of extents) — the R\* split criterion minimizes the sum
    /// of margins over candidate distributions.
    pub fn margin(&self) -> f64 {
        (0..D).map(|i| self.extent(i)).sum()
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Self) -> Self {
        Rect {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Grows `self` in place to contain `p`.
    pub fn extend_point(&mut self, p: &Vector<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grows `self` in place to contain `other`.
    pub fn extend_rect(&mut self, other: &Self) {
        self.lo = self.lo.min(&other.lo);
        self.hi = self.hi.max(&other.hi);
    }

    /// Area increase needed to absorb `other`:
    /// `area(self ∪ other) − area(self)`.
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Volume of the intersection, `0` if disjoint.
    pub fn overlap_area(&self, other: &Self) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// `true` if the rectangles share at least a boundary point.
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && self.hi[i] >= other.lo[i])
    }

    /// `true` if `p` lies inside (boundary inclusive).
    pub fn contains_point(&self, p: &Vector<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// `true` if `other` lies fully inside `self` (boundary inclusive).
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Squared Euclidean distance from `p` to the nearest point of the
    /// rectangle (`0` if `p` is inside).
    ///
    /// This *MINDIST* metric drives best-first k-NN search, sphere-range
    /// pruning, and — in `gprq-core` — the RR strategy's fringe filter
    /// (distance from a candidate to the θ-region bounding box, paper
    /// Fig. 4).
    pub fn min_dist_squared(&self, p: &Vector<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared distance from `p` to the *farthest* point of the rectangle.
    pub fn max_dist_squared(&self, p: &Vector<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = (p[i] - self.lo[i]).abs().max((p[i] - self.hi[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// `true` if the rectangle intersects the ball `B(center, radius)`.
    pub fn intersects_ball(&self, center: &Vector<D>, radius: f64) -> bool {
        self.min_dist_squared(center) <= radius * radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect {
            lo: Vector::from(lo),
            hi: Vector::from(hi),
        }
    }

    #[test]
    fn construction_normalizes_corners() {
        let r = Rect::from_corners(&Vector::from([5.0, 0.0]), &Vector::from([0.0, 5.0]));
        assert_eq!(r.lo.as_slice(), &[0.0, 0.0]);
        assert_eq!(r.hi.as_slice(), &[5.0, 5.0]);
    }

    #[test]
    fn point_rect_is_degenerate() {
        let r = Rect::from_point(&Vector::from([1.0, 2.0]));
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.margin(), 0.0);
        assert!(r.contains_point(&Vector::from([1.0, 2.0])));
        assert!(!r.contains_point(&Vector::from([1.0, 2.1])));
    }

    #[test]
    fn centered_box() {
        let r = Rect::centered(&Vector::from([10.0, 20.0]), &Vector::from([2.0, 3.0]));
        assert_eq!(r.lo.as_slice(), &[8.0, 17.0]);
        assert_eq!(r.hi.as_slice(), &[12.0, 23.0]);
        assert_eq!(r.center().as_slice(), &[10.0, 20.0]);
    }

    #[test]
    fn area_margin_extent() {
        let r = r2([0.0, 0.0], [4.0, 2.0]);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.margin(), 6.0);
        assert_eq!(r.extent(0), 4.0);
        assert_eq!(r.extent(1), 2.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([3.0, 1.0], [4.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u.lo.as_slice(), &[0.0, 0.0]);
        assert_eq!(u.hi.as_slice(), &[4.0, 2.0]);
        assert_eq!(a.enlargement(&b), 8.0 - 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn overlap() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = r2([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.overlap_area(&c), 0.0);
        // Touching boundary counts as intersecting but zero overlap area.
        let d = r2([2.0, 0.0], [3.0, 2.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap_area(&d), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r2([0.0, 0.0], [10.0, 10.0]);
        let inner = r2([2.0, 2.0], [3.0, 3.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn extend_operations() {
        let mut r = Rect::from_point(&Vector::from([1.0, 1.0]));
        r.extend_point(&Vector::from([3.0, 0.0]));
        assert_eq!(r.lo.as_slice(), &[1.0, 0.0]);
        assert_eq!(r.hi.as_slice(), &[3.0, 1.0]);
        r.extend_rect(&r2([-1.0, -1.0], [0.0, 0.0]));
        assert_eq!(r.lo.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn min_max_dist() {
        let r = r2([0.0, 0.0], [2.0, 2.0]);
        // Inside → 0.
        assert_eq!(r.min_dist_squared(&Vector::from([1.0, 1.0])), 0.0);
        // Straight out along x.
        assert_eq!(r.min_dist_squared(&Vector::from([5.0, 1.0])), 9.0);
        // Corner distance.
        assert_eq!(r.min_dist_squared(&Vector::from([3.0, 3.0])), 2.0);
        // Max dist from center is the corner.
        assert_eq!(r.max_dist_squared(&Vector::from([1.0, 1.0])), 2.0);
    }

    #[test]
    fn ball_intersection() {
        let r = r2([0.0, 0.0], [2.0, 2.0]);
        assert!(r.intersects_ball(&Vector::from([3.0, 1.0]), 1.0));
        assert!(!r.intersects_ball(&Vector::from([3.0, 1.0]), 0.5));
        // Ball fully inside.
        assert!(r.intersects_ball(&Vector::from([1.0, 1.0]), 0.1));
    }

    #[test]
    fn everything_contains_all() {
        let e = Rect::<3>::everything();
        assert!(e.contains_point(&Vector::from([1e308, -1e308, 0.0])));
        assert!(e.intersects(&Rect::from_point(&Vector::from([0.0, 0.0, 0.0]))));
    }
}
