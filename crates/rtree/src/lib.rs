//! # gprq-rtree
//!
//! A from-scratch in-memory **R\*-tree** over `D`-dimensional points,
//! built as the Phase-1 index substrate for the `gaussian-prq` workspace
//! (reproduction of *"Spatial Range Querying for Gaussian-Based Imprecise
//! Query Objects"*, ICDE 2009, which uses an R\*-tree with 1 KB pages).
//!
//! Features:
//!
//! * R\* insertion: ChooseSubtree with overlap minimization at the leaf
//!   level, forced reinsertion (once per level per operation), and the
//!   margin-driven axis/index split;
//! * deletion with tree condensation and orphan reinsertion;
//! * STR bulk loading for large static datasets;
//! * rectangle-range, ball-range, and best-first k-NN queries, each with
//!   node-access statistics ([`SearchStats`]);
//! * a full structural [`RTree::validate`] used by the property tests;
//! * a cache-conscious read-optimized flat image ([`FlatRTree`]) with
//!   SoA node blocks, branch-free AABB scans, and packed multi-rect
//!   probes for the Phase-1 hot path.
//!
//! ```
//! use gprq_rtree::{RTree, RStarParams};
//! use gprq_linalg::Vector;
//!
//! let points: Vec<(Vector<2>, u32)> = (0..1000)
//!     .map(|i| (Vector::from([(i % 37) as f64, (i % 61) as f64]), i))
//!     .collect();
//! let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
//! assert_eq!(tree.len(), 1000);
//! let near_origin = tree.query_ball(&Vector::from([0.0, 0.0]), 5.0);
//! assert!(!near_origin.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
pub mod concurrent;
pub mod flat;
pub mod grid;
pub mod node;
pub mod olc;
pub mod params;
pub mod query;
pub mod rect;
mod split;
pub mod tree;

pub use concurrent::{ConcQueryScratch, ConcurrentRTree, ContentionLadder, MAX_FANOUT};
pub use flat::{FlatRTree, PACKED_FANOUT};
pub use grid::UniformGrid;
pub use node::LeafEntry;
pub use olc::{ReadOutcome, VersionCell};
pub use params::RStarParams;
pub use query::{KnnScratch, Phase1Index, SearchStats, OLC_DEPTH_BUCKETS};
pub use rect::Rect;
pub use tree::{RTree, TreeStats};
