//! Query operations: rectangle range, ball range, and k-nearest-neighbor
//! search, all with node-access accounting.
//!
//! The paper reports that Phase 1 (index-based search) is a negligible
//! fraction of query cost, but its *output size* — the candidate set —
//! determines the dominant Phase 3 cost. [`SearchStats`] exposes both the
//! I/O-proxy (nodes visited) and the candidate counts so the experiment
//! harness can reproduce Tables I–III.

use crate::node::Node;
use crate::rect::Rect;
use crate::tree::RTree;
use gprq_linalg::Vector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Counters accumulated during a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes touched (the disk-access proxy).
    pub nodes_visited: usize,
    /// Leaf records tested against the query predicate.
    pub entries_checked: usize,
    /// Records reported to the visitor.
    pub results: usize,
}

impl<const D: usize, T> RTree<D, T> {
    /// Visits every record whose point lies in `rect` (boundary
    /// inclusive), accumulating statistics.
    pub fn query_rect_visit(
        &self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&Vector<D>, &T),
    ) {
        if self.is_empty() {
            return;
        }
        rect_rec(&self.root, rect, stats, &mut visit);
    }

    /// Returns all records whose points lie in `rect`.
    pub fn query_rect(&self, rect: &Rect<D>) -> Vec<(&Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.query_rect_with_stats(rect, &mut stats)
    }

    /// [`RTree::query_rect`] with statistics accumulation.
    pub fn query_rect_with_stats(
        &self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
    ) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        if !self.is_empty() {
            rect_collect(&self.root, rect, stats, &mut out);
        }
        out
    }

    /// Visits every record within Euclidean distance `radius` of `center`.
    pub fn query_ball_visit(
        &self,
        center: &Vector<D>,
        radius: f64,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&Vector<D>, &T),
    ) {
        debug_assert!(radius >= 0.0);
        if self.is_empty() {
            return;
        }
        ball_rec(&self.root, center, radius * radius, stats, &mut visit);
    }

    /// Returns all records within Euclidean distance `radius` of `center`.
    pub fn query_ball(&self, center: &Vector<D>, radius: f64) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        if !self.is_empty() {
            ball_collect(&self.root, center, radius * radius, &mut stats, &mut out);
        }
        out
    }

    /// Returns the `k` records nearest to `center` as
    /// `(distance, point, payload)`, ascending by distance.
    ///
    /// Classic best-first (Hjaltason–Samet) search over a min-heap keyed
    /// by MINDIST. Used by the pseudo-feedback workload of experiment II
    /// (paper §VI-A: "search its k-nearest neighbors (k-NN) … k = 20")
    /// and by the probabilistic-NN extension.
    pub fn nearest_neighbors(&self, center: &Vector<D>, k: usize) -> Vec<(f64, &Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.nearest_neighbors_with_stats(center, k, &mut stats)
    }

    /// [`RTree::nearest_neighbors`] with statistics accumulation.
    pub fn nearest_neighbors_with_stats(
        &self,
        center: &Vector<D>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<(f64, &Vector<D>, &T)> {
        let mut out = Vec::new();
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapItem<'_, D, T>> = BinaryHeap::new();
        heap.push(HeapItem {
            dist_sq: self.root.mbr.min_dist_squared(center),
            kind: Candidate::Node(&self.root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                Candidate::Node(node) => {
                    stats.nodes_visited += 1;
                    if node.is_leaf() {
                        for e in &node.entries {
                            stats.entries_checked += 1;
                            heap.push(HeapItem {
                                dist_sq: e.point.distance_squared(center),
                                kind: Candidate::Entry(&e.point, &e.data),
                            });
                        }
                    } else {
                        for c in &node.children {
                            heap.push(HeapItem {
                                dist_sq: c.mbr.min_dist_squared(center),
                                kind: Candidate::Node(c),
                            });
                        }
                    }
                }
                Candidate::Entry(point, data) => {
                    stats.results += 1;
                    out.push((item.dist_sq.sqrt(), point, data));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Returns a lazy iterator over all records in **ascending distance**
    /// from `center` — incremental nearest-neighbor search (Hjaltason &
    /// Samet). Pulling `k` items costs the same as a `k`-NN query; the
    /// probabilistic-NN extension uses it to stream candidates until its
    /// probability bound proves no farther object can enter the top-k.
    pub fn nearest_iter<'a>(
        &'a self,
        center: &Vector<D>,
    ) -> impl Iterator<Item = (f64, &'a Vector<D>, &'a T)> + 'a {
        let mut heap: BinaryHeap<HeapItem<'a, D, T>> = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(HeapItem {
                dist_sq: self.root.mbr.min_dist_squared(center),
                kind: Candidate::Node(&self.root),
            });
        }
        let center = *center;
        std::iter::from_fn(move || loop {
            let item = heap.pop()?;
            match item.kind {
                Candidate::Node(node) => {
                    if node.is_leaf() {
                        for e in &node.entries {
                            heap.push(HeapItem {
                                dist_sq: e.point.distance_squared(&center),
                                kind: Candidate::Entry(&e.point, &e.data),
                            });
                        }
                    } else {
                        for c in &node.children {
                            heap.push(HeapItem {
                                dist_sq: c.mbr.min_dist_squared(&center),
                                kind: Candidate::Node(c),
                            });
                        }
                    }
                }
                Candidate::Entry(point, data) => {
                    return Some((item.dist_sq.sqrt(), point, data));
                }
            }
        })
    }

    /// Iterates over all `(point, payload)` records in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vector<D>, &T)> {
        let mut stack: Vec<&Node<D, T>> = Vec::new();
        if !self.is_empty() {
            stack.push(&self.root);
        }
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            if node.is_leaf() {
                // Leaves are flattened lazily through a nested iterator is
                // overkill here; instead push entries via index trickery.
                // Simpler: return them through a buffer on the stack.
                // (Handled by the outer flat_map below.)
                return Some(node);
            }
            stack.extend(node.children.iter());
        })
        .flat_map(|leaf| leaf.entries.iter().map(|e| (&e.point, &e.data)))
    }
}

enum Candidate<'a, const D: usize, T> {
    Node(&'a Node<D, T>),
    Entry(&'a Vector<D>, &'a T),
}

struct HeapItem<'a, const D: usize, T> {
    dist_sq: f64,
    kind: Candidate<'a, D, T>,
}

impl<const D: usize, T> PartialEq for HeapItem<'_, D, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl<const D: usize, T> Eq for HeapItem<'_, D, T> {}
impl<const D: usize, T> PartialOrd for HeapItem<'_, D, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, T> Ord for HeapItem<'_, D, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-distance.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

fn rect_rec<const D: usize, T>(
    node: &Node<D, T>,
    rect: &Rect<D>,
    stats: &mut SearchStats,
    visit: &mut impl FnMut(&Vector<D>, &T),
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if rect.contains_point(&e.point) {
                stats.results += 1;
                visit(&e.point, &e.data);
            }
        }
    } else {
        for c in &node.children {
            if rect.intersects(&c.mbr) {
                rect_rec(c, rect, stats, visit);
            }
        }
    }
}

fn rect_collect<'a, const D: usize, T>(
    node: &'a Node<D, T>,
    rect: &Rect<D>,
    stats: &mut SearchStats,
    out: &mut Vec<(&'a Vector<D>, &'a T)>,
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if rect.contains_point(&e.point) {
                stats.results += 1;
                out.push((&e.point, &e.data));
            }
        }
    } else {
        for c in &node.children {
            if rect.intersects(&c.mbr) {
                rect_collect(c, rect, stats, out);
            }
        }
    }
}

fn ball_rec<const D: usize, T>(
    node: &Node<D, T>,
    center: &Vector<D>,
    radius_sq: f64,
    stats: &mut SearchStats,
    visit: &mut impl FnMut(&Vector<D>, &T),
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if e.point.distance_squared(center) <= radius_sq {
                stats.results += 1;
                visit(&e.point, &e.data);
            }
        }
    } else {
        for c in &node.children {
            if c.mbr.min_dist_squared(center) <= radius_sq {
                ball_rec(c, center, radius_sq, stats, visit);
            }
        }
    }
}

fn ball_collect<'a, const D: usize, T>(
    node: &'a Node<D, T>,
    center: &Vector<D>,
    radius_sq: f64,
    stats: &mut SearchStats,
    out: &mut Vec<(&'a Vector<D>, &'a T)>,
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if e.point.distance_squared(center) <= radius_sq {
                stats.results += 1;
                out.push((&e.point, &e.data));
            }
        }
    } else {
        for c in &node.children {
            if c.mbr.min_dist_squared(center) <= radius_sq {
                ball_collect(c, center, radius_sq, stats, out);
            }
        }
    }
}
