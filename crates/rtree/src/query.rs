//! Query operations: rectangle range, ball range, and k-nearest-neighbor
//! search, all with node-access accounting.
//!
//! The paper reports that Phase 1 (index-based search) is a negligible
//! fraction of query cost, but its *output size* — the candidate set —
//! determines the dominant Phase 3 cost. [`SearchStats`] exposes both the
//! I/O-proxy (nodes visited) and the candidate counts so the experiment
//! harness can reproduce Tables I–III.
//!
//! Every query entry point has a buffer-reusing `*_into` variant that
//! appends into a caller-owned `Vec` (after clearing it), so a batch
//! driver issuing thousands of queries allocates its result buffers
//! once. The convenience variants delegate to them. The descent helpers
//! are `HOT-PATH` roots for the workspace auditor, which proves them
//! transitively allocation-free.

use crate::node::Node;
use crate::rect::Rect;
use crate::tree::RTree;
use gprq_linalg::Vector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of log₂ buckets in [`SearchStats::olc_retry_depth`]: bucket 0
/// counts first-try validations, bucket `b ≥ 1` counts node reads that
/// needed `r` retries with `2^(b-1) ≤ r < 2^b` (the last bucket absorbs
/// the tail).
pub const OLC_DEPTH_BUCKETS: usize = 8;

/// Counters accumulated during a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes touched (the disk-access proxy).
    pub nodes_visited: usize,
    /// Leaf records tested against the query predicate.
    pub entries_checked: usize,
    /// Records reported to the visitor.
    pub results: usize,
    /// Optimistic (seqlock-validated) node read attempts. Zero for the
    /// single-writer [`RTree`]; populated by the concurrent tree.
    pub olc_attempts: usize,
    /// Optimistic attempts that failed validation (torn by a writer or
    /// found write-locked) and were retried after backoff.
    pub olc_retries: usize,
    /// Queries that exhausted the optimistic ladder and escalated to
    /// the pessimistic shared-latch path.
    pub olc_fallbacks: usize,
    /// Log₂ histogram of per-node retry depth (see
    /// [`OLC_DEPTH_BUCKETS`]): how contended individual node reads were.
    pub olc_retry_depth: [usize; OLC_DEPTH_BUCKETS],
}

impl SearchStats {
    /// Accumulates another search's counters into this one (saturating),
    /// so a batch driver or metrics layer can aggregate across queries.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited = self.nodes_visited.saturating_add(other.nodes_visited);
        self.entries_checked = self.entries_checked.saturating_add(other.entries_checked);
        self.results = self.results.saturating_add(other.results);
        self.olc_attempts = self.olc_attempts.saturating_add(other.olc_attempts);
        self.olc_retries = self.olc_retries.saturating_add(other.olc_retries);
        self.olc_fallbacks = self.olc_fallbacks.saturating_add(other.olc_fallbacks);
        for (dst, src) in self
            .olc_retry_depth
            .iter_mut()
            .zip(other.olc_retry_depth.iter())
        {
            *dst = dst.saturating_add(*src);
        }
    }

    /// Records one successfully validated node read that consumed
    /// `retries` failed attempts first, into the log₂ depth histogram.
    pub fn record_olc_depth(&mut self, retries: usize) {
        let bucket = if retries == 0 {
            0
        } else {
            usize::try_from(usize::BITS - retries.leading_zeros())
                .unwrap_or(OLC_DEPTH_BUCKETS)
                .min(OLC_DEPTH_BUCKETS - 1)
        };
        if let Some(slot) = self.olc_retry_depth.get_mut(bucket) {
            *slot = slot.saturating_add(1);
        }
    }
}

/// A Phase-1 rectangle index: anything the PRQ executors can run their
/// candidate search against. Implemented by the single-writer [`RTree`]
/// and by the concurrent OLC tree
/// ([`ConcurrentRTree`](crate::ConcurrentRTree)), so the same executor
/// code serves both the batch and the shared-service deployment shapes.
pub trait Phase1Index<const D: usize, T> {
    /// Clears `out`, then appends every record whose point lies in
    /// `rect` (boundary inclusive), accumulating statistics.
    fn search_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    );

    /// Batched Phase-1 probe: answers `rects[q]` into `out[q]` with
    /// per-query statistics in `stats[q]`, for every `q` up to the
    /// shortest of the three slices. Each query's results and counters
    /// must be identical to a solo [`Phase1Index::search_rect_into`]
    /// call with the same rectangle — batching is a pure amortization,
    /// never a semantic change (the batch executor's parity suite holds
    /// implementations to this).
    ///
    /// The default implementation probes one rectangle at a time, which
    /// is always correct; indexes that can share a descent across
    /// rectangles (the single-writer [`RTree`]) override it.
    fn search_rects_into<'t>(
        &'t self,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
    ) {
        let zipped = std::iter::zip(rects, std::iter::zip(stats.iter_mut(), out.iter_mut()));
        for (rect, (st, buf)) in zipped {
            self.search_rect_into(rect, st, buf);
        }
    }
}

impl<const D: usize, T> Phase1Index<D, T> for RTree<D, T> {
    fn search_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        self.query_rect_into(rect, stats, out);
    }

    fn search_rects_into<'t>(
        &'t self,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
    ) {
        self.query_rects_into(rects, stats, out);
    }
}

/// Reusable scratch state for [`RTree::nearest_neighbors_into`].
///
/// Owns the best-first priority queue so repeated k-NN queries against
/// the same tree reuse its backing allocation. The lifetime `'t` ties
/// the scratch to the tree borrow; create one per batch of queries.
pub struct KnnScratch<'t, const D: usize, T> {
    heap: BinaryHeap<HeapItem<'t, D, T>>,
}

impl<'t, const D: usize, T> KnnScratch<'t, D, T> {
    /// Creates empty scratch state (no allocation until first use).
    pub fn new() -> Self {
        KnnScratch {
            heap: BinaryHeap::new(),
        }
    }
}

impl<const D: usize, T> Default for KnnScratch<'_, D, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, T> RTree<D, T> {
    /// Visits every record whose point lies in `rect` (boundary
    /// inclusive), accumulating statistics.
    pub fn query_rect_visit<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&'t Vector<D>, &'t T),
    ) {
        if self.is_empty() {
            return;
        }
        rect_rec(&self.root, rect, stats, &mut visit);
    }

    /// Returns all records whose points lie in `rect`.
    pub fn query_rect(&self, rect: &Rect<D>) -> Vec<(&Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.query_rect_with_stats(rect, &mut stats)
    }

    /// [`RTree::query_rect`] with statistics accumulation.
    pub fn query_rect_with_stats(
        &self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
    ) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        self.query_rect_into(rect, stats, &mut out);
        out
    }

    /// Buffer-reusing [`RTree::query_rect_with_stats`]: clears `out`,
    /// then appends every matching record. Results are identical to the
    /// allocating variant (same order, same contents).
    pub fn query_rect_into<'t>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        out.clear();
        if self.is_empty() {
            return;
        }
        rect_rec(&self.root, rect, stats, &mut |p, d| out.push((p, d)));
    }

    /// Multi-rectangle variant of [`RTree::query_rect_into`]: a single
    /// tree descent serves all `rects` at once, carrying the subset of
    /// queries still active at each node. Answers `rects[q]` into
    /// `out[q]` with statistics in `stats[q]`, for every `q` up to the
    /// shortest of the three slices (each `out[q]` is cleared first,
    /// including any beyond that length).
    ///
    /// Per query, the candidate list, its order, and every counter in
    /// `stats[q]` are identical to a solo [`RTree::query_rect_into`]
    /// call: query `q` participates at a node exactly when that node
    /// intersects `rects[q]` (the root unconditionally, matching the
    /// solo entry point), and the depth-first child order is shared, so
    /// `q` sees the same nodes, entries, and results in the same order.
    pub fn query_rects_into<'t>(
        &'t self,
        rects: &[Rect<D>],
        stats: &mut [SearchStats],
        out: &mut [Vec<(&'t Vector<D>, &'t T)>],
    ) {
        for buf in out.iter_mut() {
            buf.clear();
        }
        let n = rects.len().min(stats.len()).min(out.len());
        if n == 0 || self.is_empty() {
            return;
        }
        let active: Vec<usize> = (0..n).collect();
        multi_rect_rec(&self.root, rects, &active, stats, out);
    }

    /// Fallible variant of [`RTree::query_rect_visit`]: the visitor may
    /// abort the traversal by returning `Err`, which propagates out
    /// immediately (records already visited are *not* rolled back — the
    /// caller decides whether partial output is usable).
    ///
    /// The resilient executor uses this hook to bail out of Phase 1 when
    /// a candidate cap is hit, and the fault-injection harness uses it to
    /// simulate index failures mid-traversal.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by `visit`, with `stats`
    /// reflecting the work done up to that point.
    pub fn try_query_rect_visit<'t, E>(
        &'t self,
        rect: &Rect<D>,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&'t Vector<D>, &'t T) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.is_empty() {
            return Ok(());
        }
        try_rect_rec(&self.root, rect, stats, &mut visit)
    }

    /// Visits every record within Euclidean distance `radius` of `center`.
    pub fn query_ball_visit<'t>(
        &'t self,
        center: &Vector<D>,
        radius: f64,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&'t Vector<D>, &'t T),
    ) {
        debug_assert!(radius >= 0.0);
        if self.is_empty() {
            return;
        }
        ball_rec(&self.root, center, radius * radius, stats, &mut visit);
    }

    /// Returns all records within Euclidean distance `radius` of `center`.
    pub fn query_ball(&self, center: &Vector<D>, radius: f64) -> Vec<(&Vector<D>, &T)> {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        self.query_ball_into(center, radius, &mut stats, &mut out);
        out
    }

    /// Buffer-reusing [`RTree::query_ball`]: clears `out`, then appends
    /// every record within `radius` of `center`, with statistics
    /// accumulation. Results are identical to the allocating variant.
    pub fn query_ball_into<'t>(
        &'t self,
        center: &Vector<D>,
        radius: f64,
        stats: &mut SearchStats,
        out: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        debug_assert!(radius >= 0.0);
        out.clear();
        if self.is_empty() {
            return;
        }
        ball_rec(&self.root, center, radius * radius, stats, &mut |p, d| {
            out.push((p, d))
        });
    }

    /// Returns the `k` records nearest to `center` as
    /// `(distance, point, payload)`, ascending by distance.
    ///
    /// Classic best-first (Hjaltason–Samet) search over a min-heap keyed
    /// by MINDIST. Used by the pseudo-feedback workload of experiment II
    /// (paper §VI-A: "search its k-nearest neighbors (k-NN) … k = 20")
    /// and by the probabilistic-NN extension.
    pub fn nearest_neighbors(&self, center: &Vector<D>, k: usize) -> Vec<(f64, &Vector<D>, &T)> {
        let mut stats = SearchStats::default();
        self.nearest_neighbors_with_stats(center, k, &mut stats)
    }

    /// [`RTree::nearest_neighbors`] with statistics accumulation.
    pub fn nearest_neighbors_with_stats(
        &self,
        center: &Vector<D>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<(f64, &Vector<D>, &T)> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        self.nearest_neighbors_into(center, k, stats, &mut scratch, &mut out);
        out
    }

    /// Buffer-reusing [`RTree::nearest_neighbors_with_stats`]: clears
    /// `out` and the scratch heap, then appends the `k` nearest records.
    /// Results are identical to the allocating variant.
    pub fn nearest_neighbors_into<'t>(
        &'t self,
        center: &Vector<D>,
        k: usize,
        stats: &mut SearchStats,
        scratch: &mut KnnScratch<'t, D, T>,
        out: &mut Vec<(f64, &'t Vector<D>, &'t T)>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        scratch.heap.push(HeapItem {
            dist_sq: self.root.mbr.min_dist_squared(center),
            kind: Candidate::Node(&self.root),
        });
        knn_best_first(center, k, &mut scratch.heap, stats, out);
    }

    /// Returns a lazy iterator over all records in **ascending distance**
    /// from `center` — incremental nearest-neighbor search (Hjaltason &
    /// Samet). Pulling `k` items costs the same as a `k`-NN query; the
    /// probabilistic-NN extension uses it to stream candidates until its
    /// probability bound proves no farther object can enter the top-k.
    pub fn nearest_iter<'a>(
        &'a self,
        center: &Vector<D>,
    ) -> impl Iterator<Item = (f64, &'a Vector<D>, &'a T)> + 'a {
        let mut heap: BinaryHeap<HeapItem<'a, D, T>> = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(HeapItem {
                dist_sq: self.root.mbr.min_dist_squared(center),
                kind: Candidate::Node(&self.root),
            });
        }
        let center = *center;
        std::iter::from_fn(move || loop {
            let item = heap.pop()?;
            match item.kind {
                Candidate::Node(node) => {
                    if node.is_leaf() {
                        for e in &node.entries {
                            heap.push(HeapItem {
                                dist_sq: e.point.distance_squared(&center),
                                kind: Candidate::Entry(&e.point, &e.data),
                            });
                        }
                    } else {
                        for c in &node.children {
                            heap.push(HeapItem {
                                dist_sq: c.mbr.min_dist_squared(&center),
                                kind: Candidate::Node(c),
                            });
                        }
                    }
                }
                Candidate::Entry(point, data) => {
                    return Some((item.dist_sq.sqrt(), point, data));
                }
            }
        })
    }

    /// Iterates over all `(point, payload)` records in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vector<D>, &T)> {
        let mut stack: Vec<&Node<D, T>> = Vec::new();
        if !self.is_empty() {
            stack.push(&self.root);
        }
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            if node.is_leaf() {
                return Some(node);
            }
            stack.extend(node.children.iter());
        })
        .flat_map(|leaf| leaf.entries.iter().map(|e| (&e.point, &e.data)))
    }
}

enum Candidate<'a, const D: usize, T> {
    Node(&'a Node<D, T>),
    Entry(&'a Vector<D>, &'a T),
}

struct HeapItem<'a, const D: usize, T> {
    dist_sq: f64,
    kind: Candidate<'a, D, T>,
}

impl<const D: usize, T> PartialEq for HeapItem<'_, D, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl<const D: usize, T> Eq for HeapItem<'_, D, T> {}
impl<const D: usize, T> PartialOrd for HeapItem<'_, D, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, T> Ord for HeapItem<'_, D, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-distance.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

// HOT-PATH: rectangle range-query descent (Phase 1 inner loop)
fn rect_rec<'a, const D: usize, T>(
    node: &'a Node<D, T>,
    rect: &Rect<D>,
    stats: &mut SearchStats,
    visit: &mut impl FnMut(&'a Vector<D>, &'a T),
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if rect.contains_point(&e.point) {
                stats.results += 1;
                visit(&e.point, &e.data);
            }
        }
    } else {
        for c in &node.children {
            if rect.intersects(&c.mbr) {
                rect_rec(c, rect, stats, visit);
            }
        }
    }
}

// Multi-rectangle descent: one DFS carries the indices of the queries still
// active at this node. A query is active at the root unconditionally and at a
// deeper node iff its rectangle intersects that node's MBR — exactly the
// visitation predicate of the solo `rect_rec`, so per-query output and stats
// are bitwise reproductions of N solo descents. Allocates the per-node active
// subset, so it is deliberately not a HOT-PATH root; the batch layer trades a
// small allocation per internal node for visiting shared upper levels once.
fn multi_rect_rec<'a, const D: usize, T>(
    node: &'a Node<D, T>,
    rects: &[Rect<D>],
    active: &[usize],
    stats: &mut [SearchStats],
    out: &mut [Vec<(&'a Vector<D>, &'a T)>],
) {
    for &q in active {
        stats[q].nodes_visited += 1;
    }
    if node.is_leaf() {
        for e in &node.entries {
            for &q in active {
                stats[q].entries_checked += 1;
                if rects[q].contains_point(&e.point) {
                    stats[q].results += 1;
                    out[q].push((&e.point, &e.data));
                }
            }
        }
    } else {
        let mut child_active: Vec<usize> = Vec::with_capacity(active.len());
        for c in &node.children {
            child_active.clear();
            for &q in active {
                if rects[q].intersects(&c.mbr) {
                    child_active.push(q);
                }
            }
            if !child_active.is_empty() {
                multi_rect_rec(c, rects, &child_active, stats, out);
            }
        }
    }
}

// HOT-PATH: fallible rectangle descent (resilient Phase 1 with abort)
fn try_rect_rec<'a, const D: usize, T, E>(
    node: &'a Node<D, T>,
    rect: &Rect<D>,
    stats: &mut SearchStats,
    visit: &mut impl FnMut(&'a Vector<D>, &'a T) -> Result<(), E>,
) -> Result<(), E> {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if rect.contains_point(&e.point) {
                stats.results += 1;
                visit(&e.point, &e.data)?;
            }
        }
    } else {
        for c in &node.children {
            if rect.intersects(&c.mbr) {
                try_rect_rec(c, rect, stats, visit)?;
            }
        }
    }
    Ok(())
}

// HOT-PATH: ball range-query descent (Phase 1 inner loop)
fn ball_rec<'a, const D: usize, T>(
    node: &'a Node<D, T>,
    center: &Vector<D>,
    radius_sq: f64,
    stats: &mut SearchStats,
    visit: &mut impl FnMut(&'a Vector<D>, &'a T),
) {
    stats.nodes_visited += 1;
    if node.is_leaf() {
        for e in &node.entries {
            stats.entries_checked += 1;
            if e.point.distance_squared(center) <= radius_sq {
                stats.results += 1;
                visit(&e.point, &e.data);
            }
        }
    } else {
        for c in &node.children {
            if c.mbr.min_dist_squared(center) <= radius_sq {
                ball_rec(c, center, radius_sq, stats, visit);
            }
        }
    }
}

// HOT-PATH: k-NN best-first loop (Hjaltason–Samet) over caller-owned buffers
fn knn_best_first<'a, const D: usize, T>(
    center: &Vector<D>,
    k: usize,
    heap: &mut BinaryHeap<HeapItem<'a, D, T>>,
    stats: &mut SearchStats,
    out: &mut Vec<(f64, &'a Vector<D>, &'a T)>,
) {
    while let Some(item) = heap.pop() {
        match item.kind {
            Candidate::Node(node) => {
                stats.nodes_visited += 1;
                if node.is_leaf() {
                    for e in &node.entries {
                        stats.entries_checked += 1;
                        heap.push(HeapItem {
                            dist_sq: e.point.distance_squared(center),
                            kind: Candidate::Entry(&e.point, &e.data),
                        });
                    }
                } else {
                    for c in &node.children {
                        heap.push(HeapItem {
                            dist_sq: c.mbr.min_dist_squared(center),
                            kind: Candidate::Node(c),
                        });
                    }
                }
            }
            Candidate::Entry(point, data) => {
                stats.results += 1;
                out.push((item.dist_sq.sqrt(), point, data));
                if out.len() == k {
                    return;
                }
            }
        }
    }
}
