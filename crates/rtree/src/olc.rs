//! Optimistic lock coupling (OLC) primitive: the seqlock version word.
//!
//! ROADMAP item #1 turns the single-writer R\*-tree into a shared index
//! where thousands of readers traverse nodes without taking locks. The
//! building block is a per-node *version word* with seqlock semantics
//! (after the classic sequence-lock protocol):
//!
//! * the version is **even** when the node is unlocked and **odd**
//!   while a writer holds the node;
//! * a reader snapshots the version ([`VersionCell::optimistic_read`]),
//!   reads the payload it protects, then re-checks the version
//!   ([`ReadGuard::validate`]). An unchanged even version proves no
//!   writer overlapped the read — the snapshot is consistent. Any
//!   change (or an odd snapshot) means the read may be torn and must be
//!   retried or escalated;
//! * a writer acquires the node with one CAS from even `v` to odd
//!   `v + 1` ([`VersionCell::write_lock`]) and releases it by bumping
//!   to the even `v + 2` ([`WriteGuard::drop`]) — every write advances
//!   the version by exactly 2, so a reader's snapshot can never be
//!   revalidated across a writer (no ABA: the version is a `u64` and
//!   never decreases).
//!
//! The protocol's *interleavings* are model-checked under the vendored
//! loom shim (`tests/olc_model.rs`, feature `model-check`: every
//! thread schedule of the reader/writer races is explored and no torn
//! read survives validation) and stress-checked under real concurrency
//! — including the ThreadSanitizer CI lane — in `tests/olc_props.rs`.
//! Note the shim's limits: it wraps plain `std` atomics with yield
//! points, so it explores schedules under the **host's** memory model
//! (x86: effectively sequentially consistent for this pattern), not
//! the C11 weak-memory orderings real loom models. Ordering choices —
//! in particular the Release fence in [`VersionCell::write_lock`],
//! which neither the shim, x86, nor TSan can prove necessary — are
//! justified by the `ORDERING:` comments at each site instead.

// Under `model-check` the atomics come from the vendored loom shim, so
// every access becomes a scheduling point for the interleaving
// explorer; in normal builds they are plain `std` atomics with
// identical signatures.
#[cfg(feature = "model-check")]
use loom::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(not(feature = "model-check"))]
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// A seqlock version word: even = unlocked, odd = write-locked.
///
/// The cell stores only the version; the payload it protects lives
/// alongside it in the owning structure (for the OLC tree: the node's
/// bounding rectangles and child pointers). `VersionCell` is `Send` and
/// `Sync` automatically — it contains a single atomic and no interior
/// references — so no manual `unsafe impl` is needed (and the
/// `send-sync-audit` rule would flag one).
#[derive(Debug)]
pub struct VersionCell {
    word: AtomicU64,
}

impl VersionCell {
    /// A new cell, unlocked at version 0.
    #[must_use]
    pub const fn new() -> Self {
        VersionCell {
            word: AtomicU64::new(0),
        }
    }

    /// The current raw version (even = unlocked, odd = write-locked).
    ///
    /// Acquire so that payload reads issued after this load observe at
    /// least the writes of the writer that published this version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Whether a writer currently holds the cell.
    #[must_use]
    pub fn is_write_locked(&self) -> bool {
        self.version() & 1 == 1
    }

    /// Begins an optimistic read: snapshots the version, returning
    /// `None` if a writer currently holds the cell (odd version).
    ///
    /// The caller reads the protected payload, then calls
    /// [`ReadGuard::validate`]; only a `true` result makes the payload
    /// snapshot trustworthy.
    // HOT-PATH: every OLC tree descent starts with an optimistic read
    // of the node version; this must stay allocation- and lock-free.
    #[must_use]
    pub fn optimistic_read(&self) -> Option<ReadGuard<'_>> {
        let v = self.word.load(Ordering::Acquire);
        if v & 1 == 1 {
            return None;
        }
        Some(ReadGuard {
            cell: self,
            version: v,
        })
    }

    /// Attempts to acquire the write lock without blocking. Returns
    /// `None` when another writer holds the cell or the CAS races.
    ///
    /// The returned guard releases the lock on drop, leaving the
    /// version exactly 2 above the pre-lock value.
    #[must_use]
    pub fn write_lock(&self) -> Option<WriteGuard<'_>> {
        // ORDERING: Relaxed screen load — the CAS below is the
        // linearization point and re-checks the value; this load only
        // avoids a doomed CAS when the cell is visibly locked.
        let v = self.word.load(Ordering::Relaxed);
        if v & 1 == 1 {
            return None;
        }
        // ORDERING: Acquire on success pairs with the Release bump in
        // `WriteGuard::drop`, so this writer observes the previous
        // writer's payload writes. Relaxed on failure — a failed CAS
        // acquires nothing and the caller just retries or backs off.
        match self
            .word
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => {
                // ORDERING: Release fence — the classic seqlock writer
                // barrier. The CAS above is Acquire-only, which orders
                // nothing *after* the odd-version store; without this
                // fence the caller's (Relaxed) payload stores could
                // become visible to a reader before the odd version
                // does, letting a torn snapshot pass
                // `ReadGuard::validate` on weakly-ordered hardware
                // (ARM). The fence orders the odd-version store before
                // every subsequent payload store, pairing with the
                // Acquire fence in `validate`: a reader that observes
                // any post-lock payload write must also observe the odd
                // version on its re-read and discard the snapshot.
                fence(Ordering::Release);
                Some(WriteGuard { cell: self })
            }
            Err(_) => None,
        }
    }

    /// Runs `read` until a validated (un-torn) snapshot is obtained,
    /// retrying at most `max_retries` times. Returns `None` when every
    /// attempt raced with a writer — callers escalate (for the OLC
    /// tree: restart the descent or fall back to a shared lock).
    ///
    /// `max_retries = 0` means exactly one optimistic attempt and no
    /// retry; `max_retries = k` permits `k + 1` attempts in total.
    ///
    /// `read` must be side-effect-free: it may run multiple times and
    /// its intermediate results are discarded on validation failure.
    pub fn read_consistent<T>(&self, max_retries: usize, read: impl FnMut() -> T) -> Option<T> {
        match self.read_tracked(max_retries, read) {
            ReadOutcome::Validated { value, .. } => Some(value),
            ReadOutcome::Contended { .. } | ReadOutcome::LockedOnArrival { .. } => None,
        }
    }

    /// [`VersionCell::read_consistent`] with full retry accounting: the
    /// outcome distinguishes a validated snapshot (and how many retries
    /// it cost) from the two failure modes a contention ladder treats
    /// differently — *contended* (at least one speculative read was
    /// torn by a concurrent writer: backing off and retrying is likely
    /// to succeed) versus *write-locked on arrival* (every attempt
    /// found the cell held by a writer: the reader never even
    /// speculated, and escalating to the pessimistic path is the better
    /// move).
    ///
    /// `max_retries = 0` means exactly one optimistic attempt and no
    /// retry; `max_retries = k` permits `k + 1` attempts in total.
    ///
    /// `read` must be side-effect-free: it may run multiple times and
    /// its intermediate results are discarded on validation failure.
    // RETRY-SAFE: the loop body re-runs on every validation failure;
    // all of its bindings are local, so re-execution is unobservable
    // (the `retry-purity` audit rule checks this body and every
    // closure passed in).
    pub fn read_tracked<T>(
        &self,
        max_retries: usize,
        mut read: impl FnMut() -> T,
    ) -> ReadOutcome<T> {
        let attempts = max_retries.saturating_add(1);
        let mut locked_on_arrival = 0;
        for attempt in 0..attempts {
            let Some(guard) = self.optimistic_read() else {
                locked_on_arrival += 1;
                continue;
            };
            let value = read();
            if guard.validate() {
                return ReadOutcome::Validated {
                    value,
                    retries: attempt,
                };
            }
        }
        if locked_on_arrival == attempts {
            ReadOutcome::LockedOnArrival { attempts }
        } else {
            ReadOutcome::Contended { attempts }
        }
    }
}

/// The result of a tracked optimistic read ([`VersionCell::read_tracked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome<T> {
    /// A snapshot survived validation. `retries` counts the failed
    /// attempts *before* the successful one (`0` = first try).
    Validated {
        /// The validated payload snapshot.
        value: T,
        /// Failed attempts before the successful one.
        retries: usize,
    },
    /// Every attempt raced a writer, and at least one of them began on
    /// an unlocked cell — a speculative read was actually torn by a
    /// concurrent version bump. Backoff-and-retry is the natural
    /// escalation.
    Contended {
        /// Total attempts made (`max_retries + 1`).
        attempts: usize,
    },
    /// Every attempt found the cell already write-locked (odd
    /// version): the payload was never even speculatively read. The
    /// writer may hold the node for a structural change — escalating
    /// to the pessimistic shared path is the natural escalation.
    LockedOnArrival {
        /// Total attempts made (`max_retries + 1`).
        attempts: usize,
    },
}

impl Default for VersionCell {
    fn default() -> Self {
        VersionCell::new()
    }
}

/// An optimistic read in progress: the version snapshot taken by
/// [`VersionCell::optimistic_read`].
///
/// Holding a `ReadGuard` blocks nothing and reserves nothing — it is a
/// copied version number. Writers proceed regardless; `validate`
/// detects them after the fact.
#[derive(Debug, Clone, Copy)]
pub struct ReadGuard<'a> {
    cell: &'a VersionCell,
    version: u64,
}

impl ReadGuard<'_> {
    /// The snapshotted version (always even).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-checks the version: `true` iff no writer acquired the cell
    /// since the snapshot, i.e. every payload read between
    /// `optimistic_read` and this call saw a consistent state.
    #[must_use]
    pub fn validate(&self) -> bool {
        // ORDERING: the Acquire fence orders the caller's payload reads
        // *before* the re-read below — without it the version re-read
        // could be satisfied early and miss a writer that overlapped
        // the payload reads. The load itself can then be Relaxed: the
        // fence already provides the barrier, and we only compare the
        // value against the snapshot.
        fence(Ordering::Acquire);
        self.cell.word.load(Ordering::Relaxed) == self.version
    }
}

/// An acquired write lock; releasing is bumping the version to the next
/// even value on drop.
#[derive(Debug)]
pub struct WriteGuard<'a> {
    cell: &'a VersionCell,
}

impl WriteGuard<'_> {
    /// The version while locked (always odd).
    #[must_use]
    pub fn version(&self) -> u64 {
        // ORDERING: Relaxed — only this writer can change the word
        // while the lock is held, so there is nothing to synchronize
        // with; the value is stable until our own release.
        self.cell.word.load(Ordering::Relaxed)
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: Release publishes the payload writes made under the
        // lock before the new (even) version becomes visible — pairs
        // with the Acquire loads in `optimistic_read`/`version` and the
        // Acquire fence in `validate`.
        self.cell.word.fetch_add(1, Ordering::Release);
    }
}
