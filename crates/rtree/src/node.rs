//! Tree node representation.

use crate::rect::Rect;
use gprq_linalg::Vector;

/// A data record stored in a leaf: a point plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry<const D: usize, T> {
    /// Spatial key.
    pub point: Vector<D>,
    /// Application payload (typically a record id).
    pub data: T,
}

/// A tree node. Leaves (`level == 0`) hold [`LeafEntry`] records; internal
/// nodes hold child nodes. Exactly one of `entries` / `children` is
/// non-empty (both are empty only for an empty root leaf).
#[derive(Debug, Clone)]
pub(crate) struct Node<const D: usize, T> {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Rect<D>,
    /// Height above the leaf level (leaves are level 0).
    pub level: u32,
    /// Child nodes (internal nodes only).
    pub children: Vec<Node<D, T>>,
    /// Data records (leaves only).
    pub entries: Vec<LeafEntry<D, T>>,
}

impl<const D: usize, T> Node<D, T> {
    /// An empty leaf with a degenerate MBR at the origin.
    pub fn empty_leaf() -> Self {
        Node {
            mbr: Rect::from_point(&Vector::ZERO),
            level: 0,
            children: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// A leaf holding the given records (computes the MBR).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn leaf_from_entries(entries: Vec<LeafEntry<D, T>>) -> Self {
        assert!(!entries.is_empty());
        let mut mbr = Rect::from_point(&entries[0].point);
        for e in &entries[1..] {
            mbr.extend_point(&e.point);
        }
        Node {
            mbr,
            level: 0,
            children: Vec::new(),
            entries,
        }
    }

    /// An internal node over the given children (computes MBR and level).
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or the children have mixed levels.
    pub fn internal_from_children(children: Vec<Node<D, T>>) -> Self {
        assert!(!children.is_empty());
        let level = children[0].level + 1;
        debug_assert!(children.iter().all(|c| c.level + 1 == level));
        let mut mbr = children[0].mbr;
        for c in &children[1..] {
            mbr.extend_rect(&c.mbr);
        }
        Node {
            mbr,
            level,
            children: Vec::new(),
            entries: Vec::new(),
        }
        .with_children(children)
    }

    fn with_children(mut self, children: Vec<Node<D, T>>) -> Self {
        self.children = children;
        self
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of slots in use (entries for leaves, children otherwise).
    pub fn occupancy(&self) -> usize {
        if self.is_leaf() {
            self.entries.len()
        } else {
            self.children.len()
        }
    }

    /// Recomputes this node's MBR from its direct contents.
    pub fn recompute_mbr(&mut self) {
        if self.is_leaf() {
            if let Some((first, rest)) = self.entries.split_first() {
                let mut mbr = Rect::from_point(&first.point);
                for e in rest {
                    mbr.extend_point(&e.point);
                }
                self.mbr = mbr;
            }
        } else if let Some((first, rest)) = self.children.split_first() {
            let mut mbr = first.mbr;
            for c in rest {
                mbr.extend_rect(&c.mbr);
            }
            self.mbr = mbr;
        }
    }

    /// Total node count of the subtree (including `self`).
    pub fn count_nodes(&self) -> usize {
        1 + self.children.iter().map(Node::count_nodes).sum::<usize>()
    }
}

/// Anything with a bounding rectangle — lets the R\* split run unchanged
/// over leaf entries and child nodes.
pub(crate) trait HasMbr<const D: usize> {
    /// Bounding rectangle of the item.
    fn item_mbr(&self) -> Rect<D>;
}

impl<const D: usize, T> HasMbr<D> for LeafEntry<D, T> {
    fn item_mbr(&self) -> Rect<D> {
        Rect::from_point(&self.point)
    }
}

impl<const D: usize, T> HasMbr<D> for Node<D, T> {
    fn item_mbr(&self) -> Rect<D> {
        self.mbr
    }
}
