//! Executor-level integration of the cache-conscious flat index: the
//! three-phase [`PrqExecutor`] and the batched [`QueryBatch`] engine
//! run unchanged over [`FlatRTree`] through [`Phase1Index`], answers
//! match the pointer-tree backends exactly, and — on a frozen image —
//! the Phase-1 counters flow through [`QueryStats`] bitwise.
//!
//! [`Phase1Index`]: gprq_rtree::Phase1Index
//! [`QueryStats`]: gprq_core::QueryStats

use std::collections::BTreeSet;

use gprq_core::ext::parallel::ParallelIntegrator;
use gprq_core::{
    MonteCarloEvaluator, PrqExecutor, PrqQuery, Quadrature2dEvaluator, QueryBatch, StrategySet,
};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{FlatRTree, RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sigma() -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
}

fn random_points(n: usize, seed: u64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                i,
            )
        })
        .collect()
}

fn ids(answers: &[(&Vector<2>, &usize)]) -> BTreeSet<usize> {
    answers.iter().map(|(_, d)| **d).collect()
}

const QUERIES: [(f64, f64, f64, f64); 3] = [
    (500.0, 500.0, 25.0, 0.01),
    (120.0, 830.0, 60.0, 0.05),
    (990.0, 10.0, 40.0, 0.2),
];

#[test]
fn executor_answers_match_across_pointer_and_flat_backends() {
    let points = random_points(3_000, 61);
    let tree = RTree::bulk_load(points.clone(), RStarParams::paper_default(2));
    let frozen = FlatRTree::freeze(tree.clone());
    let packed = FlatRTree::bulk_load(points);
    let executor = PrqExecutor::new(StrategySet::ALL);
    for (cx, cy, delta, theta) in QUERIES {
        let query = PrqQuery::new(Vector::from([cx, cy]), sigma(), delta, theta).unwrap();
        let a = executor
            .execute(&tree, &query, &mut Quadrature2dEvaluator::default())
            .expect("pointer-tree run");
        let b = executor
            .execute(&frozen, &query, &mut Quadrature2dEvaluator::default())
            .expect("frozen-flat run");
        let c = executor
            .execute(&packed, &query, &mut Quadrature2dEvaluator::default())
            .expect("packed-flat run");
        assert_eq!(ids(&a.answers), ids(&b.answers), "({cx}, {cy}) frozen");
        assert_eq!(ids(&a.answers), ids(&c.answers), "({cx}, {cy}) packed");
        // Same candidates through the same filters: the phase-2/3
        // tallies agree across all three backends.
        for other in [&b, &c] {
            assert_eq!(a.stats.phase1_candidates, other.stats.phase1_candidates);
            assert_eq!(a.stats.integrations, other.stats.integrations);
            assert_eq!(a.stats.answers, other.stats.answers);
        }
        // The frozen image shares the pointer tree's topology, so even
        // the Phase-1 access counters are bitwise identical.
        assert_eq!(a.stats.node_accesses, b.stats.node_accesses);
        assert_eq!(a.stats.leaf_hits, b.stats.leaf_hits);
    }
}

#[test]
fn flat_backend_reports_zero_olc_activity() {
    let flat = FlatRTree::bulk_load(random_points(1_000, 67));
    let executor = PrqExecutor::new(StrategySet::ALL);
    let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma(), 25.0, 0.01).unwrap();
    let outcome = executor
        .execute(&flat, &query, &mut Quadrature2dEvaluator::default())
        .expect("flat run");
    assert!(outcome.stats.node_accesses > 0);
    assert_eq!(outcome.stats.olc_attempts, 0);
    assert_eq!(outcome.stats.olc_retries, 0);
    assert_eq!(outcome.stats.olc_pessimistic_fallbacks, 0);
}

#[test]
fn query_batch_over_flat_backend_matches_solo_runs() {
    const SAMPLES: usize = 1_000;
    const BASE_SEED: u64 = 9_173;
    let flat = FlatRTree::bulk_load(random_points(2_000, 71));
    let queries: Vec<PrqQuery<2>> = QUERIES
        .iter()
        .map(|&(cx, cy, delta, theta)| {
            PrqQuery::new(Vector::from([cx, cy]), sigma(), delta, theta).unwrap()
        })
        .collect();

    let executor = PrqExecutor::new(StrategySet::ALL);
    let integrator =
        ParallelIntegrator::new(SAMPLES, BASE_SEED, 1).expect("non-zero sample budget");
    let mut batch = QueryBatch::new(executor, integrator);
    let outcomes = batch.execute(&flat, &queries).expect("batch execution");
    assert_eq!(outcomes.len(), queries.len());

    for (q, (query, outcome)) in queries.iter().zip(&outcomes).enumerate() {
        let seed = batch.cloud_seed_for(query);
        let mut eval = MonteCarloEvaluator::new(SAMPLES, seed);
        let solo = executor
            .execute(&flat, query, &mut eval)
            .expect("solo execution");
        let batch_ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        let solo_ids: Vec<usize> = solo.answers.iter().map(|(_, d)| **d).collect();
        assert_eq!(batch_ids, solo_ids, "query {q}: answers diverge");
        assert_eq!(
            outcome.stats.phase1_candidates, solo.stats.phase1_candidates,
            "query {q}"
        );
        assert_eq!(
            outcome.stats.node_accesses, solo.stats.node_accesses,
            "query {q}"
        );
        assert_eq!(outcome.stats.answers, solo.stats.answers, "query {q}");
    }
}
