//! Exhaustive fallback-chain coverage: every combination of
//! (catalog configuration × θ range × strategy set) must reach a
//! terminal strategy with no error, and the [`DegradationReport`] must
//! name every hop the chain took to get there.

use gprq_core::{
    BfCatalog, DegradationReason, DeterministicBudgeted, Quadrature2dEvaluator, ResilientExecutor,
    RrCatalog, StrategySet, TerminalStrategy,
};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CatalogConfig {
    None,
    Matched,
    Mismatched,
    MismatchedRrOnly,
}

const CATALOG_CONFIGS: [CatalogConfig; 4] = [
    CatalogConfig::None,
    CatalogConfig::Matched,
    CatalogConfig::Mismatched,
    CatalogConfig::MismatchedRrOnly,
];

/// θ probes spanning every admission/fallback regime: valid-low,
/// near-half, above-half, clamped-high, clamped-low.
const THETAS: [f64; 5] = [0.01, 0.45, 0.6, 1.3, -0.2];

fn all_strategy_sets() -> [StrategySet; 8] {
    let mut sets = [StrategySet::ALL; 8];
    let mut i = 0;
    for rr in [false, true] {
        for or in [false, true] {
            for bf in [false, true] {
                sets[i] = StrategySet { rr, or, bf };
                i += 1;
            }
        }
    }
    sets
}

fn small_tree() -> RTree<2, u32> {
    let points: Vec<(Vector<2>, u32)> = (0..200)
        .map(|i| {
            (
                Vector::from([(i % 20) as f64 * 30.0, (i / 20) as f64 * 30.0]),
                i,
            )
        })
        .collect();
    RTree::bulk_load(points, RStarParams::paper_default(2))
}

#[test]
fn every_combination_reaches_a_terminal_strategy() {
    let tree = small_tree();
    let sigma = Matrix::identity().scale(400.0);
    let center = Vector::from([300.0, 150.0]);
    let policy_floor = 1e-9;
    let policy_ceiling = 1.0 - 1e-9;

    for config in CATALOG_CONFIGS {
        // Catalogs owned per-config so the executor can borrow them.
        let rr2 = RrCatalog::new(2);
        let bf2 = BfCatalog::new(2);
        let rr3 = RrCatalog::new(3);
        let bf3 = BfCatalog::new(3);
        for theta in THETAS {
            for set in all_strategy_sets() {
                let label = format!("{config:?} θ={theta} {}", set.name());
                let mut exec = ResilientExecutor::new(set);
                exec = match config {
                    CatalogConfig::None => exec,
                    CatalogConfig::Matched => exec.with_rr_catalog(&rr2).with_bf_catalog(&bf2),
                    CatalogConfig::Mismatched => exec.with_rr_catalog(&rr3).with_bf_catalog(&bf3),
                    CatalogConfig::MismatchedRrOnly => exec.with_rr_catalog(&rr3),
                };
                let mut eval = DeterministicBudgeted::new(Quadrature2dEvaluator::default());
                let outcome = exec
                    .execute(&tree, center, sigma, 50.0, theta, &mut eval)
                    .unwrap_or_else(|e| panic!("{label}: chain must not error, got {e}"));

                // --- Replay the chain's contract step by step. ---------
                let mut expected_hops = 0;

                // 1. Mismatched catalogs are dropped, each with an entry.
                let expected_drops = match config {
                    CatalogConfig::None | CatalogConfig::Matched => 0,
                    CatalogConfig::Mismatched => 2,
                    CatalogConfig::MismatchedRrOnly => 1,
                };
                let drops = outcome
                    .report
                    .iter()
                    .filter(|r| matches!(r, DegradationReason::CatalogDropped { .. }))
                    .count();
                assert_eq!(drops, expected_drops, "{label}: {}", outcome.report);
                expected_hops += expected_drops;

                // 2. θ clamping (admission) happens before strategy hops.
                let effective_theta = if theta <= 0.0 {
                    policy_floor
                } else if theta >= 1.0 {
                    policy_ceiling
                } else {
                    theta
                };
                let clamped = (effective_theta - theta).abs() > 0.0;
                assert_eq!(
                    clamped,
                    outcome
                        .report
                        .iter()
                        .any(|r| matches!(r, DegradationReason::ThetaClamped { .. })),
                    "{label}"
                );
                expected_hops += usize::from(clamped);

                // 3. θ ≥ 1/2 forces any RR/OR user down to BF-only.
                let mut effective_set = set;
                if effective_theta >= 0.5 && (set.rr || set.or) {
                    effective_set = StrategySet::BF;
                    assert!(
                        outcome.report.iter().any(|r| matches!(
                            r,
                            DegradationReason::StrategySwitched { from, to, .. }
                                if *from == set && *to == StrategySet::BF
                        )),
                        "{label}: missing θ≥1/2 hop in {}",
                        outcome.report
                    );
                    expected_hops += 1;
                }

                // 4. Still-invalid sets either pair OR with RR or give up
                //    and scan.
                let expected_terminal = if effective_set.validate().is_ok() {
                    TerminalStrategy::Filtered(effective_set)
                } else if effective_set.or {
                    expected_hops += 1;
                    TerminalStrategy::Filtered(StrategySet::RR_OR)
                } else {
                    expected_hops += 1;
                    TerminalStrategy::NaiveScan
                };
                assert_eq!(
                    outcome.terminal, expected_terminal,
                    "{label}: {}",
                    outcome.report
                );

                // A filtered terminal is always a *valid* strategy set.
                if let TerminalStrategy::Filtered(s) = outcome.terminal {
                    assert!(
                        s.validate().is_ok(),
                        "{label}: invalid terminal {}",
                        s.name()
                    );
                }

                // 5. Every hop is named: no extra entries, none missing.
                assert_eq!(
                    outcome.report.len(),
                    expected_hops,
                    "{label}: {}",
                    outcome.report
                );

                // The run is internally consistent regardless of route.
                assert_eq!(outcome.stats.answers, outcome.answers.len(), "{label}");
                assert_eq!(outcome.stats.uncertain, outcome.uncertain.len(), "{label}");
                if outcome.terminal == TerminalStrategy::NaiveScan {
                    assert_eq!(outcome.stats.phase1_candidates, tree.len(), "{label}");
                }
            }
        }
    }
}

/// Wilson-interval early termination strictly reduces Phase-3 samples
/// versus the fixed-budget baseline on the same workload — the saving
/// the `resilience` bench records in `BENCH_resilience.json`.
#[test]
fn early_termination_reduces_phase3_samples() {
    use gprq_core::{EvalBudget, SequentialMonteCarloEvaluator};
    let tree = small_tree();
    let sigma = Matrix::identity().scale(400.0);
    let center = Vector::from([300.0, 150.0]);
    let budget = EvalBudget {
        max_samples_per_object: 50_000,
        ..EvalBudget::UNLIMITED
    };

    // RR never sure-accepts, so every Phase-2 survivor must be
    // integrated — giving early termination something to save.
    let run = |early: bool| {
        let mut eval =
            SequentialMonteCarloEvaluator::with_defaults(7).with_early_termination(early);
        let mut exec = ResilientExecutor::new(StrategySet::RR).with_budget(budget);
        exec.execute(&tree, center, sigma, 25.0, 0.05, &mut eval)
            .unwrap()
            .stats
    };
    let with_ci = run(true);
    let without_ci = run(false);

    assert!(with_ci.integrations > 0);
    assert_eq!(with_ci.integrations, without_ci.integrations);
    assert!(
        with_ci.phase3_samples < without_ci.phase3_samples,
        "{} vs {}",
        with_ci.phase3_samples,
        without_ci.phase3_samples
    );
    assert!(with_ci.early_terminations > 0);
    assert_eq!(without_ci.early_terminations, 0);
    assert_eq!(
        without_ci.phase3_samples,
        without_ci.integrations * 50_000,
        "baseline spends the full budget on every candidate"
    );
}

/// The answer set is route-independent: whatever chain a combination
/// takes, an exact evaluator must produce the same answers the plain
/// naive scan does (θ low enough that no admission repair applies).
#[test]
fn degraded_routes_agree_with_each_other() {
    use gprq_core::{execute_naive, PrqQuery};
    let tree = small_tree();
    let sigma = Matrix::identity().scale(400.0);
    let center = Vector::from([300.0, 150.0]);
    let theta = 0.05;

    let query = PrqQuery::new(center, sigma, 25.0, theta).unwrap();
    let mut quad = Quadrature2dEvaluator::default();
    let mut oracle: Vec<u32> = execute_naive(&tree, &query, &mut quad)
        .answers
        .iter()
        .map(|(_, d)| **d)
        .collect();
    oracle.sort_unstable();
    assert!(!oracle.is_empty());

    for set in all_strategy_sets() {
        let mut exec = ResilientExecutor::new(set);
        let mut eval = DeterministicBudgeted::new(Quadrature2dEvaluator::default());
        let outcome = exec
            .execute(&tree, center, sigma, 25.0, theta, &mut eval)
            .unwrap();
        let mut got: Vec<u32> = outcome.answers.iter().map(|(_, d)| **d).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            oracle,
            "set {} (terminal {:?})",
            set.name(),
            outcome.terminal
        );
        assert!(outcome.uncertain.is_empty(), "set {}", set.name());
    }
}
