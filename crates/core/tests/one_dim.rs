//! One-dimensional sanity suite. The paper restricts itself to `d ≥ 2`
//! because the 1-D qualification probability has the closed form
//! `Φ((o+δ−q)/σ) − Φ((o−δ−q)/σ)`; our generic code still instantiates at
//! `D = 1`, so every strategy can be validated against that exact answer.

use gprq_core::{
    execute_naive, BfBounds, BfClass, ProbabilityEvaluator, PrqExecutor, PrqQuery, StrategySet,
};
use gprq_gaussian::integrate::analytic_interval_probability_1d;
use gprq_gaussian::Gaussian;
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};

/// Deterministic evaluator using the 1-D closed form — Phase 3 becomes
/// exact, so strategy equivalence checks are noise-free.
struct Analytic1d;

impl ProbabilityEvaluator<1> for Analytic1d {
    fn probability(&mut self, gaussian: &Gaussian<1>, center: &Vector<1>, delta: f64) -> f64 {
        let (mean, std) = gaussian.marginal_1d(0);
        analytic_interval_probability_1d(mean, std, center[0], delta)
    }
}

fn line_tree(n: usize) -> RTree<1, usize> {
    let points: Vec<(Vector<1>, usize)> = (0..n)
        .map(|i| (Vector::from([i as f64 * 0.5]), i))
        .collect();
    RTree::bulk_load(points, RStarParams::new(16))
}

fn query(center: f64, var: f64, delta: f64, theta: f64) -> PrqQuery<1> {
    PrqQuery::new(
        Vector::from([center]),
        Matrix::from_rows([[var]]),
        delta,
        theta,
    )
    .unwrap()
}

#[test]
fn all_strategies_match_analytic_truth() {
    let tree = line_tree(400);
    let q = query(100.0, 16.0, 5.0, 0.1);
    // Ground truth from the closed form over a full scan.
    let mut truth: Vec<usize> = tree
        .iter()
        .filter(|(p, _)| analytic_interval_probability_1d(100.0, 4.0, p[0], 5.0) >= 0.1)
        .map(|(_, d)| *d)
        .collect();
    truth.sort_unstable();
    assert!(!truth.is_empty());

    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let outcome = PrqExecutor::new(set)
            .execute(&tree, &q, &mut Analytic1d)
            .unwrap();
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        ids.sort_unstable();
        assert_eq!(ids, truth, "strategy {name}");
    }
}

#[test]
fn bf_bounds_collapse_in_one_dim() {
    // In 1-D, λ∥ = λ⊥ (a single eigenvalue): the bounding functions are
    // the density itself, so the annulus collapses — everything is
    // decided without integration (the paper's "completely spherical"
    // best case, §VI-B).
    let q = query(0.0, 9.0, 4.0, 0.2);
    let b = BfBounds::exact(&q);
    match (b.reject, b.accept) {
        (gprq_core::RejectBound::Radius(par), Some(perp)) => {
            assert!(
                (par - perp).abs() < 1e-6,
                "annulus should collapse: α∥ = {par}, α⊥ = {perp}"
            );
        }
        other => panic!("unexpected bounds {other:?}"),
    }
    // Consequently BF classifies everything Accept or Reject.
    for x in [-20.0, -5.0, -1.0, 0.0, 2.0, 6.0, 30.0] {
        let class = b.classify(&Vector::from([x]));
        assert_ne!(
            class,
            BfClass::NeedsIntegration,
            "1-D BF should never integrate (x = {x})"
        );
    }
}

#[test]
fn bf_only_execution_never_integrates_in_1d() {
    let tree = line_tree(1000);
    let q = query(250.0, 25.0, 10.0, 0.05);
    let outcome = PrqExecutor::new(StrategySet::BF)
        .execute(&tree, &q, &mut Analytic1d)
        .unwrap();
    assert_eq!(
        outcome.stats.integrations, 0,
        "spherical case should decide all candidates by bounds"
    );
    // Cross-check answers against naive analytic.
    let naive = execute_naive(&tree, &q, &mut Analytic1d);
    let ids = |o: &gprq_core::PrqOutcome<'_, 1, usize>| {
        let mut v: Vec<usize> = o.answers.iter().map(|(_, d)| **d).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&outcome), ids(&naive));
}

#[test]
fn analytic_evaluator_matches_importance_sampling() {
    use gprq_core::MonteCarloEvaluator;
    let tree = line_tree(300);
    let q = query(75.0, 4.0, 3.0, 0.2);
    let exact = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &q, &mut Analytic1d)
        .unwrap();
    let mut mc = MonteCarloEvaluator::new(200_000, 5);
    let sampled = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &q, &mut mc)
        .unwrap();
    // Identical up to MC noise at the threshold: allow at most the two
    // boundary objects to flip.
    let ids = |o: &gprq_core::PrqOutcome<'_, 1, usize>| {
        let mut v: Vec<usize> = o.answers.iter().map(|(_, d)| **d).collect();
        v.sort_unstable();
        v
    };
    let (a, b) = (ids(&exact), ids(&sampled));
    let diff = a
        .iter()
        .filter(|x| b.binary_search(x).is_err())
        .chain(b.iter().filter(|x| a.binary_search(x).is_err()))
        .count();
    assert!(diff <= 2, "sets differ by {diff}: {a:?} vs {b:?}");
}
