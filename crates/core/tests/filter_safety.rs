//! Property-based *filter safety* tests: over randomized covariances,
//! thresholds, and object layouts, no strategy may ever prune an object
//! whose true qualification probability (by deterministic quadrature)
//! reaches θ — and BF's sure-accepts must all be true answers.
//!
//! This is the load-bearing invariant of the whole paper: Phase-2
//! filtering must be *lossless*; only Phase-3 integration may decide
//! borderline objects.

use gprq_core::{BfBounds, BfClass, FringeMode, OrFilter, PrqQuery, RrFilter, ThetaRegion};
use gprq_gaussian::integrate::quadrature_probability_2d;
use gprq_linalg::{Matrix, Vector};
use proptest::prelude::*;

/// Random SPD covariance from std-devs and a rotation angle.
fn covariance(sx: f64, sy: f64, angle: f64) -> Matrix<2> {
    let (s, c) = angle.sin_cos();
    let (l1, l2) = (sx * sx, sy * sy);
    Matrix::from_rows([
        [c * c * l1 + s * s * l2, s * c * (l1 - l2)],
        [s * c * (l1 - l2), s * s * l1 + c * c * l2],
    ])
}

/// Strategy parameters drawn wide enough to hit degenerate corners
/// (near-isotropic, extremely thin, tiny/large δ, tiny/large θ).
fn params() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    (
        0.5..30.0f64,   // σ major
        0.1..10.0f64,   // σ minor
        -3.2..3.2f64,   // rotation
        0.5..40.0f64,   // δ
        0.001..0.45f64, // θ
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any object with true probability ≥ θ passes every filter.
    #[test]
    fn no_filter_prunes_a_true_answer(
        (smaj, smin, angle, delta, theta) in params(),
        offsets in proptest::collection::vec((-80.0f64..80.0, -80.0f64..80.0), 24),
    ) {
        let sigma = covariance(smaj.max(smin), smin.min(smaj), angle);
        let q = PrqQuery::new(Vector::from([0.0, 0.0]), sigma, delta, theta).unwrap();
        let region = ThetaRegion::for_query(&q).unwrap();
        let rr = RrFilter::new(&q, &region, FringeMode::AllDimensions);
        let or = OrFilter::new(&q, &region);
        let bf = BfBounds::exact(&q);
        let search = rr.search_rect();

        for (dx, dy) in &offsets {
            let o = Vector::from([*dx, *dy]);
            let p = quadrature_probability_2d(q.gaussian(), &o, delta, 48, 96);
            // Use a guard band: quadrature itself is exact to ~1e-9, but
            // filters computed from radii resolved to ~1e-12 can disagree
            // exactly at the boundary. 1e-6 over θ is decisively inside.
            if p >= theta + 1e-6 {
                prop_assert!(search.contains_point(&o),
                    "Phase-1 box dropped true answer at {o} (p = {p}, θ = {theta})");
                prop_assert!(rr.passes(&o),
                    "RR fringe dropped true answer at {o} (p = {p}, θ = {theta})");
                prop_assert!(or.passes(&o),
                    "OR dropped true answer at {o} (p = {p}, θ = {theta})");
                prop_assert!(bf.classify(&o) != BfClass::Reject,
                    "BF rejected true answer at {o} (p = {p}, θ = {theta})");
            }
            // Dual invariant: BF sure-accepts are true answers.
            if bf.classify(&o) == BfClass::Accept {
                prop_assert!(p >= theta - 1e-6,
                    "BF sure-accepted non-answer at {o} (p = {p}, θ = {theta})");
            }
        }
    }

    /// The BF search box (α∥ per axis) also never excludes a true answer
    /// when BF is the Phase-1 primary.
    #[test]
    fn bf_search_box_is_safe(
        (smaj, smin, angle, delta, theta) in params(),
        radial in proptest::collection::vec((0.0f64..120.0, -3.2f64..3.2), 16),
    ) {
        let sigma = covariance(smaj.max(smin), smin.min(smaj), angle);
        let q = PrqQuery::new(Vector::from([0.0, 0.0]), sigma, delta, theta).unwrap();
        let bf = BfBounds::exact(&q);
        match bf.search_rect() {
            Some(rect) => {
                for (r, phi) in &radial {
                    let o = Vector::from([r * phi.cos(), r * phi.sin()]);
                    let p = quadrature_probability_2d(q.gaussian(), &o, delta, 48, 96);
                    if p >= theta + 1e-6 {
                        prop_assert!(rect.contains_point(&o),
                            "BF box dropped true answer at {o} (p = {p})");
                    }
                }
            }
            None => {
                // RejectAll: prove no object can qualify anywhere, probing
                // the most favorable spot (the center).
                let p = quadrature_probability_2d(q.gaussian(), q.center(), delta, 48, 96);
                prop_assert!(p < theta + 1e-6,
                    "RejectAll but center has p = {p} ≥ θ = {theta}");
            }
        }
    }

    /// The θ-region really holds ≥ 1 − 2θ of the mass (Definition 3) —
    /// checked via the Mahalanobis radius against the chi CDF.
    #[test]
    fn theta_region_mass((smaj, smin, angle, delta, theta) in params()) {
        let sigma = covariance(smaj.max(smin), smin.min(smaj), angle);
        let q = PrqQuery::new(Vector::from([0.0, 0.0]), sigma, delta, theta).unwrap();
        let region = ThetaRegion::for_query(&q).unwrap();
        let mass = gprq_gaussian::chi::chi_ball_probability(2, region.r_theta());
        prop_assert!((mass - (1.0 - 2.0 * theta)).abs() < 1e-9);
    }
}
