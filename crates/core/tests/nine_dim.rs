//! Medium-dimensional (9-D) behaviour tests — the regimes §VI of the
//! paper identifies: no-hole BF bounds, narrow-Gaussian OR dominance,
//! and the curse-of-dimensionality blowup of candidate sets relative to
//! answers.

use gprq_core::{
    BfBounds, FringeMode, OrFilter, PrqExecutor, PrqQuery, RrFilter, SharedSamplesEvaluator,
    StrategySet, ThetaRegion,
};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A narrow anisotropic 9-D covariance like the pseudo-feedback ones of
/// §VI-A: one dominant axis, *tilted* relative to the coordinate axes by
/// a sequence of Givens rotations (an axis-aligned narrow Gaussian would
/// make OR's oblique box coincide with RR's rectilinear one).
fn narrow_sigma(scale: f64) -> Matrix<9> {
    let mut d = Matrix::<9>::identity().scale(0.05 * scale);
    d[(0, 0)] = 2.0 * scale;
    d[(1, 1)] = 0.5 * scale;
    // Rotation R as a product of Givens rotations mixing the dominant
    // axes into several coordinates.
    let mut r = Matrix::<9>::identity();
    for &(i, j, angle) in &[
        (0usize, 1usize, 0.6f64),
        (0, 2, 0.8),
        (1, 3, 0.5),
        (0, 4, 0.4),
        (2, 5, 0.7),
    ] {
        let mut g = Matrix::<9>::identity();
        let (s, c) = angle.sin_cos();
        g[(i, i)] = c;
        g[(j, j)] = c;
        g[(i, j)] = -s;
        g[(j, i)] = s;
        r = r.mul_mat(&g);
    }
    // Σ = R·D·Rᵗ (symmetrize to kill round-off drift).
    let sigma = r.mul_mat(&d).mul_mat(&r.transpose());
    Matrix::from_fn(|i, j| 0.5 * (sigma[(i, j)] + sigma[(j, i)]))
}

fn clustered_points(n: usize, seed: u64) -> Vec<(Vector<9>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cluster = (i % 8) as f64;
            (
                Vector::from_fn(|_| cluster * 0.7 + (rng.gen::<f64>() - 0.5) * 2.0),
                i,
            )
        })
        .collect()
}

#[test]
fn narrow_gaussian_has_no_accept_hole() {
    // Eq. 37 regime: (λ⊥)^{d/2}|Σ|^{1/2}θ ≥ 1 for narrow Σ and large θ.
    let q = PrqQuery::new(Vector::<9>::splat(0.0), narrow_sigma(1.0), 0.7, 0.4).unwrap();
    let b = BfBounds::exact(&q);
    assert!(b.accept.is_none(), "narrow 9-D Gaussian must lack a hole");
    // But a generous δ with tiny θ restores the hole.
    let q2 = PrqQuery::new(Vector::<9>::splat(0.0), narrow_sigma(0.05), 5.0, 0.01).unwrap();
    let b2 = BfBounds::exact(&q2);
    assert!(
        b2.accept.is_some(),
        "wide ball + small θ should have a hole"
    );
}

#[test]
fn or_prunes_more_than_fringe_free_rr_on_narrow_gaussians() {
    // §VI-B: "the slanted shape of OR gives more tight regions" —
    // count grid points passing each filter.
    let q = PrqQuery::new(Vector::<9>::splat(0.0), narrow_sigma(1.0), 0.7, 0.4).unwrap();
    let region = ThetaRegion::for_query(&q).unwrap();
    let rr = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
    let or = OrFilter::new(&q, &region);
    let rect = rr.search_rect();
    let mut rng = StdRng::seed_from_u64(3);
    let mut in_rr = 0usize;
    let mut in_or = 0usize;
    let n = 50_000;
    for _ in 0..n {
        // Sample uniformly inside the RR search rect.
        let p = Vector::<9>::from_fn(|d| rect.lo[d] + rng.gen::<f64>() * (rect.hi[d] - rect.lo[d]));
        in_rr += 1; // by construction inside the RR Phase-1 region
        if or.passes(&p) {
            in_or += 1;
        }
    }
    assert!(
        (in_or as f64) < 0.8 * in_rr as f64,
        "OR should prune well inside the RR box: {in_or}/{in_rr}"
    );
}

#[test]
fn candidates_dwarf_answers_in_nine_dims() {
    // The Table III phenomenon at reduced scale: thousands of candidates
    // for a handful of answers.
    let tree = RTree::bulk_load(clustered_points(20_000, 1), RStarParams::paper_default(9));
    let center = Vector::<9>::splat(2.1); // on cluster 3
    let q = PrqQuery::new(center, narrow_sigma(0.5), 0.7, 0.4).unwrap();
    let mut eval = SharedSamplesEvaluator::<9>::new(40_000, 9);
    let outcome = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &q, &mut eval)
        .unwrap();
    assert!(
        outcome.stats.integrations > outcome.stats.answers.max(1) * 5,
        "expected candidate blowup: {} integrations for {} answers",
        outcome.stats.integrations,
        outcome.stats.answers
    );
}

#[test]
fn all_strategies_agree_on_shared_batch_9d() {
    let tree = RTree::bulk_load(clustered_points(10_000, 2), RStarParams::paper_default(9));
    let q = PrqQuery::new(Vector::<9>::splat(1.4), narrow_sigma(0.5), 0.9, 0.3).unwrap();
    let mut reference: Option<Vec<usize>> = None;
    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut eval = SharedSamplesEvaluator::<9>::new(40_000, 55);
        let outcome = PrqExecutor::new(set).execute(&tree, &q, &mut eval).unwrap();
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        ids.sort_unstable();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "set {name}"),
        }
    }
}

#[test]
fn generalized_fringe_only_tightens() {
    let tree = RTree::bulk_load(clustered_points(10_000, 4), RStarParams::paper_default(9));
    let q = PrqQuery::new(Vector::<9>::splat(1.4), narrow_sigma(0.5), 0.9, 0.3).unwrap();
    let run = |mode: FringeMode| {
        let mut eval = SharedSamplesEvaluator::<9>::new(40_000, 55);
        PrqExecutor::new(StrategySet::RR)
            .with_fringe_mode(mode)
            .execute(&tree, &q, &mut eval)
            .unwrap()
    };
    let faithful = run(FringeMode::PaperFaithful); // fringe off in 9-D
    let general = run(FringeMode::AllDimensions);
    assert!(general.stats.integrations <= faithful.stats.integrations);
    let ids = |o: &gprq_core::PrqOutcome<'_, 9, usize>| {
        let mut v: Vec<usize> = o.answers.iter().map(|(_, d)| **d).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&faithful), ids(&general));
}

#[test]
fn bf_reject_radius_grows_with_uncertainty_9d() {
    let mut prev = 0.0;
    for scale in [0.1, 0.5, 1.0, 2.0] {
        let q = PrqQuery::new(Vector::<9>::splat(0.0), narrow_sigma(scale), 2.0, 0.05).unwrap();
        match BfBounds::exact(&q).reject {
            gprq_core::RejectBound::Radius(r) => {
                assert!(r > prev, "α∥ must grow with uncertainty (scale {scale})");
                prev = r;
            }
            gprq_core::RejectBound::RejectAll => {
                // Acceptable terminal state at very large uncertainty:
                // the mass spreads so thin that no object reaches θ.
                assert!(scale >= 1.0, "RejectAll too early at scale {scale}");
            }
        }
    }
}
