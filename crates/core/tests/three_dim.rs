//! Three-dimensional coverage — the paper's other motivating spatial
//! case ("not limited to 2D or 3D", §I). Exercises every strategy at
//! `D = 3`, where the paper-faithful fringe filter is inactive and the
//! generalized one is not, and validates against the naive baseline
//! under a shared-sample evaluator.

use gprq_core::{
    execute_naive, FringeMode, PrqExecutor, PrqQuery, SharedSamplesEvaluator, StrategySet,
};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn airspace_tree(n: usize, seed: u64) -> RTree<3, usize> {
    // Aircraft-like positions: wide x/y extent, thin altitude band.
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            (
                Vector::from([
                    rng.gen::<f64>() * 1000.0,
                    rng.gen::<f64>() * 1000.0,
                    rng.gen::<f64>() * 120.0,
                ]),
                i,
            )
        })
        .collect();
    RTree::bulk_load(points, RStarParams::paper_default(3))
}

fn pose_covariance() -> Matrix<3> {
    // Horizontal uncertainty dominates vertical (GPS-like), tilted in xy.
    let mut m = Matrix::from_rows([[400.0, 120.0, 0.0], [120.0, 250.0, 0.0], [0.0, 0.0, 25.0]]);
    m[(0, 2)] = 10.0;
    m[(2, 0)] = 10.0;
    m
}

#[test]
fn strategies_agree_in_3d() {
    let tree = airspace_tree(15_000, 1);
    let q = PrqQuery::new(
        Vector::from([500.0, 500.0, 60.0]),
        pose_covariance(),
        50.0,
        0.05,
    )
    .unwrap();
    let mut reference: Option<Vec<usize>> = None;
    for (name, set) in StrategySet::PAPER_COMBINATIONS {
        let mut eval = SharedSamplesEvaluator::<3>::new(60_000, 7);
        let outcome = PrqExecutor::new(set).execute(&tree, &q, &mut eval).unwrap();
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        ids.sort_unstable();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "3-D strategy {name}"),
        }
    }
    assert!(!reference.unwrap().is_empty());
}

#[test]
fn matches_naive_in_3d() {
    let tree = airspace_tree(6_000, 2);
    let q = PrqQuery::new(
        Vector::from([300.0, 700.0, 40.0]),
        pose_covariance(),
        60.0,
        0.1,
    )
    .unwrap();
    let mut eval = SharedSamplesEvaluator::<3>::new(60_000, 3);
    let filtered = PrqExecutor::new(StrategySet::ALL)
        .execute(&tree, &q, &mut eval)
        .unwrap();
    let mut eval = SharedSamplesEvaluator::<3>::new(60_000, 3);
    let naive = execute_naive(&tree, &q, &mut eval);
    let ids = |o: &gprq_core::PrqOutcome<'_, 3, usize>| {
        let mut v: Vec<usize> = o.answers.iter().map(|(_, d)| **d).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&filtered), ids(&naive));
    assert!(filtered.stats.integrations < naive.stats.integrations / 4);
}

#[test]
fn generalized_fringe_prunes_in_3d() {
    // At D = 3 the paper-faithful fringe is off; the generalized filter
    // prunes the 8 corner regions of the search box.
    let tree = airspace_tree(15_000, 3);
    let q = PrqQuery::new(
        Vector::from([500.0, 500.0, 60.0]),
        pose_covariance(),
        50.0,
        0.05,
    )
    .unwrap();
    let run = |mode: FringeMode| {
        let mut eval = SharedSamplesEvaluator::<3>::new(60_000, 11);
        PrqExecutor::new(StrategySet::RR)
            .with_fringe_mode(mode)
            .execute(&tree, &q, &mut eval)
            .unwrap()
    };
    let faithful = run(FringeMode::PaperFaithful);
    let general = run(FringeMode::AllDimensions);
    assert!(
        general.stats.pruned_by_fringe > 0,
        "3-D corners should be pruned by the generalized fringe"
    );
    assert_eq!(faithful.stats.pruned_by_fringe, 0);
    assert_eq!(faithful.stats.answers, general.stats.answers);
}
