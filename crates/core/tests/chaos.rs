//! Chaos suite: deterministic fault injection over seeded [`FaultPlan`]s.
//!
//! The resilience contract under test: whatever faults fire, execution
//! returns `Ok`, never panics, and every returned object is either
//! *correct* against the naive full-scan oracle or *explicitly
//! surfaced* — in `uncertain` or via a parameter-repair entry in the
//! [`DegradationReport`].
//!
//! Runs only with `--features fault-inject`.

#![cfg(feature = "fault-inject")]

use std::collections::BTreeSet;

use gprq_core::{
    execute_naive, DegradationReason, DeterministicBudgeted, FaultPlan, FaultSchedule, FaultSite,
    PrqQuery, Quadrature2dEvaluator, ResilientExecutor, ResilientOutcome,
    SequentialMonteCarloEvaluator, StrategySet, UncertainCause,
};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DELTA: f64 = 25.0;
const THETA: f64 = 0.01;

fn sigma_paper() -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
}

fn chaos_tree(n: usize, seed: u64) -> RTree<2, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                i,
            )
        })
        .collect();
    RTree::bulk_load(points, RStarParams::paper_default(2))
}

fn oracle_ids(tree: &RTree<2, usize>) -> BTreeSet<usize> {
    let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma_paper(), DELTA, THETA).unwrap();
    let mut quad = Quadrature2dEvaluator::default();
    execute_naive(tree, &query, &mut quad)
        .answers
        .iter()
        .map(|(_, d)| **d)
        .collect()
}

fn exact_oracle() -> DeterministicBudgeted<Quadrature2dEvaluator> {
    DeterministicBudgeted::new(Quadrature2dEvaluator::default())
}

fn run_with_plan(tree: &RTree<2, usize>, plan: FaultPlan) -> ResilientOutcome<'_, 2, usize> {
    let mut exec = ResilientExecutor::new(StrategySet::ALL).with_fault_plan(plan);
    exec.execute(
        tree,
        Vector::from([500.0, 500.0]),
        sigma_paper(),
        DELTA,
        THETA,
        &mut exact_oracle(),
    )
    .expect("faults must degrade, not error")
}

/// Does the report contain a repair that *changed the effective query
/// parameters*? If so the clean-parameter oracle no longer applies and
/// the degradation entry itself is the required disclosure.
fn params_repaired(outcome: &ResilientOutcome<'_, 2, usize>) -> bool {
    outcome.report.iter().any(|r| {
        matches!(
            r,
            DegradationReason::ThetaClamped { .. }
                | DegradationReason::CovarianceSymmetrized { .. }
                | DegradationReason::CovarianceRegularized { .. }
        )
    })
}

/// The core contract check shared by every seeded run.
fn assert_contract(
    outcome: &ResilientOutcome<'_, 2, usize>,
    oracle: &BTreeSet<usize>,
    label: &str,
) {
    let answers: BTreeSet<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
    let uncertain: BTreeSet<usize> = outcome.uncertain.iter().map(|u| *u.data).collect();

    // Answered and uncertain sets never overlap: an object's status is
    // unambiguous.
    assert!(
        answers.is_disjoint(&uncertain),
        "{label}: object both answered and uncertain"
    );

    if params_repaired(outcome) {
        // Σ (or θ) was repaired: the effective query differs from the
        // oracle's, so set equality is not required — the repair entry
        // in the report is the disclosure the contract demands.
        assert!(outcome.report.is_degraded(), "{label}: repair unreported");
        return;
    }

    // Exact evaluator + unchanged parameters: every answer is truly in
    // range, and every true answer is either returned or explicitly
    // uncertain.
    for id in &answers {
        assert!(
            oracle.contains(id),
            "{label}: object {id} returned but not in oracle"
        );
    }
    for id in oracle {
        assert!(
            answers.contains(id) || uncertain.contains(id),
            "{label}: oracle object {id} silently dropped (report: {})",
            outcome.report
        );
    }
    // Any deviation from the oracle must be accompanied by a report.
    if answers != *oracle {
        assert!(
            outcome.report.is_degraded() || !uncertain.is_empty(),
            "{label}: deviation without disclosure"
        );
    }
}

/// Accounting invariants that hold on every run, faulted or not.
fn assert_accounting(outcome: &ResilientOutcome<'_, 2, usize>, label: &str) {
    let s = &outcome.stats;
    assert_eq!(s.answers, outcome.answers.len(), "{label}");
    assert_eq!(s.uncertain, outcome.uncertain.len(), "{label}");
    let resolved = s.pruned_by_fringe
        + s.pruned_by_or
        + s.pruned_by_bf
        + s.accepted_without_integration
        + s.integrations
        + s.uncertain;
    // Straddle-verdict objects count under both `integrations` and
    // `uncertain`, so the sum may exceed the candidate count by at most
    // the number of integrations.
    assert!(resolved >= s.phase1_candidates, "{label}: lost objects");
    assert!(
        resolved <= s.phase1_candidates + s.integrations,
        "{label}: double-counted objects"
    );
    assert!(s.early_terminations <= s.integrations, "{label}");
}

#[test]
fn seeded_fault_plans_never_panic_and_stay_correct() {
    let tree = chaos_tree(2_000, 7);
    let oracle = oracle_ids(&tree);
    assert!(!oracle.is_empty(), "oracle must be non-trivial");
    for seed in 0..32u64 {
        let outcome = run_with_plan(&tree, FaultPlan::from_seed(seed));
        let label = format!("seed {seed}");
        assert_contract(&outcome, &oracle, &label);
        assert_accounting(&outcome, &label);
    }
}

#[test]
fn fault_free_plan_matches_oracle_exactly() {
    let tree = chaos_tree(2_000, 7);
    let oracle = oracle_ids(&tree);
    let outcome = run_with_plan(&tree, FaultPlan::quiet());
    let answers: BTreeSet<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
    assert_eq!(answers, oracle);
    assert!(outcome.uncertain.is_empty());
    assert!(!outcome.report.is_degraded(), "{}", outcome.report);
}

#[test]
fn every_site_firing_always_is_survivable() {
    let tree = chaos_tree(2_000, 7);
    let oracle = oracle_ids(&tree);
    for site in FaultSite::ALL {
        let plan = FaultPlan::quiet().with_schedule(site, FaultSchedule::Always);
        let outcome = run_with_plan(&tree, plan);
        let label = format!("site {site}");
        assert_contract(&outcome, &oracle, &label);
        assert_accounting(&outcome, &label);

        match site {
            FaultSite::Phase1Traversal => {
                // Index loss falls back to a naive scan — with the
                // exact evaluator the answer set is still perfect.
                assert!(outcome
                    .report
                    .iter()
                    .any(|r| matches!(r, DegradationReason::NaiveFallback { .. })));
                let answers: BTreeSet<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
                assert_eq!(answers, oracle, "naive fallback must stay exact");
            }
            FaultSite::Evaluator => {
                // Every integration attempt fails: all work-list
                // objects surface as uncertain, none are invented.
                assert!(outcome
                    .report
                    .iter()
                    .any(|r| matches!(r, DegradationReason::EvaluatorFaults { .. })));
                assert!(outcome
                    .uncertain
                    .iter()
                    .all(|u| u.cause == UncertainCause::EvaluatorFault));
                assert!(!outcome.uncertain.is_empty());
            }
            FaultSite::SigmaDegeneracy => {
                // The degenerate Σ is repaired at admission and the
                // repair is on the record.
                assert!(outcome
                    .report
                    .iter()
                    .any(|r| matches!(r, DegradationReason::CovarianceRegularized { .. })));
            }
            // CatalogLookup with no catalogs configured,
            // SampleStarvation against a zero-sample exact evaluator,
            // OlcConflict over the single-writer tree (no optimistic
            // reads to invalidate), and BatchAbort outside a batch
            // executor are no-ops — surviving them is the whole
            // assertion. (BatchAbort's real behavior is pinned by
            // `batch_abort_degrades_only_affected_queries` below.)
            FaultSite::CatalogLookup
            | FaultSite::SampleStarvation
            | FaultSite::OlcConflict
            | FaultSite::BatchAbort => {}
        }
    }
}

#[test]
fn catalog_fault_drops_configured_catalogs_and_stays_exact() {
    use gprq_core::{BfCatalog, RrCatalog};
    let tree = chaos_tree(2_000, 7);
    let oracle = oracle_ids(&tree);
    let rr = RrCatalog::new(2);
    let bf = BfCatalog::new(2);
    let plan = FaultPlan::quiet().with_schedule(FaultSite::CatalogLookup, FaultSchedule::Always);
    let mut exec = ResilientExecutor::new(StrategySet::ALL)
        .with_rr_catalog(&rr)
        .with_bf_catalog(&bf)
        .with_fault_plan(plan);
    let outcome = exec
        .execute(
            &tree,
            Vector::from([500.0, 500.0]),
            sigma_paper(),
            DELTA,
            THETA,
            &mut exact_oracle(),
        )
        .unwrap();
    let drops = outcome
        .report
        .iter()
        .filter(|r| matches!(r, DegradationReason::CatalogDropped { .. }))
        .count();
    assert_eq!(drops, 2, "both catalogs dropped: {}", outcome.report);
    // Catalog loss only costs speed, never correctness.
    let answers: BTreeSet<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
    assert_eq!(answers, oracle);
}

#[test]
fn starvation_fault_starves_monte_carlo_evaluation() {
    let tree = chaos_tree(2_000, 7);
    let plan = FaultPlan::quiet().with_schedule(FaultSite::SampleStarvation, FaultSchedule::Always);
    let mut exec = ResilientExecutor::new(StrategySet::ALL).with_fault_plan(plan);
    let mut eval = SequentialMonteCarloEvaluator::with_defaults(11);
    let outcome = exec
        .execute(
            &tree,
            Vector::from([500.0, 500.0]),
            sigma_paper(),
            DELTA,
            THETA,
            &mut eval,
        )
        .unwrap();
    assert_eq!(outcome.stats.phase3_samples, 0, "no samples were granted");
    assert!(outcome
        .uncertain
        .iter()
        .all(|u| u.cause == UncertainCause::NotEvaluated));
    assert!(!outcome.uncertain.is_empty());
    assert!(outcome
        .report
        .iter()
        .any(|r| matches!(r, DegradationReason::BudgetExhausted { .. })));
}

#[test]
fn seeded_fault_plans_with_monte_carlo_never_panic() {
    let tree = chaos_tree(1_000, 23);
    for seed in 100..116u64 {
        let plan = FaultPlan::from_seed(seed);
        let mut exec = ResilientExecutor::new(StrategySet::ALL).with_fault_plan(plan);
        let mut eval = SequentialMonteCarloEvaluator::with_defaults(seed);
        let outcome = exec
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                DELTA,
                THETA,
                &mut eval,
            )
            .expect("MC chaos run must degrade, not error");
        let label = format!("mc seed {seed}");
        assert_accounting(&outcome, &label);
        // Report entries and uncertain causes must agree.
        let faulted = outcome
            .uncertain
            .iter()
            .filter(|u| u.cause == UncertainCause::EvaluatorFault)
            .count();
        let reported_faults = outcome
            .report
            .iter()
            .find_map(|r| match r {
                DegradationReason::EvaluatorFaults { objects } => Some(*objects),
                _ => None,
            })
            .unwrap_or(0);
        assert_eq!(faulted, reported_faults, "{label}");
    }
}

/// ISSUE-9 chaos headline: a fault tripping **mid-batch** must degrade
/// only the affected queries. Tripped queries are dropped from the
/// fused Phase-3 pass and recovered through the solo re-run path with
/// the same derived cloud seed, so *every* query — tripped or not —
/// still answers bitwise identically to the fault-free batch; the only
/// observable differences are the `recovered` flags and the
/// `prq_batch_aborts_total` counter (every hop reported).
#[test]
fn batch_abort_degrades_only_affected_queries() {
    use gprq_core::ext::parallel::ParallelIntegrator;
    use gprq_core::metrics::names;
    use gprq_core::{PipelineMetrics, PrqExecutor, QueryBatch};

    let tree = chaos_tree(2_000, 7);
    let queries: Vec<PrqQuery<2>> = (0..6)
        .map(|i| {
            PrqQuery::new(
                Vector::from([350.0 + 60.0 * i as f64, 480.0]),
                sigma_paper(),
                DELTA,
                THETA,
            )
            .unwrap()
        })
        .collect();
    let integrator = ParallelIntegrator::new(20_000, 404, 1).unwrap();

    // Fault-free baseline batch.
    let mut clean_batch = QueryBatch::new(PrqExecutor::new(StrategySet::ALL), integrator);
    let clean: Vec<_> = clean_batch.execute(&tree, &queries).unwrap();

    // Every second query trips the BatchAbort site.
    let metrics = PipelineMetrics::new();
    let mut batch = QueryBatch::new(
        PrqExecutor::new(StrategySet::ALL).with_metrics(&metrics),
        integrator,
    );
    let mut plan =
        FaultPlan::quiet().with_schedule(FaultSite::BatchAbort, FaultSchedule::EveryNth(2));
    let faulted: Vec<_> = batch
        .execute_with_faults(&tree, &queries, &mut plan)
        .expect("a mid-batch fault must degrade, not error");

    assert_eq!(faulted.len(), clean.len());
    let recovered: Vec<bool> = faulted.iter().map(|o| o.recovered).collect();
    assert!(recovered.iter().any(|&r| r), "some queries must trip");
    assert!(recovered.iter().any(|&r| !r), "some queries must survive");
    for (q, (c, f)) in clean.iter().zip(&faulted).enumerate() {
        assert!(!c.recovered, "fault-free batch must not recover anything");
        let c_ids: Vec<usize> = c.answers.iter().map(|(_, d)| **d).collect();
        let f_ids: Vec<usize> = f.answers.iter().map(|(_, d)| **d).collect();
        assert_eq!(c_ids, f_ids, "query {q}: abort changed the answer set");
        assert_eq!(
            c.probabilities.len(),
            f.probabilities.len(),
            "query {q}: abort changed the work list"
        );
        let same = c
            .probabilities
            .iter()
            .zip(&f.probabilities)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "query {q}: recovery diverged from the fused pass");
        assert_eq!(f.stats.integrations, c.stats.integrations, "query {q}");
        assert_eq!(f.stats.cloud_builds, c.stats.cloud_builds, "query {q}");
    }
    assert!(
        !faulted.iter().all(|o| o.integrated.is_empty()),
        "the batch must actually integrate something"
    );

    // Every hop reported: one abort tick per recovered query, one
    // record_query flush per query, one batch record.
    let aborts = u64::try_from(recovered.iter().filter(|&&r| r).count()).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.counter(names::BATCH_ABORTS), Some(aborts));
    assert_eq!(
        snap.counter(names::BATCH_QUERIES),
        Some(u64::try_from(queries.len()).unwrap())
    );
    assert_eq!(snap.counter(names::BATCHES), Some(1));
}

/// Maps the plan's `OlcConflict` schedule to the concurrent tree's
/// storm knob: `Always` invalidates every capture, `EveryNth(n)` every
/// n-th; one-shot and quiet schedules leave the storm off.
fn storm_intensity(plan: &FaultPlan) -> usize {
    match plan.schedule(FaultSite::OlcConflict) {
        FaultSchedule::Always => 1,
        FaultSchedule::EveryNth(n) => n,
        FaultSchedule::OnNth(_) | FaultSchedule::Never => 0,
    }
}

/// ISSUE-8 chaos headline: a 100 % conflict storm — every optimistic
/// node capture races an artificial version bump — must still
/// terminate, degrade to the pessimistic fallback (readers are
/// starvation-free), and return bitwise-identical answers to the
/// storm-free single-writer run.
#[test]
fn total_conflict_storm_terminates_and_stays_bitwise_correct() {
    use gprq_core::PrqExecutor;
    use gprq_rtree::ConcurrentRTree;

    let tree = chaos_tree(2_000, 7);
    let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..2_000usize {
        let p = Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]);
        conc.insert(p, i);
    }

    let plan = FaultPlan::quiet().with_schedule(FaultSite::OlcConflict, FaultSchedule::Always);
    conc.inject_conflict_storm(storm_intensity(&plan));

    let executor = PrqExecutor::new(StrategySet::ALL);
    let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma_paper(), DELTA, THETA).unwrap();
    let mut total_fallbacks = 0usize;
    let mut total_retries = 0usize;
    for round in 0..5 {
        let stormed = executor
            .execute(&conc, &query, &mut Quadrature2dEvaluator::default())
            .expect("storm must degrade the read path, not error");
        let clean = executor
            .execute(&tree, &query, &mut Quadrature2dEvaluator::default())
            .expect("storm-free baseline");
        let stormed_ids: BTreeSet<usize> = stormed.answers.iter().map(|(_, d)| **d).collect();
        let clean_ids: BTreeSet<usize> = clean.answers.iter().map(|(_, d)| **d).collect();
        assert_eq!(
            stormed_ids, clean_ids,
            "round {round}: storm changed answers"
        );
        total_fallbacks += stormed.stats.olc_pessimistic_fallbacks;
        total_retries += stormed.stats.olc_retries;
        assert_eq!(
            clean.stats.olc_attempts, 0,
            "single-writer tree never reads optimistically"
        );
    }
    assert!(
        total_fallbacks > 0,
        "a total storm must exhaust the ladder and take the pessimistic path"
    );
    assert!(total_retries > 0, "a total storm must burn retries first");
    assert!(
        conc.storm_injections() > 0,
        "the injector must actually have fired"
    );

    // Storm off: the optimistic path recovers immediately.
    conc.inject_conflict_storm(storm_intensity(&FaultPlan::quiet()));
    let calm = executor
        .execute(&conc, &query, &mut Quadrature2dEvaluator::default())
        .expect("calm run");
    assert_eq!(
        calm.stats.olc_pessimistic_fallbacks, 0,
        "no storm, no fallback"
    );
    let calm_ids: BTreeSet<usize> = calm.answers.iter().map(|(_, d)| **d).collect();
    assert_eq!(calm_ids, oracle_ids(&tree));
}
