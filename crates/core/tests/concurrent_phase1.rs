//! Executor-level integration of the concurrent R\*-tree: the
//! three-phase [`PrqExecutor`] runs unchanged over any
//! [`Phase1Index`], the answers match the single-writer tree exactly,
//! and the OLC contention statistics flow end-to-end — `SearchStats` →
//! [`QueryStats`] → the `prq_olc_*` pipeline metrics.
//!
//! [`Phase1Index`]: gprq_rtree::Phase1Index
//! [`QueryStats`]: gprq_core::QueryStats

use std::collections::BTreeSet;

use gprq_core::metrics::names;
use gprq_core::{PipelineMetrics, PrqExecutor, PrqQuery, Quadrature2dEvaluator, StrategySet};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{ConcurrentRTree, RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sigma() -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
}

fn paired_trees(n: usize, seed: u64) -> (RTree<2, usize>, ConcurrentRTree<2, usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(Vector<2>, usize)> = (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                i,
            )
        })
        .collect();
    let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, d) in &points {
        conc.insert(*p, *d);
    }
    (
        RTree::bulk_load(points, RStarParams::paper_default(2)),
        conc,
    )
}

fn ids(answers: &[(&Vector<2>, &usize)]) -> BTreeSet<usize> {
    answers.iter().map(|(_, d)| **d).collect()
}

#[test]
fn executor_answers_match_between_sequential_and_concurrent_trees() {
    let (seq, conc) = paired_trees(3_000, 41);
    let executor = PrqExecutor::new(StrategySet::ALL);
    for (cx, cy, delta, theta) in [
        (500.0, 500.0, 25.0, 0.01),
        (120.0, 830.0, 60.0, 0.05),
        (990.0, 10.0, 40.0, 0.2),
    ] {
        let query = PrqQuery::new(Vector::from([cx, cy]), sigma(), delta, theta).unwrap();
        let a = executor
            .execute(&seq, &query, &mut Quadrature2dEvaluator::default())
            .expect("sequential run");
        let b = executor
            .execute(&conc, &query, &mut Quadrature2dEvaluator::default())
            .expect("concurrent run");
        assert_eq!(
            ids(&a.answers),
            ids(&b.answers),
            "({cx}, {cy}) answers diverged"
        );
        // Same records, same filters: the phase-2/3 tallies agree too.
        assert_eq!(a.stats.phase1_candidates, b.stats.phase1_candidates);
        assert_eq!(a.stats.integrations, b.stats.integrations);
        assert_eq!(a.stats.answers, b.stats.answers);
    }
}

#[test]
fn olc_stats_flow_into_query_stats_and_pipeline_metrics() {
    let (_, conc) = paired_trees(2_000, 43);
    let metrics = PipelineMetrics::new();
    let executor = PrqExecutor::new(StrategySet::ALL).with_metrics(&metrics);
    let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma(), 25.0, 0.01).unwrap();
    let outcome = executor
        .execute(&conc, &query, &mut Quadrature2dEvaluator::default())
        .expect("concurrent run");

    // Quiescent tree: one optimistic attempt per visited node, no
    // retries, no pessimistic fallback.
    assert!(outcome.stats.olc_attempts >= outcome.stats.node_accesses);
    assert!(outcome.stats.node_accesses > 0);
    assert_eq!(outcome.stats.olc_retries, 0);
    assert_eq!(outcome.stats.olc_pessimistic_fallbacks, 0);
    assert_eq!(
        outcome.stats.olc_retry_depth[0], outcome.stats.olc_attempts,
        "first-attempt validations all land in depth bucket 0"
    );

    // The same numbers surface in the registry under the prq_olc_* names.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter(names::OLC_ATTEMPTS),
        Some(u64::try_from(outcome.stats.olc_attempts).unwrap())
    );
    assert_eq!(snap.counter(names::OLC_RETRIES), Some(0));
    assert_eq!(snap.counter(names::OLC_PESSIMISTIC_FALLBACKS), Some(0));
    let depth = snap
        .histogram(names::OLC_RETRY_DEPTH)
        .expect("depth histogram registered");
    assert_eq!(
        depth.count,
        u64::try_from(outcome.stats.olc_attempts).unwrap()
    );
    assert_eq!(depth.sum, 0, "zero retries everywhere on a quiescent tree");
}

#[test]
fn sequential_tree_reports_zero_olc_activity() {
    let (seq, _) = paired_trees(1_000, 47);
    let metrics = PipelineMetrics::new();
    let executor = PrqExecutor::new(StrategySet::ALL).with_metrics(&metrics);
    let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma(), 25.0, 0.01).unwrap();
    let outcome = executor
        .execute(&seq, &query, &mut Quadrature2dEvaluator::default())
        .expect("sequential run");
    assert_eq!(outcome.stats.olc_attempts, 0);
    assert_eq!(outcome.stats.olc_retries, 0);
    assert_eq!(outcome.stats.olc_pessimistic_fallbacks, 0);
    let snap = metrics.snapshot();
    assert_eq!(snap.counter(names::OLC_ATTEMPTS), Some(0));
    assert_eq!(
        snap.histogram(names::OLC_RETRY_DEPTH).map(|h| h.count),
        Some(0)
    );
}
