//! ISSUE-9 parity suite: for every query in a batch — over random
//! catalogs, mixed shared-Σ/distinct-Σ batches, θ extremes, and
//! admission-repaired degenerate Σ — the batched answer set, the
//! qualification probabilities, and the integer execution counters must
//! be **bitwise identical** to the sequential [`PrqExecutor`] run with
//! the same derived cloud seed, across both [`Phase1Index`] backends
//! (`RTree`, `ConcurrentRTree`) and all [`ParallelIntegrator`] thread
//! counts.
//!
//! The sequential baseline for query `q` is
//! `executor.execute(tree, q, &mut MonteCarloEvaluator::new(SAMPLES,
//! cloud_seed(BASE_SEED, q.gaussian())))` — exactly the contract
//! documented in `gprq_core::batch`.

use gprq_core::ext::parallel::ParallelIntegrator;
use gprq_core::{
    AdmissionPolicy, DegradationReport, MonteCarloEvaluator, PrqExecutor, PrqQuery, QueryBatch,
    QueryStats, StrategySet,
};
use gprq_gaussian::cloud::{CloudGrid, SampleCloud};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{ConcurrentRTree, Phase1Index, RStarParams, RTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

const SAMPLES: usize = 2_000;
const BASE_SEED: u64 = 9_001;
/// 0 = "all available cores" — the layout-independence extreme.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 0];

/// A small Σ pool so generated batches mix shared-Σ groups (cache hits)
/// with distinct-Σ queries (cache misses).
fn sigma_pool(slot: u8) -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    let base = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]);
    match slot % 3 {
        0 => base.scale(10.0),
        1 => base.scale(4.0),
        _ => Matrix::identity().scale(25.0),
    }
}

fn random_points(n: usize, seed: u64) -> Vec<(Vector<2>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                i,
            )
        })
        .collect()
}

/// Integer-counter equality — [`QueryStats`] as a whole includes phase
/// `Duration`s, which legitimately differ (the batch divides fused
/// wall-clock), so parity is asserted field by field.
fn assert_counters_equal(batch: &QueryStats, solo: &QueryStats, label: &str) {
    assert_eq!(batch.phase1_candidates, solo.phase1_candidates, "{label}");
    assert_eq!(batch.node_accesses, solo.node_accesses, "{label}");
    assert_eq!(batch.leaf_hits, solo.leaf_hits, "{label}");
    assert_eq!(batch.pruned_by_fringe, solo.pruned_by_fringe, "{label}");
    assert_eq!(batch.or_rotations, solo.or_rotations, "{label}");
    assert_eq!(batch.pruned_by_or, solo.pruned_by_or, "{label}");
    assert_eq!(batch.pruned_by_bf, solo.pruned_by_bf, "{label}");
    assert_eq!(
        batch.accepted_without_integration, solo.accepted_without_integration,
        "{label}"
    );
    assert_eq!(batch.integrations, solo.integrations, "{label}");
    assert_eq!(batch.answers, solo.answers, "{label}");
    assert_eq!(batch.cloud_builds, solo.cloud_builds, "{label}");
    assert_eq!(
        batch.cloud_cells_scanned, solo.cloud_cells_scanned,
        "{label}"
    );
    assert_eq!(batch.cloud_cells_inside, solo.cloud_cells_inside, "{label}");
    assert_eq!(
        batch.cloud_samples_tested, solo.cloud_samples_tested,
        "{label}"
    );
}

/// Runs `queries` as one batch on `tree` and checks every query against
/// its sequential baseline: answers (ids, in order), probabilities
/// (bitwise, against a grid replayed from the derived seed), and
/// counters.
fn assert_batch_matches_solo<I>(
    tree: &I,
    queries: &[PrqQuery<2>],
    strategies: StrategySet,
    threads: usize,
    label: &str,
) where
    I: Phase1Index<2, usize>,
{
    let executor = PrqExecutor::new(strategies);
    let integrator =
        ParallelIntegrator::new(SAMPLES, BASE_SEED, threads).expect("non-zero sample budget");
    let mut batch = QueryBatch::new(executor, integrator);
    let outcomes = batch.execute(tree, queries).expect("batch execution");
    assert_eq!(outcomes.len(), queries.len());

    for (q, (query, outcome)) in queries.iter().zip(&outcomes).enumerate() {
        let label = format!("{label}, query {q}");
        let seed = batch.cloud_seed_for(query);
        let mut eval = MonteCarloEvaluator::new(SAMPLES, seed);
        let solo = executor
            .execute(tree, query, &mut eval)
            .expect("solo execution");

        let batch_ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        let solo_ids: Vec<usize> = solo.answers.iter().map(|(_, d)| **d).collect();
        assert_eq!(batch_ids, solo_ids, "{label}: answer sets diverge");
        assert_counters_equal(&outcome.stats, &solo.stats, &label);
        assert!(!outcome.recovered, "{label}: no faults were injected");

        // Probabilities: replay the solo evaluator's grid (same seed,
        // fresh draw) and probe the batch's work list — every float
        // must match to the last bit.
        let budget = NonZeroUsize::new(SAMPLES).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cloud = SampleCloud::draw(query.gaussian(), budget, &mut rng);
        let grid = CloudGrid::build(&cloud);
        assert_eq!(
            outcome.probabilities.len(),
            outcome.integrated.len(),
            "{label}"
        );
        for (i, (&(point, _), &p)) in outcome
            .integrated
            .iter()
            .zip(&outcome.probabilities)
            .enumerate()
        {
            let expected = grid.probability(point, query.delta());
            assert_eq!(
                p.to_bits(),
                expected.to_bits(),
                "{label}: probability {i} diverges from the seeded replay"
            );
        }
    }
}

/// Full backend × thread-count sweep for one batch.
fn sweep(points: &[(Vector<2>, usize)], queries: &[PrqQuery<2>], strategies: StrategySet) {
    let tree = RTree::bulk_load(points.to_vec(), RStarParams::paper_default(2));
    let conc: ConcurrentRTree<2, usize> = ConcurrentRTree::new();
    for (p, id) in points {
        conc.insert(*p, *id);
    }
    for threads in THREAD_COUNTS {
        assert_batch_matches_solo(
            &tree,
            queries,
            strategies,
            threads,
            &format!("rtree, threads={threads}"),
        );
        assert_batch_matches_solo(
            &conc,
            queries,
            strategies,
            threads,
            &format!("concurrent, threads={threads}"),
        );
    }
}

mod batch_parity {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The headline property: random catalog, random mixed batch
        /// (shared and distinct Σ, θ spanning the RR-valid range, some
        /// queries far off-catalog with empty work lists), bitwise
        /// parity on both backends at every thread count.
        #[test]
        fn random_mixed_batches_match_solo_bitwise(
            tree_seed in 0..u64::MAX / 2,
            tree_size in 400..1_400usize,
            specs in proptest::collection::vec(
                (
                    -200.0..1_200.0f64,  // center x (sometimes off-catalog)
                    -200.0..1_200.0f64,  // center y
                    0u8..6,              // Σ pool slot (forces sharing)
                    8.0..45.0f64,        // δ
                    1e-6..0.49f64,       // θ, up to the RR validity edge
                ),
                1..7,
            ),
        ) {
            let points = random_points(tree_size, tree_seed);
            let queries: Vec<PrqQuery<2>> = specs
                .iter()
                .map(|&(x, y, slot, delta, theta)| {
                    PrqQuery::new(Vector::from([x, y]), sigma_pool(slot), delta, theta)
                        .expect("pool Σ is SPD")
                })
                .collect();
            sweep(&points, &queries, StrategySet::ALL);
        }
    }

    /// θ beyond 1/2 invalidates the θ-region, so RR/OR cannot run — the
    /// BF-only strategy set must still hold batch/solo parity at the
    /// high-θ extreme.
    #[test]
    fn bf_only_high_theta_extremes_match_solo() {
        let points = random_points(1_000, 123);
        let sigma = sigma_pool(0);
        let queries: Vec<PrqQuery<2>> = [0.55, 0.9, 0.999]
            .into_iter()
            .enumerate()
            .map(|(i, theta)| {
                PrqQuery::new(
                    Vector::from([450.0 + 40.0 * i as f64, 500.0]),
                    sigma,
                    30.0,
                    theta,
                )
                .unwrap()
            })
            .collect();
        sweep(&points, &queries, StrategySet::BF);
    }

    /// Degenerate (singular / ill-conditioned) Σ repaired by the
    /// admission policy: the repaired queries run through the batch and
    /// must match their solo baselines bitwise — the cache keys on the
    /// *repaired* covariance bits.
    #[test]
    fn admission_repaired_degenerate_sigma_matches_solo() {
        let points = random_points(1_000, 321);
        let policy = AdmissionPolicy::default();
        let mut report = DegradationReport::new();
        // Rank-1 (singular) and nearly-singular matrices the policy
        // must ridge-repair before they are admissible.
        let degenerate = [
            Matrix::from_rows([[50.0, 50.0], [50.0, 50.0]]),
            Matrix::from_rows([[40.0, 39.999_999_999], [39.999_999_999, 40.0]]),
        ];
        let mut queries = Vec::new();
        for (i, sigma) in degenerate.into_iter().enumerate() {
            let q = policy
                .admit(
                    Vector::from([480.0 + 30.0 * i as f64, 510.0]),
                    sigma,
                    25.0,
                    0.05,
                    &mut report,
                )
                .expect("degenerate Σ is repairable");
            queries.push(q);
            // Same degenerate input again: repairs are deterministic,
            // so this query shares the repaired Σ (a cache hit in the
            // batch).
            let twin = policy
                .admit(Vector::from([520.0, 470.0]), sigma, 25.0, 0.05, &mut report)
                .expect("repair is deterministic");
            queries.push(twin);
        }
        assert!(report.is_degraded(), "the repairs must be on the record");
        sweep(&points, &queries, StrategySet::ALL);
    }

    /// A batch against an empty catalog: every query answers empty,
    /// builds its one cloud, and still matches solo exactly.
    #[test]
    fn empty_catalog_batches_match_solo() {
        let queries: Vec<PrqQuery<2>> = (0..3)
            .map(|i| {
                PrqQuery::new(
                    Vector::from([i as f64 * 100.0, 50.0]),
                    sigma_pool(i as u8),
                    20.0,
                    0.1,
                )
                .unwrap()
            })
            .collect();
        sweep(&[], &queries, StrategySet::ALL);
    }
}
