//! ISSUE-9 Σ-cache correctness: the offset cache is a pure
//! amortization. Cold path (miss, fresh Box–Muller draw) and hit path
//! (cached offsets, re-centered) must produce bitwise-identical
//! answers; eviction and capacity are deterministic; and the cache
//! counters flow into `PipelineMetrics` under their wire names.

use gprq_core::ext::parallel::ParallelIntegrator;
use gprq_core::metrics::names;
use gprq_core::{PipelineMetrics, PrqExecutor, PrqQuery, QueryBatch, StrategySet};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SAMPLES: usize = 5_000;
const SEED: u64 = 77;

fn tree(n: usize, seed: u64) -> RTree<2, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            (
                Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                i,
            )
        })
        .collect();
    RTree::bulk_load(points, RStarParams::paper_default(2))
}

fn sigma(gamma: f64) -> Matrix<2> {
    let s3 = 3.0f64.sqrt();
    Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
}

fn queries() -> Vec<PrqQuery<2>> {
    // Two Σ-groups: γ=10 (three queries) and γ=3 (one query).
    vec![
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma(10.0), 25.0, 0.01).unwrap(),
        PrqQuery::new(Vector::from([530.0, 470.0]), sigma(10.0), 25.0, 0.05).unwrap(),
        PrqQuery::new(Vector::from([300.0, 650.0]), sigma(3.0), 30.0, 0.02).unwrap(),
        PrqQuery::new(Vector::from([470.0, 520.0]), sigma(10.0), 20.0, 0.10).unwrap(),
    ]
}

/// Flattens a batch result into a bitwise-comparable form.
fn fingerprint(
    outcomes: &[gprq_core::BatchOutcome<'_, 2, usize>],
) -> Vec<(Vec<usize>, Vec<u64>, usize)> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.answers.iter().map(|(_, d)| **d).collect(),
                o.probabilities.iter().map(|p| p.to_bits()).collect(),
                o.stats.integrations,
            )
        })
        .collect()
}

#[test]
fn cold_and_hit_paths_are_bitwise_equal() {
    let tree = tree(3_000, 5);
    let integrator = ParallelIntegrator::new(SAMPLES, SEED, 1).unwrap();
    let mut batch = QueryBatch::new(PrqExecutor::new(StrategySet::ALL), integrator);

    // First run: both Σ-groups are cold (2 misses, 2 hits within the
    // batch). Second run of the identical batch: every lookup hits.
    let first = fingerprint(&batch.execute(&tree, &queries()).unwrap());
    assert_eq!((batch.cache().misses(), batch.cache().hits()), (2, 2));
    let second = fingerprint(&batch.execute(&tree, &queries()).unwrap());
    assert_eq!(batch.cache().misses(), 2, "second run must be all hits");
    assert_eq!(batch.cache().hits(), 6);
    assert_eq!(
        first, second,
        "hit path must reproduce the cold path bitwise"
    );
}

#[test]
fn capacity_one_evicts_deterministically_and_keeps_answers_identical() {
    let tree = tree(3_000, 5);
    let integrator = ParallelIntegrator::new(SAMPLES, SEED, 1).unwrap();
    let roomy = QueryBatch::new(PrqExecutor::new(StrategySet::ALL), integrator)
        .execute(&tree, &queries())
        .unwrap();

    // Capacity 1: the γ=10 table is evicted when γ=3 arrives and must
    // be re-drawn for the last query — more misses, same bits.
    let mut tight =
        QueryBatch::new(PrqExecutor::new(StrategySet::ALL), integrator).with_cache_capacity(1);
    let tight_outcomes = tight.execute(&tree, &queries()).unwrap();
    assert_eq!(tight.cache().len(), 1);
    assert_eq!(tight.cache().evictions(), 2, "γ10 → γ3 → γ10 churn");
    assert_eq!(
        (tight.cache().misses(), tight.cache().hits()),
        (3, 1),
        "re-draw after eviction is a miss"
    );
    assert_eq!(
        fingerprint(&roomy),
        fingerprint(&tight_outcomes),
        "capacity must never change an answer"
    );

    // Re-running the identical batch churns the same way — eviction is
    // a pure function of the lookup sequence (the retained γ10 table
    // serves the first two lookups before the γ3 arrival evicts it).
    tight.execute(&tree, &queries()).unwrap();
    assert_eq!(tight.cache().evictions(), 4);
    assert_eq!((tight.cache().misses(), tight.cache().hits()), (5, 3));
}

#[test]
fn cache_counters_flow_into_pipeline_metrics() {
    let tree = tree(3_000, 5);
    let metrics = PipelineMetrics::new();
    let integrator = ParallelIntegrator::new(SAMPLES, SEED, 1).unwrap();
    let mut batch = QueryBatch::new(
        PrqExecutor::new(StrategySet::ALL).with_metrics(&metrics),
        integrator,
    );
    batch.execute(&tree, &queries()).unwrap();
    batch.execute(&tree, &queries()).unwrap();

    let snap = metrics.snapshot();
    assert_eq!(snap.counter(names::BATCHES), Some(2));
    assert_eq!(snap.counter(names::BATCH_QUERIES), Some(8));
    // Batch 1: 2 misses + 2 hits; batch 2: 4 hits.
    assert_eq!(snap.counter(names::BATCH_SIGMA_CACHE_HITS), Some(6));
    assert_eq!(snap.counter(names::BATCH_SIGMA_CACHE_MISSES), Some(2));
    assert_eq!(snap.counter(names::BATCH_ABORTS), Some(0));
    // The per-query flush path ran once per query: 8 queries total.
    assert_eq!(snap.counter(names::QUERIES), Some(8));
    // And the fused Phase 3 built one cloud per query per batch.
    assert_eq!(snap.counter(names::CLOUD_BUILDS), Some(8));
}
