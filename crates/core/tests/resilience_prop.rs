//! Property-based admission hardening: arbitrary — including non-finite
//! and degenerate — query parameters pushed through
//! [`AdmissionPolicy::admit`] must never panic, and every accepted query
//! must either match the raw inputs exactly or carry a
//! [`DegradationReport`] entry for each repair (no silent repairs).
//!
//! Run with `cargo test -p gprq-core resilience_prop`.

use gprq_core::{AdmissionPolicy, DegradationReason, DegradationReport, PrqQuery};
use gprq_linalg::{Matrix, Vector};
use proptest::prelude::*;

/// Replaces a finite base value by a pathological one according to a
/// corruption code; code 0 (and most codes) keep the value intact so
/// clean queries stay common in the mix.
fn corrupted(v: f64, code: u8) -> f64 {
    match code % 16 {
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => 0.0,
        5 => -v,
        6 => v * 1e300,
        7 => v * 1e-300,
        8 => f64::MAX,
        _ => v,
    }
}

/// Random (possibly corrupted) covariance built from std-devs, a
/// rotation, and per-entry corruption codes. The clean version is SPD;
/// corruption can make it asymmetric, indefinite, or non-finite.
fn covariance(sx: f64, sy: f64, angle: f64, codes: &[u8]) -> Matrix<2> {
    let (s, c) = angle.sin_cos();
    let (l1, l2) = (sx * sx, sy * sy);
    let clean = [
        [c * c * l1 + s * s * l2, s * c * (l1 - l2)],
        [s * c * (l1 - l2), s * s * l1 + c * c * l2],
    ];
    Matrix::from_fn(|i, j| corrupted(clean[i][j], codes[2 * i + j]))
}

// Named module so `cargo test -p gprq-core resilience_prop` selects
// exactly this suite by test-name prefix.
mod resilience_prop {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Admission is total: any input either admits or rejects with an
        /// error — and an admitted query that differs from the raw input in
        /// any way has a report entry naming the repair.
        #[test]
        fn admission_never_panics_and_never_repairs_silently(
            (smaj, smin, angle) in (0.1..30.0f64, 0.1..10.0f64, -3.2..3.2f64),
            (cx, cy, delta, theta) in (-500.0..500.0f64, -500.0..500.0f64, 0.01..60.0f64, -0.5..1.5f64),
            codes in proptest::collection::vec(0u8..255, 8),
        ) {
            let sigma = covariance(smaj, smin, angle, &codes[0..4]);
            let center = Vector::from([corrupted(cx, codes[4]), corrupted(cy, codes[5])]);
            let delta = corrupted(delta, codes[6]);
            let theta = corrupted(theta, codes[7]);

            let mut report = DegradationReport::new();
            let policy = AdmissionPolicy::default();
            // The property under test is simply that this call returns.
            let admitted = policy.admit(center, sigma, delta, theta, &mut report);

            let query = match admitted {
                Err(_) => return, // rejection is always a legal outcome
                Ok(q) => q,
            };

            // Whatever came out is a well-formed query: finite, PD, θ in
            // range — downstream phases can rely on it unconditionally.
            prop_assert!(query.theta() > 0.0 && query.theta() < 1.0);
            prop_assert!(query.delta() > 0.0 && query.delta().is_finite());
            prop_assert!(query.gaussian().covariance().is_finite());
            prop_assert!(query.gaussian().covariance().cholesky().is_ok());
            for d in 0..2 {
                prop_assert!(query.center()[d].is_finite());
            }

            // No silent repair: every difference between input and admitted
            // parameters must be named in the report.
            let theta_changed = query.theta().to_bits() != theta.to_bits();
            prop_assert_eq!(
                theta_changed,
                report.iter().any(|r| matches!(r, DegradationReason::ThetaClamped { .. })),
                "θ {} → {} vs report {}", theta, query.theta(), report
            );

            let cov = query.gaussian().covariance();
            let symmetrized = report
                .iter()
                .any(|r| matches!(r, DegradationReason::CovarianceSymmetrized { .. }));
            let regularized = report
                .iter()
                .any(|r| matches!(r, DegradationReason::CovarianceRegularized { .. }));
            let cov_changed = (0..2).any(|i| {
                (0..2).any(|j| cov[(i, j)].to_bits() != sigma[(i, j)].to_bits())
            });
            prop_assert_eq!(
                cov_changed,
                symmetrized || regularized,
                "Σ changed without (or report without) a repair entry: {}", report
            );

            // δ and the center are never repaired — only accepted verbatim
            // or rejected.
            prop_assert_eq!(query.delta().to_bits(), delta.to_bits());
            for d in 0..2 {
                prop_assert_eq!(query.center()[d].to_bits(), center[d].to_bits());
            }

            // A clean admission (empty report) must behave identically to
            // constructing the query directly.
            if !report.is_degraded() {
                let direct = PrqQuery::new(center, sigma, delta, theta);
                prop_assert!(direct.is_ok(), "clean admission but direct construction fails");
            }
        }

        /// Admitted queries survive a full (tiny) pipeline run: admission's
        /// output is always executable, not merely constructible.
        #[test]
        fn admitted_queries_always_execute(
            (smaj, smin, angle) in (0.1..20.0f64, 0.1..8.0f64, -3.2..3.2f64),
            (theta, code) in (-0.5..1.5f64, 0u8..255),
        ) {
            use gprq_core::{DeterministicBudgeted, Quadrature2dEvaluator, ResilientExecutor, StrategySet};
            use gprq_rtree::{RStarParams, RTree};

            let sigma = covariance(smaj, smin, angle, &[code, code.wrapping_add(3), code.wrapping_add(3), 0]);
            let points: Vec<(Vector<2>, u32)> = (0..64)
                .map(|i| (Vector::from([(i % 8) as f64 * 12.0, (i / 8) as f64 * 12.0]), i))
                .collect();
            let tree = RTree::bulk_load(points, RStarParams::paper_default(2));

            let mut exec = ResilientExecutor::new(StrategySet::ALL);
            let mut eval = DeterministicBudgeted::new(Quadrature2dEvaluator::default());
            let outcome = exec.execute(&tree, Vector::from([40.0, 40.0]), sigma, 15.0, theta, &mut eval);
            if let Ok(outcome) = outcome {
                // Status partition is sound even for repaired queries.
                prop_assert_eq!(outcome.stats.answers, outcome.answers.len());
                prop_assert_eq!(outcome.stats.uncertain, outcome.uncertain.len());
            }
        }
    }
}
