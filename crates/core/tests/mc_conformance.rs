//! Statistical conformance suite (ISSUE 4, satellite 1).
//!
//! For an **isotropic** query Gaussian `N(q, σ²I₂)` the qualification
//! probability has a closed form: standardizing by σ reduces
//! `Pr(‖x − o‖ ≤ δ)` to the noncentral-χ² ball probability
//! `F₂(‖o − q‖/σ, δ/σ)` (paper Eq. 21 — the Rayleigh/noncentral-χ²
//! CDF in d = 2). That closed form is the oracle here, twice over:
//!
//! 1. the seeded Monte-Carlo estimator must land within a
//!    Wilson-style binomial tolerance of it across a (σ, dist, δ) grid;
//! 2. every strategy set's answer set must *exactly* match the naive
//!    full-scan oracle across a (σ, δ, θ) grid when both use the same
//!    deterministic evaluator — filtering may never change an answer.
//!
//! Everything is seeded (`SEED` below); a failure is reproducible, not
//! a flake.

use gprq_core::{
    execute_naive, MonteCarloEvaluator, ProbabilityEvaluator, PrqExecutor, PrqQuery,
    Quadrature2dEvaluator, StrategySet,
};
use gprq_gaussian::isotropic_qualification_probability;
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::{RStarParams, RTree};

/// Documented base seed for every stochastic draw in this suite.
const SEED: u64 = 0x5EED_C0DE;

/// Monte-Carlo samples per grid cell.
const SAMPLES: usize = 20_000;

const CENTER: [f64; 2] = [500.0, 500.0];

fn query(sigma: f64, delta: f64, theta: f64) -> PrqQuery<2> {
    PrqQuery::new(
        Vector::from(CENTER),
        Matrix::identity().scale(sigma * sigma),
        delta,
        theta,
    )
    .unwrap()
}

/// Deterministic scatter of `n` ids around the query center, dense where
/// the probability gradient is steep.
fn scatter(n: usize) -> Vec<(Vector<2>, usize)> {
    (0..n)
        .map(|i| {
            let angle = i as f64 * 0.61;
            let radius = (i % 79) as f64 * 0.9;
            (
                Vector::from([
                    CENTER[0] + radius * angle.cos(),
                    CENTER[1] + radius * angle.sin(),
                ]),
                i,
            )
        })
        .collect()
}

#[test]
fn monte_carlo_matches_closed_form_within_wilson_tolerance() {
    // Two-sided z ≈ 5 puts a per-cell false-alarm rate near 3·10⁻⁷
    // under the binomial model; the additive slack absorbs the
    // importance-sampling estimator's deviation from pure binomial
    // variance. With a fixed seed the test is deterministic either way.
    const Z: f64 = 5.0;
    const SLACK: f64 = 2e-3;

    let mut cell = 0u64;
    for &sigma in &[2.0, 5.0] {
        for &dist in &[0.0, 5.0, 10.0, 20.0] {
            for &delta in &[5.0, 15.0] {
                let truth = isotropic_qualification_probability(2, sigma, dist, delta);
                assert!((0.0..=1.0).contains(&truth));

                let q = query(sigma, delta, 0.05);
                let object = Vector::from([CENTER[0] + dist, CENTER[1]]);
                let mut mc = MonteCarloEvaluator::new(SAMPLES, SEED.wrapping_add(cell));
                let estimate = mc.probability(q.gaussian(), &object, delta);

                let tol = Z * (truth * (1.0 - truth) / SAMPLES as f64).sqrt() + SLACK;
                assert!(
                    (estimate - truth).abs() <= tol,
                    "σ = {sigma}, dist = {dist}, δ = {delta}: \
                     MC {estimate} vs closed form {truth} (tol {tol})"
                );
                cell += 1;
            }
        }
    }
}

#[test]
fn closed_form_is_monotone_in_delta_and_distance() {
    for &sigma in &[2.0, 5.0] {
        for &dist in &[0.0, 5.0, 10.0, 20.0] {
            let mut prev = 0.0;
            for step in 1..=30 {
                let delta = step as f64;
                let p = isotropic_qualification_probability(2, sigma, dist, delta);
                assert!(p >= prev, "σ = {sigma}, dist = {dist}, δ = {delta}");
                prev = p;
            }
        }
        for &delta in &[5.0, 15.0] {
            let mut prev = 1.0;
            for step in 0..=30 {
                let dist = step as f64;
                let p = isotropic_qualification_probability(2, sigma, dist, delta);
                assert!(p <= prev, "σ = {sigma}, dist = {dist}, δ = {delta}");
                prev = p;
            }
        }
    }
}

fn sorted_ids(answers: &[(&Vector<2>, &usize)]) -> Vec<usize> {
    let mut ids: Vec<usize> = answers.iter().map(|(_, id)| **id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn every_strategy_set_matches_the_naive_oracle_exactly() {
    let tree = RTree::bulk_load(scatter(400), RStarParams::paper_default(2));
    let strategy_sets = [
        StrategySet::RR,
        StrategySet::RR_OR,
        StrategySet::BF,
        StrategySet::RR_BF,
        StrategySet::BF_OR,
        StrategySet::ALL,
    ];
    for &sigma in &[2.0, 5.0] {
        for &delta in &[5.0, 15.0] {
            for &theta in &[0.05, 0.2, 0.4] {
                let q = query(sigma, delta, theta);
                // Deterministic quadrature (exact to ~1e-10) on both
                // sides: any answer-set difference is a filtering bug,
                // not Monte-Carlo noise.
                let mut oracle = Quadrature2dEvaluator::default();
                let truth = sorted_ids(&execute_naive(&tree, &q, &mut oracle).answers);
                for &set in &strategy_sets {
                    let mut eval = Quadrature2dEvaluator::default();
                    let outcome = PrqExecutor::new(set).execute(&tree, &q, &mut eval).unwrap();
                    assert_eq!(
                        sorted_ids(&outcome.answers),
                        truth,
                        "σ = {sigma}, δ = {delta}, θ = {theta}, set = {}",
                        set.name()
                    );
                }
            }
        }
    }
}

#[test]
fn bf_only_handles_theta_at_or_above_one_half() {
    // The θ-region (RR/OR) is undefined for θ ≥ 1/2; BF alone must
    // still agree with the oracle there.
    let tree = RTree::bulk_load(scatter(400), RStarParams::paper_default(2));
    for &theta in &[0.5, 0.6, 0.75] {
        let q = query(2.0, 15.0, theta);
        let mut oracle = Quadrature2dEvaluator::default();
        let truth = sorted_ids(&execute_naive(&tree, &q, &mut oracle).answers);
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::BF)
            .execute(&tree, &q, &mut eval)
            .unwrap();
        assert_eq!(sorted_ids(&outcome.answers), truth, "θ = {theta}");
        assert!(!truth.is_empty(), "θ = {theta} should keep near objects");
    }
}
