//! The paper's three filtering strategies and their composition.
//!
//! * [`rr`] — Rectilinear-Region-Based (paper §IV-A, Algorithm 1),
//! * [`or`] — Oblique-Region-Based (paper §IV-B),
//! * [`bf`] — Bounding-Function-Based (paper §IV-C, Algorithm 2).
//!
//! [`StrategySet`] selects which of them a query execution composes; the
//! paper evaluates the six combinations RR, BF, RR+BF, RR+OR, BF+OR, ALL
//! (§V-A).

pub mod bf;
pub mod or;
pub mod rr;

use crate::error::PrqError;

/// Which strategies a query execution composes.
///
/// OR cannot stand alone: it is a Phase-2 filter with no useful Phase-1
/// region of its own (its bounding box "is generally large", §IV-B), so a
/// valid set always contains RR or BF. Use the provided constants for the
/// paper's six combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategySet {
    /// Rectilinear-region filtering (and, when set, the Phase-1 region).
    pub rr: bool,
    /// Oblique-region Phase-2 filtering.
    pub or: bool,
    /// Bounding-function accept/reject radii (Phase-1 region when RR is
    /// absent).
    pub bf: bool,
}

impl StrategySet {
    /// Rectilinear-region only (paper Algorithm 1).
    pub const RR: Self = StrategySet {
        rr: true,
        or: false,
        bf: false,
    };
    /// Bounding-function only (paper Algorithm 2).
    pub const BF: Self = StrategySet {
        rr: false,
        or: false,
        bf: true,
    };
    /// RR + BF.
    pub const RR_BF: Self = StrategySet {
        rr: true,
        or: false,
        bf: true,
    };
    /// RR + OR.
    pub const RR_OR: Self = StrategySet {
        rr: true,
        or: true,
        bf: false,
    };
    /// BF + OR.
    pub const BF_OR: Self = StrategySet {
        rr: false,
        or: true,
        bf: true,
    };
    /// All three (the paper's best performer in low dimensions).
    pub const ALL: Self = StrategySet {
        rr: true,
        or: true,
        bf: true,
    };

    /// The six combinations evaluated in the paper's experiments, in the
    /// column order of Tables I–III.
    pub const PAPER_COMBINATIONS: [(&'static str, Self); 6] = [
        ("RR", Self::RR),
        ("BF", Self::BF),
        ("RR+BF", Self::RR_BF),
        ("RR+OR", Self::RR_OR),
        ("BF+OR", Self::BF_OR),
        ("ALL", Self::ALL),
    ];

    /// Validates that the set can produce a Phase-1 search region.
    ///
    /// # Errors
    ///
    /// Returns [`PrqError::NoPrimaryStrategy`] when neither RR nor BF is
    /// enabled — OR alone cannot produce a search region.
    pub fn validate(&self) -> Result<(), PrqError> {
        if self.rr || self.bf {
            Ok(())
        } else {
            Err(PrqError::NoPrimaryStrategy)
        }
    }

    /// Short display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match (self.rr, self.or, self.bf) {
            (true, false, false) => "RR",
            (false, false, true) => "BF",
            (true, false, true) => "RR+BF",
            (true, true, false) => "RR+OR",
            (false, true, true) => "BF+OR",
            (true, true, true) => "ALL",
            (false, true, false) => "OR",
            (false, false, false) => "(none)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_combinations_are_valid_and_named() {
        for (name, set) in StrategySet::PAPER_COMBINATIONS {
            assert!(set.validate().is_ok(), "{name}");
            assert_eq!(set.name(), name);
        }
    }

    #[test]
    fn or_alone_is_rejected() {
        let or_only = StrategySet {
            rr: false,
            or: true,
            bf: false,
        };
        assert!(matches!(
            or_only.validate(),
            Err(PrqError::NoPrimaryStrategy)
        ));
        assert_eq!(or_only.name(), "OR");
    }

    #[test]
    fn empty_set_is_rejected() {
        let none = StrategySet {
            rr: false,
            or: false,
            bf: false,
        };
        assert!(none.validate().is_err());
        assert_eq!(none.name(), "(none)");
    }
}
