//! Rectilinear-Region-Based strategy (paper §IV-A, Algorithm 1).
//!
//! Phase 1 searches the R-tree with the Minkowski expansion of the
//! θ-region bounding box: a box with per-axis half-widths `σᵢ·r_θ + δ`
//! (Fig. 4). Phase 2 prunes the *fringe* — candidates inside that box but
//! farther than `δ` from the θ-region box itself (the four black corner
//! regions of Fig. 4 in 2-D).
//!
//! The paper applies the fringe filter only for `d = 2` ("computation of
//! fringe part is not easy for d ≥ 3"). Describing the fringe *region*
//! is indeed awkward in high dimension, but testing membership is not:
//! a candidate is outside the fringe iff its distance to the box is at
//! most `δ`, a standard point-to-box computation in any dimension. We
//! default to the paper-faithful behaviour and expose the generalized
//! filter as [`FringeMode::AllDimensions`] (measured in the `ablation`
//! bench).

use crate::query::PrqQuery;
use crate::theta_region::ThetaRegion;
use gprq_linalg::Vector;
use gprq_rtree::Rect;

/// When the fringe (rounded-corner) filter applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FringeMode {
    /// Only in 2-D, exactly as the paper evaluates it.
    #[default]
    PaperFaithful,
    /// In every dimension (our generalization; strictly more pruning,
    /// identical answers).
    AllDimensions,
    /// Never (Phase 1 box only).
    Disabled,
}

/// The RR filter for one query.
///
/// Borrows the θ-region (like [`crate::strategy::or::OrFilter`] does)
/// so building the per-query filter set never copies the region.
#[derive(Debug, Clone)]
pub struct RrFilter<'r, const D: usize> {
    region: &'r ThetaRegion<D>,
    delta: f64,
    mode: FringeMode,
}

impl<'r, const D: usize> RrFilter<'r, D> {
    /// Builds the filter from a query and its θ-region (which may come
    /// from the exact inverse or a conservative U-catalog lookup).
    pub fn new(query: &PrqQuery<D>, region: &'r ThetaRegion<D>, mode: FringeMode) -> Self {
        RrFilter {
            region,
            delta: query.delta(),
            mode,
        }
    }

    /// The Phase-1 search region: the θ-region bounding box expanded by
    /// `δ` on every side (the bounding box of the Minkowski sum, Fig. 4).
    pub fn search_rect(&self) -> Rect<D> {
        let w = self.region.box_half_widths();
        let half = Vector::from_fn(|i| w[i] + self.delta);
        Rect::centered(&self.region.bounding_box().center(), &half)
    }

    /// `true` if the fringe filter is active for this query's dimension.
    pub fn fringe_active(&self) -> bool {
        match self.mode {
            FringeMode::PaperFaithful => D == 2,
            FringeMode::AllDimensions => true,
            FringeMode::Disabled => false,
        }
    }

    /// Phase-2 predicate: keep a candidate iff it lies within `δ` of the
    /// θ-region bounding box (i.e. inside the rounded Minkowski sum, not
    /// in a corner fringe). Always `true` when the fringe is inactive.
    // HOT-PATH: RR fringe predicate (Phase 2 inner loop)
    pub fn passes(&self, p: &Vector<D>) -> bool {
        if !self.fringe_active() {
            return true;
        }
        self.region.distance_to_box(p) <= self.delta
    }

    /// The underlying θ-region.
    pub fn region(&self) -> &'r ThetaRegion<D> {
        self.region
    }

    /// The per-axis half-widths of the search rectangle — the quantities
    /// annotated in the paper's Figs. 13–16 (e.g. 46.9 × 40.4 at γ = 10).
    pub fn search_half_widths(&self) -> Vector<D> {
        let w = self.region.box_half_widths();
        Vector::from_fn(|i| w[i] + self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn paper_query(gamma: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    fn setup(gamma: f64) -> (PrqQuery<2>, ThetaRegion<2>) {
        let q = paper_query(gamma);
        let region = ThetaRegion::for_query(&q).unwrap();
        (q, region)
    }

    #[test]
    fn theta_box_half_widths_match_fig13() {
        // Paper Fig. 13 (γ = 10, δ = 25, θ = 0.01) annotates the θ-box
        // half-widths 23.4 (x) and 15.3-ish (y): σₓ·r_θ = √70·2.797,
        // σ_y·r_θ = √30·2.797.
        let (q, region) = setup(10.0);
        let f = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
        let w = f.region().box_half_widths();
        assert!((w[0] - 23.4).abs() < 0.1, "x θ-box half-width {w}");
        assert!((w[1] - 15.3).abs() < 0.1, "y θ-box half-width {w}");
        // The search rect adds δ = 25 per side.
        let hw = f.search_half_widths();
        assert!((hw[0] - 48.4).abs() < 0.1, "x search half-width {hw}");
        assert!((hw[1] - 40.3).abs() < 0.1, "y search half-width {hw}");
    }

    #[test]
    fn theta_box_half_widths_match_fig15_and_16() {
        // γ = 1 (Fig. 15 annotates 7.4 and 4.8): √7·2.797, √3·2.797.
        let (_, region) = setup(1.0);
        let w = *region.box_half_widths();
        assert!((w[0] - 7.4).abs() < 0.1, "γ=1 {w}");
        assert!((w[1] - 4.84).abs() < 0.1, "γ=1 {w}");
        // γ = 100 (Fig. 16 annotates 74.1 and 48.5): √700·2.797, √300·2.797.
        let (_, region) = setup(100.0);
        let w = *region.box_half_widths();
        assert!((w[0] - 74.0).abs() < 0.2, "γ=100 {w}");
        assert!((w[1] - 48.4).abs() < 0.2, "γ=100 {w}");
    }

    #[test]
    fn fringe_prunes_corners_only() {
        let (q, region) = setup(10.0);
        let f = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
        assert!(f.fringe_active());
        let rect = f.search_rect();
        let center = Vector::from([500.0, 500.0]);
        // Center passes.
        assert!(f.passes(&center));
        // The extreme corner of the search rect is in the fringe: its
        // distance to the θ-box is δ·√2 > δ.
        let corner = rect.hi;
        assert!(!f.passes(&corner));
        // Mid-edge points are exactly at distance δ → pass.
        let mid_right = Vector::from([rect.hi[0], 500.0]);
        assert!(f.passes(&mid_right));
    }

    #[test]
    fn disabled_fringe_passes_everything() {
        let (q, region) = setup(10.0);
        let f = RrFilter::new(&q, &region, FringeMode::Disabled);
        assert!(!f.fringe_active());
        assert!(f.passes(&Vector::from([1e9, 1e9])));
    }

    #[test]
    fn paper_faithful_is_inactive_in_3d() {
        let q = PrqQuery::<3>::new(Vector::ZERO, Matrix::identity(), 1.0, 0.1).unwrap();
        let region = ThetaRegion::for_query(&q).unwrap();
        let f = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
        assert!(!f.fringe_active());
        let f = RrFilter::new(&q, &region, FringeMode::AllDimensions);
        assert!(f.fringe_active());
        // 3-D corner of the search rect is pruned by the generalized mode.
        let corner = f.search_rect().hi;
        assert!(!f.passes(&corner));
    }

    #[test]
    fn search_rect_contains_minkowski_sum() {
        // Every point within δ of the θ-box must be inside the search
        // rect (the rect is the Minkowski sum's bounding box).
        let (q, region) = setup(10.0);
        let f = RrFilter::new(&q, &region, FringeMode::PaperFaithful);
        let rect = f.search_rect();
        let bbox = f.region().bounding_box();
        for k in 0..32 {
            let angle = k as f64 / 32.0 * std::f64::consts::TAU;
            // Points on the boundary of the Minkowski sum: box boundary +
            // δ in the outward direction.
            let boundary = Vector::from([
                bbox.hi[0] + 25.0 * angle.cos().max(0.0),
                bbox.hi[1] + 25.0 * angle.sin().max(0.0),
            ]);
            if f.region().distance_to_box(&boundary) <= 25.0 {
                assert!(rect.contains_point(&boundary));
            }
        }
    }
}
