//! Oblique-Region-Based strategy (paper §IV-B).
//!
//! The θ-region ellipsoid is tighter than its axis-aligned box; an
//! *oblique* box aligned with the ellipsoid's own axes, expanded by `δ`,
//! is correspondingly tighter than the RR search region (Fig. 5). Because
//! an oblique box cannot be handed to the R-tree, the strategy is a pure
//! Phase-2 filter: each candidate is rotated into the eigenbasis of `Σ⁻¹`
//! (Property 3, `x = E·y`) where the box becomes axis-aligned with
//! per-axis half-widths `r_θ/√λᵢ + δ` (Eq. 20, Fig. 7).

use crate::query::PrqQuery;
use crate::theta_region::ThetaRegion;
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::Rect;

/// The OR filter for one query.
#[derive(Debug, Clone)]
pub struct OrFilter<const D: usize> {
    center: Vector<D>,
    /// Eigenvector matrix `E` of `Σ` (shared with `Σ⁻¹`).
    eigenvectors: Matrix<D>,
    /// Per-axis half-widths in the eigenbasis: `r_θ·√λᵢ(Σ) + δ`
    /// (equivalently `r_θ/√λᵢ(Σ⁻¹) + δ`, paper Eq. 20).
    half_widths: Vector<D>,
}

impl<const D: usize> OrFilter<D> {
    /// Builds the filter from a query and its θ-region.
    pub fn new(query: &PrqQuery<D>, region: &ThetaRegion<D>) -> Self {
        let g = query.gaussian();
        let eig = g.eigen();
        let r = region.r_theta();
        let delta = query.delta();
        OrFilter {
            center: *g.mean(),
            eigenvectors: eig.eigenvectors,
            half_widths: Vector::from_fn(|i| r * eig.eigenvalues[i].sqrt() + delta),
        }
    }

    /// Phase-2 predicate: `true` iff the candidate lies inside the
    /// oblique box.
    // HOT-PATH: OR oblique-box predicate (Phase 2 inner loop)
    pub fn passes(&self, p: &Vector<D>) -> bool {
        let diff = *p - self.center;
        // y = Eᵗ·(p − q); test |yᵢ| ≤ half_widths[i] axis by axis with
        // early exit (the common case is a reject on the first narrow
        // axis).
        for i in 0..D {
            let mut y_i = 0.0;
            for j in 0..D {
                y_i += self.eigenvectors[(j, i)] * diff[j];
            }
            if y_i.abs() > self.half_widths[i] {
                return false;
            }
        }
        true
    }

    /// Half-widths of the oblique box in the eigenbasis.
    pub fn half_widths(&self) -> &Vector<D> {
        &self.half_widths
    }

    /// The axis-aligned bounding box of the oblique box in the *original*
    /// frame: `halfᵢ = Σⱼ |Eᵢⱼ|·wⱼ`.
    ///
    /// The paper notes this box "is generally large", which is why OR is
    /// a filter rather than a Phase-1 region; exposed for the region-area
    /// experiment (Figs. 13–16).
    pub fn bounding_rect(&self) -> Rect<D> {
        let half = Vector::from_fn(|i| {
            let mut acc = 0.0;
            for j in 0..D {
                acc += self.eigenvectors[(i, j)].abs() * self.half_widths[j];
            }
            acc
        });
        Rect::centered(&self.center, &half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn paper_query(gamma: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    fn or(gamma: f64) -> (PrqQuery<2>, OrFilter<2>) {
        let q = paper_query(gamma);
        let region = ThetaRegion::for_query(&q).unwrap();
        let f = OrFilter::new(&q, &region);
        (q, f)
    }

    #[test]
    fn half_widths_follow_eq20() {
        // γ = 10: Σ eigenvalues are 90 and 10 → half-widths
        // r_θ·√90 + 25 and r_θ·√10 + 25.
        let (_, f) = or(10.0);
        let r = 2.7971;
        let w = f.half_widths();
        assert!((w[0] - (r * 90.0f64.sqrt() + 25.0)).abs() < 1e-2, "{w}");
        assert!((w[1] - (r * 10.0f64.sqrt() + 25.0)).abs() < 1e-2, "{w}");
    }

    #[test]
    fn center_passes_far_point_fails() {
        let (q, f) = or(10.0);
        assert!(f.passes(q.center()));
        assert!(!f.passes(&(*q.center() + Vector::from([500.0, 0.0]))));
    }

    #[test]
    fn oblique_box_tighter_than_rr_along_diagonal() {
        // The paper's Σ is a 30°-tilted 3:1 ellipse. A point placed along
        // the *minor* axis direction beyond the oblique box but inside
        // the RR search rect demonstrates OR's extra pruning power.
        use crate::strategy::rr::{FringeMode, RrFilter};
        let (q, f) = or(100.0);
        let region = ThetaRegion::for_query(&q).unwrap();
        let rr = RrFilter::new(&q, &region, FringeMode::Disabled);
        let rect = rr.search_rect();
        let eig = q.gaussian().eigen();
        let minor = eig.eigenvector(1);
        // Walk along the minor axis: find a point in the RR rect but
        // outside the oblique box.
        let mut found = false;
        let mut t = 0.0;
        while t < 500.0 {
            let p = *q.center() + minor * t;
            if rect.contains_point(&p) && !f.passes(&p) {
                found = true;
                break;
            }
            t += 1.0;
        }
        assert!(found, "OR should prune minor-axis points RR keeps");
    }

    #[test]
    fn filter_never_prunes_near_ellipsoid() {
        // Safety: every point within δ of the θ-region ellipsoid must
        // pass (the oblique box bounds the Minkowski sum of the
        // ellipsoid with the δ-ball).
        let (q, f) = or(10.0);
        let region = ThetaRegion::for_query(&q).unwrap();
        let g = q.gaussian();
        let eig = g.eigen();
        let r = region.r_theta();
        for k in 0..128 {
            let angle = k as f64 / 128.0 * std::f64::consts::TAU;
            // Boundary point of the ellipsoid, then push δ outward along
            // the radial direction (stays within the Minkowski sum).
            let dir = eig.eigenvector(0) * (eig.eigenvalues[0].sqrt() * angle.cos())
                + eig.eigenvector(1) * (eig.eigenvalues[1].sqrt() * angle.sin());
            let boundary = *g.mean() + dir * r;
            let outward = (boundary - *g.mean()).normalized().unwrap();
            let p = boundary + outward * (q.delta() * 0.999);
            assert!(f.passes(&p), "pruned a Minkowski-sum point at {angle}");
        }
    }

    #[test]
    fn bounding_rect_contains_oblique_box() {
        let (q, f) = or(10.0);
        let rect = f.bounding_rect();
        // Corners of the oblique box in the eigenbasis map inside rect.
        // Shrink infinitesimally: the rotation round-trip can push an
        // exact corner past the boundary by one ulp.
        let w = *f.half_widths();
        let shrink = 1.0 - 1e-9;
        for signs in [[1.0, 1.0], [1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]] {
            let y = Vector::from([signs[0] * w[0] * shrink, signs[1] * w[1] * shrink]);
            let p = *q.center() + q.gaussian().eigen().from_eigenbasis(&y);
            assert!(rect.contains_point(&p));
            assert!(f.passes(&p), "corner itself is in the box");
        }
        // The bounding rect of the oblique box is generally larger than
        // the RR search rect along some axis (the paper's reason to use
        // OR only as a filter).
        let diag = rect.hi - rect.lo;
        assert!(diag[0] > 0.0 && diag[1] > 0.0);
    }

    #[test]
    fn isotropic_covariance_makes_or_equal_rr_box() {
        // With Σ = s²·I the eigenbasis is arbitrary but the box is a
        // square of half-width r_θ·s + δ in any orientation.
        let q = PrqQuery::<2>::new(Vector::ZERO, Matrix::identity().scale(4.0), 2.0, 0.05).unwrap();
        let region = ThetaRegion::for_query(&q).unwrap();
        let f = OrFilter::new(&q, &region);
        let w = f.half_widths();
        let expect = region.r_theta() * 2.0 + 2.0;
        assert!((w[0] - expect).abs() < 1e-9);
        assert!((w[1] - expect).abs() < 1e-9);
    }
}
