//! Bounding-Function-Based strategy (paper §IV-C, Algorithm 2).
//!
//! The density `p_q` is sandwiched between two spherically symmetric
//! functions built from the extreme eigenvalues of `Σ⁻¹` (Definition 6,
//! Property 4):
//!
//! ```text
//! p⊥(x) ≤ p_q(x) ≤ p∥(x),   p∥ from λ∥ = min λᵢ(Σ⁻¹),  p⊥ from λ⊥ = max.
//! ```
//!
//! Integrating the bounds over the query ball yields two radii
//! (Property 5, Fig. 11):
//!
//! * `α∥` — **reject** radius: an object farther than `α∥` from `q`
//!   cannot reach probability `θ` even under the upper bound;
//! * `α⊥` — **accept** radius: an object closer than `α⊥` reaches `θ`
//!   even under the lower bound, so it joins the answer set *without
//!   numerical integration*.
//!
//! Each radius reduces (Eqs. 28–31) to the off-center ball probability of
//! the standard Gaussian, which `gprq_gaussian::noncentral` computes
//! exactly; the table-based variant uses [`crate::ucatalog::BfCatalog`]
//! with the conservative rules of Eqs. 32–33.
//!
//! In medium dimensions the accept radius often does not exist: when
//! `(λ⊥)^{d/2}|Σ|^{1/2}·θ ≥ 1` (paper Eq. 37) the lower bound cannot
//! reach `θ` anywhere — the "no internal hole" regime of Fig. 9 that the
//! 9-D experiment (§VI-B) discusses. Symmetrically, when even a centered
//! ball cannot reach `θ` under the *upper* bound, **no object can
//! qualify** and the query answer is provably empty.

use crate::error::PrqError;
use crate::query::PrqQuery;
use crate::ucatalog::{BfCatalog, CatalogLookup};
use gprq_gaussian::noncentral::inverse_center_distance;
use gprq_linalg::Vector;
use gprq_rtree::Rect;

/// The BF reject bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectBound {
    /// Objects farther than this from `q` are pruned.
    Radius(f64),
    /// Even the upper bounding function cannot reach `θ` anywhere: the
    /// query answer is empty, no search needed.
    RejectAll,
}

/// The BF bounds for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfBounds<const D: usize> {
    center: Vector<D>,
    /// `α∥` (paper Eq. 28).
    pub reject: RejectBound,
    /// `α⊥` (paper Eq. 31); `None` in the no-hole regime of Eq. 37.
    pub accept: Option<f64>,
}

impl<const D: usize> BfBounds<D> {
    /// Computes the bounds exactly (the paper's own experiments do this:
    /// §V-A "we computed accurate β∥ and β⊥ values for BF … instead of
    /// approximate values").
    pub fn exact(query: &PrqQuery<D>) -> Self {
        let g = query.gaussian();
        let d = D as f64;
        let delta = query.delta();
        let ln_theta = query.theta().ln();
        let ln_det = g.log_det_covariance();

        // Upper bound p∥ (λ∥ = min eigenvalue of Σ⁻¹): reject radius.
        let lambda_par = g.lambda_parallel();
        let rho_par = lambda_par.sqrt() * delta;
        // (λ∥)^{d/2}|Σ|^{1/2}·θ in log space (Eq. 29) — always ≤ θ < 1.
        let scaled_par = (0.5 * d * lambda_par.ln() + 0.5 * ln_det + ln_theta).exp();
        let reject = match inverse_center_distance(D, rho_par, scaled_par.min(1.0 - 1e-15)) {
            Some(beta) => RejectBound::Radius(beta / lambda_par.sqrt()),
            None => RejectBound::RejectAll,
        };

        // Lower bound p⊥ (λ⊥ = max eigenvalue of Σ⁻¹): accept radius.
        let lambda_perp = g.lambda_perp();
        let rho_perp = lambda_perp.sqrt() * delta;
        let ln_scaled_perp = 0.5 * d * lambda_perp.ln() + 0.5 * ln_det + ln_theta;
        let accept = if ln_scaled_perp >= 0.0 {
            // (λ⊥)^{d/2}|Σ|^{1/2}·θ ≥ 1: no hole (paper Eq. 37).
            None
        } else {
            inverse_center_distance(D, rho_perp, ln_scaled_perp.exp())
                .map(|beta| beta / lambda_perp.sqrt())
        };

        BfBounds {
            center: *query.center(),
            reject,
            accept,
        }
    }

    /// Computes the bounds through a [`BfCatalog`] with the paper's
    /// conservative lookup rules (Eqs. 32–33), falling back to the exact
    /// inverse when the query lands outside the tabulated grid.
    ///
    /// # Errors
    ///
    /// Returns [`PrqError::CatalogDimensionMismatch`] when the catalog
    /// was built for a dimension other than `D` — its tabulated radii
    /// would be wrong, not conservative.
    pub fn from_catalog(query: &PrqQuery<D>, catalog: &BfCatalog) -> Result<Self, PrqError> {
        if catalog.dim() != D {
            return Err(PrqError::CatalogDimensionMismatch {
                catalog: catalog.dim(),
                query: D,
            });
        }
        let g = query.gaussian();
        let d = D as f64;
        let delta = query.delta();
        let ln_theta = query.theta().ln();
        let ln_det = g.log_det_covariance();

        let lambda_par = g.lambda_parallel();
        let rho_par = lambda_par.sqrt() * delta;
        let scaled_par = (0.5 * d * lambda_par.ln() + 0.5 * ln_det + ln_theta).exp();
        let reject = match catalog.lookup_reject(rho_par, scaled_par.min(1.0 - 1e-15)) {
            CatalogLookup::Alpha(beta) => RejectBound::Radius(beta / lambda_par.sqrt()),
            CatalogLookup::NoSolution => RejectBound::RejectAll,
            // Exact fallback is computed only on a grid miss — the point
            // of the catalog is to avoid the noncentral-χ² inversions.
            CatalogLookup::OutOfGrid => {
                match inverse_center_distance(D, rho_par, scaled_par.min(1.0 - 1e-15)) {
                    Some(beta) => RejectBound::Radius(beta / lambda_par.sqrt()),
                    None => RejectBound::RejectAll,
                }
            }
        };

        let lambda_perp = g.lambda_perp();
        let rho_perp = lambda_perp.sqrt() * delta;
        let ln_scaled_perp = 0.5 * d * lambda_perp.ln() + 0.5 * ln_det + ln_theta;
        let accept = if ln_scaled_perp >= 0.0 {
            None
        } else {
            match catalog.lookup_accept(rho_perp, ln_scaled_perp.exp()) {
                CatalogLookup::Alpha(beta) => Some(beta / lambda_perp.sqrt()),
                CatalogLookup::NoSolution => None,
                CatalogLookup::OutOfGrid => {
                    inverse_center_distance(D, rho_perp, ln_scaled_perp.exp())
                        .map(|beta| beta / lambda_perp.sqrt())
                }
            }
        };

        Ok(BfBounds {
            center: *query.center(),
            reject,
            accept,
        })
    }

    /// The Phase-1 search rectangle of Algorithm 2 (line 6): the box
    /// `[qᵢ − α∥, qᵢ + α∥]` per axis. `None` when the answer is provably
    /// empty.
    pub fn search_rect(&self) -> Option<Rect<D>> {
        match self.reject {
            RejectBound::Radius(alpha) => Some(Rect::centered(&self.center, &Vector::splat(alpha))),
            RejectBound::RejectAll => None,
        }
    }

    /// Phase-2 classification of a candidate by its distance to `q`.
    // HOT-PATH: BF annulus classification (Phase 2 inner loop)
    pub fn classify(&self, p: &Vector<D>) -> BfClass {
        let dist = p.distance(&self.center);
        match self.reject {
            RejectBound::RejectAll => BfClass::Reject,
            RejectBound::Radius(alpha_par) => {
                if dist > alpha_par {
                    BfClass::Reject
                } else if let Some(alpha_perp) = self.accept {
                    if dist <= alpha_perp {
                        BfClass::Accept
                    } else {
                        BfClass::NeedsIntegration
                    }
                } else {
                    BfClass::NeedsIntegration
                }
            }
        }
    }
}

/// What BF decides about one candidate (paper Fig. 12: object `a` is
/// accepted outright, `b`/`c` need integration, everything outside `α∥`
/// is rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfClass {
    /// Surely qualifies (within `α⊥`) — added to the answer set with no
    /// integration.
    Accept,
    /// Surely does not qualify (beyond `α∥`).
    Reject,
    /// In the annulus: numerical integration required.
    NeedsIntegration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucatalog::BfCatalog;
    use gprq_gaussian::integrate::quadrature_probability_2d;
    use gprq_linalg::Matrix;

    fn paper_query(gamma: f64, delta: f64, theta: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, delta, theta).unwrap()
    }

    #[test]
    fn reject_radius_is_safe_and_tight() {
        // Numerically verify Fig. 11's semantics against the 2-D
        // quadrature oracle: just beyond α∥ the true probability is < θ;
        // α∥ is tight for the *bounding function*, not the true density,
        // so we only check safety plus rough scale.
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha) = b.reject else {
            panic!("expected a radius")
        };
        assert!(alpha > q.delta(), "α∥ = {alpha} should exceed δ");
        let g = q.gaussian();
        for k in 0..8 {
            let angle = k as f64 / 8.0 * std::f64::consts::TAU;
            let p = *q.center() + Vector::from([angle.cos(), angle.sin()]) * (alpha * 1.001);
            let prob = quadrature_probability_2d(g, &p, q.delta(), 48, 96);
            assert!(prob < q.theta(), "beyond α∥ at {angle}: prob {prob}");
        }
    }

    #[test]
    fn accept_radius_is_safe() {
        // Within α⊥ every object truly qualifies.
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let alpha = b.accept.expect("2-D paper setup has a hole");
        assert!(alpha > 0.0);
        let g = q.gaussian();
        for k in 0..8 {
            let angle = k as f64 / 8.0 * std::f64::consts::TAU;
            let p = *q.center() + Vector::from([angle.cos(), angle.sin()]) * (alpha * 0.999);
            let prob = quadrature_probability_2d(g, &p, q.delta(), 48, 96);
            assert!(prob >= q.theta(), "inside α⊥ at {angle}: prob {prob} < θ");
        }
    }

    #[test]
    fn annulus_ordering() {
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha_par) = b.reject else {
            panic!()
        };
        let alpha_perp = b.accept.unwrap();
        assert!(
            alpha_perp < alpha_par,
            "accept radius {alpha_perp} must sit inside reject radius {alpha_par}"
        );
    }

    #[test]
    fn classification_matches_radii() {
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha_par) = b.reject else {
            panic!()
        };
        let alpha_perp = b.accept.unwrap();
        let dir = Vector::from([1.0, 0.0]);
        assert_eq!(b.classify(q.center()), BfClass::Accept);
        assert_eq!(
            b.classify(&(*q.center() + dir * (alpha_perp * 0.9))),
            BfClass::Accept
        );
        assert_eq!(
            b.classify(&(*q.center() + dir * (0.5 * (alpha_perp + alpha_par)))),
            BfClass::NeedsIntegration
        );
        assert_eq!(
            b.classify(&(*q.center() + dir * (alpha_par * 1.01))),
            BfClass::Reject
        );
    }

    #[test]
    fn spherical_covariance_needs_no_integration_annulus_shrinks() {
        // Paper §VI-B: "if λ∥ = λ⊥ … BF is the best method since it can
        // directly select answer objects and does not require numerical
        // integration". With Σ = s²I the annulus [α⊥, α∥] collapses.
        let q = PrqQuery::<2>::new(Vector::ZERO, Matrix::identity().scale(9.0), 5.0, 0.05).unwrap();
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha_par) = b.reject else {
            panic!()
        };
        let alpha_perp = b.accept.unwrap();
        assert!(
            (alpha_par - alpha_perp).abs() < 1e-6,
            "annulus width {} should collapse for isotropic Σ",
            alpha_par - alpha_perp
        );
    }

    #[test]
    fn no_hole_in_narrow_high_dim() {
        // A narrow 9-D Gaussian with a strict threshold: Eq. 37 regime.
        let mut cov = Matrix::<9>::identity().scale(0.01);
        cov[(0, 0)] = 25.0; // one long axis → λ⊥/λ∥ = 2500
        let q = PrqQuery::<9>::new(Vector::ZERO, cov, 0.7, 0.4).unwrap();
        let b = BfBounds::exact(&q);
        assert_eq!(b.accept, None, "no internal hole expected");
    }

    #[test]
    fn reject_all_when_theta_unreachable() {
        // Tiny δ, huge θ: even at the center the ball cannot hold 90%.
        let q = paper_query(10.0, 0.5, 0.9);
        let b = BfBounds::exact(&q);
        assert_eq!(b.reject, RejectBound::RejectAll);
        assert!(b.search_rect().is_none());
        assert_eq!(b.classify(q.center()), BfClass::Reject);
    }

    #[test]
    fn search_rect_is_square_of_alpha() {
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha) = b.reject else {
            panic!()
        };
        let rect = b.search_rect().unwrap();
        assert!((rect.extent(0) - 2.0 * alpha).abs() < 1e-9);
        assert!((rect.extent(1) - 2.0 * alpha).abs() < 1e-9);
    }

    #[test]
    fn catalog_bounds_are_conservative() {
        let q = paper_query(10.0, 25.0, 0.01);
        let exact = BfBounds::exact(&q);
        let catalog = BfCatalog::new(2);
        let approx = BfBounds::from_catalog(&q, &catalog).unwrap();
        match (exact.reject, approx.reject) {
            (RejectBound::Radius(e), RejectBound::Radius(a)) => {
                assert!(a >= e - 1e-9, "catalog reject {a} tighter than exact {e}");
                assert!(a <= e * 1.6, "catalog reject {a} uselessly loose vs {e}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        if let (Some(e), Some(a)) = (exact.accept, approx.accept) {
            assert!(a <= e + 1e-9, "catalog accept {a} looser than exact {e}");
        }
    }

    #[test]
    fn catalog_dimension_mismatch_is_rejected() {
        let q = paper_query(10.0, 25.0, 0.01);
        let catalog = BfCatalog::new(3);
        assert!(matches!(
            BfBounds::from_catalog(&q, &catalog),
            Err(crate::error::PrqError::CatalogDimensionMismatch {
                catalog: 3,
                query: 2
            })
        ));
    }

    #[test]
    fn fig13_alpha_par_scale() {
        // Fig. 13 draws the BF disc for γ = 10 with radius ≈ 46.9; our
        // exact α∥ should land in that neighbourhood (the paper's value
        // comes from its own MC-built catalog).
        let q = paper_query(10.0, 25.0, 0.01);
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(alpha) = b.reject else {
            panic!()
        };
        assert!(
            (40.0..55.0).contains(&alpha),
            "α∥ = {alpha}, expected near Fig. 13's 46.9"
        );
    }
}
