//! Pipeline-wide observability: one handle bundling every metric the
//! three-phase executor, the resilient wrapper, and the parallel
//! integrator record.
//!
//! [`PipelineMetrics`] owns a [`gprq_obs::Registry`] plus cached
//! instrument handles, so the hot path pays one relaxed atomic per
//! event — never a name lookup or a lock. Executors take the handle by
//! reference ([`PrqExecutor::with_metrics`]) and stay `Copy`; a handle
//! can be cloned freely (clones share the same instruments).
//!
//! Counters are flushed **once per query** from the already-maintained
//! [`QueryStats`], so per-candidate work sees no instrumentation at
//! all; only the three phase spans and the per-object sample histogram
//! touch metrics inside a query. The `BENCH_obs.json` guard holds the
//! end-to-end overhead of this design under 3 %.
//!
//! Span-to-paper mapping: [`Phase::Search`] is the paper's Phase 1
//! (index-based search), [`Phase::Filter`] Phase 2 (RR/OR/BF
//! filtering), [`Phase::Integrate`] Phase 3 (probability computation,
//! "at least 97 % of the total processing time", §V-B).
//!
//! [`PrqExecutor::with_metrics`]: crate::executor::PrqExecutor::with_metrics
//! [`QueryStats`]: crate::executor::QueryStats

use crate::executor::QueryStats;
use crate::resilience::{DegradationReason, DegradationReport};
use gprq_obs::{Clock, Counter, Histogram, MetricsSnapshot, MonotonicClock, PhaseSpan, Registry};
use std::sync::Arc;

/// Registered metric names, one `const` per instrument so callers and
/// dashboards never drift from the recording sites (the DESIGN.md §10
/// table is generated from this list's docs).
pub mod names {
    /// Counter: queries executed (one per `execute` call).
    pub const QUERIES: &str = "prq_queries_total";
    /// Counter: answer-set entries returned.
    pub const ANSWERS: &str = "prq_answers_total";
    /// Counter: R-tree nodes visited in Phase 1 (`SearchStats::nodes_visited`).
    pub const PHASE1_NODE_VISITS: &str = "prq_phase1_node_visits_total";
    /// Counter: leaf records tested in Phase 1 (`SearchStats::entries_checked`).
    pub const PHASE1_LEAF_HITS: &str = "prq_phase1_leaf_hits_total";
    /// Counter: candidates returned by the Phase-1 rectangle search.
    pub const PHASE1_CANDIDATES: &str = "prq_phase1_candidates_total";
    /// Counter: candidates pruned by the RR fringe filter.
    pub const PHASE2_FRINGE_PRUNES: &str = "prq_phase2_fringe_prunes_total";
    /// Counter: candidates rotated into the eigenbasis by the OR filter.
    pub const PHASE2_OR_ROTATIONS: &str = "prq_phase2_or_rotations_total";
    /// Counter: candidates pruned by the OR oblique-box filter.
    pub const PHASE2_OR_PRUNES: &str = "prq_phase2_or_prunes_total";
    /// Counter: candidates rejected by the BF radius `α∥`.
    pub const PHASE2_BF_REJECTS: &str = "prq_phase2_bf_rejects_total";
    /// Counter: candidates accepted by the BF radius `α⊥` without integration.
    pub const PHASE2_BF_ACCEPTS: &str = "prq_phase2_bf_accepts_total";
    /// Counter: numerical integrations performed in Phase 3.
    pub const PHASE3_INTEGRATIONS: &str = "prq_phase3_integrations_total";
    /// Counter: integrations stopped early by the confidence interval.
    pub const PHASE3_EARLY_TERMINATIONS: &str = "prq_phase3_early_terminations_total";
    /// Counter: objects reported `Verdict::Uncertain`.
    pub const PHASE3_UNCERTAIN: &str = "prq_phase3_uncertain_total";
    /// Counter: Monte-Carlo samples drawn in Phase 3 (budgeted paths).
    pub const PHASE3_SAMPLES: &str = "prq_phase3_samples_total";
    /// Histogram: samples drawn per integrated object (budgeted paths).
    pub const PHASE3_SAMPLES_PER_OBJECT: &str = "prq_phase3_samples_per_object";
    /// Histogram: Phase-1 wall-clock nanoseconds per query.
    pub const PHASE1_DURATION_NS: &str = "prq_phase1_duration_ns";
    /// Histogram: Phase-2 wall-clock nanoseconds per query.
    pub const PHASE2_DURATION_NS: &str = "prq_phase2_duration_ns";
    /// Histogram: Phase-3 wall-clock nanoseconds per query.
    pub const PHASE3_DURATION_NS: &str = "prq_phase3_duration_ns";
    /// Counter: input repairs applied by admission (θ clamps, Σ
    /// symmetrization/regularization, catalog drops).
    pub const RESILIENCE_REPAIRS: &str = "prq_resilience_repairs_total";
    /// Counter: strategy-fallback hops (strategy switches + naive scans).
    pub const RESILIENCE_FALLBACK_HOPS: &str = "prq_resilience_fallback_hops_total";
    /// Counter: objects lost to evaluator faults.
    pub const RESILIENCE_EVALUATOR_FAULTS: &str = "prq_resilience_evaluator_faults_total";
    /// Counter: budget-exhaustion events (total-sample or candidate cap).
    pub const RESILIENCE_BUDGET_EXHAUSTED: &str = "prq_resilience_budget_exhausted_total";
    /// Counter: candidate objects handed to the parallel integrator.
    pub const PARALLEL_OBJECTS: &str = "prq_parallel_objects_total";
    /// Counter: Monte-Carlo samples drawn by the parallel integrator.
    pub const PARALLEL_SAMPLES: &str = "prq_parallel_samples_total";
    /// Histogram: samples drawn per parallel worker (layout-dependent).
    pub const PARALLEL_WORKER_SAMPLES: &str = "prq_parallel_worker_samples";
    /// Counter: shared sample clouds built (one per query on the cloud path).
    pub const CLOUD_BUILDS: &str = "prq_cloud_builds_total";
    /// Counter: grid cells visited while answering cloud probabilities.
    pub const CLOUD_CELLS_SCANNED: &str = "prq_cloud_cells_scanned_total";
    /// Counter: visited cells classified fully-inside `B(center, δ)` —
    /// their samples counted without any distance test.
    pub const CLOUD_CELLS_INSIDE: &str = "prq_cloud_cells_inside_total";
    /// Counter: cloud samples that ran the SoA distance kernel (boundary
    /// cells only; compare against `prq_phase3_samples_total`).
    pub const CLOUD_SAMPLES_TESTED: &str = "prq_cloud_samples_tested_total";
    /// Counter: optimistic (OLC) node-read attempts in Phase 1
    /// (`SearchStats::olc_attempts`; zero on the single-writer tree).
    pub const OLC_ATTEMPTS: &str = "prq_olc_attempts";
    /// Counter: OLC attempts retried after failed validation or a
    /// write-locked node (`SearchStats::olc_retries`).
    pub const OLC_RETRIES: &str = "prq_olc_retries";
    /// Counter: Phase-1 traversals that exhausted the optimistic ladder
    /// and degraded to the pessimistic writer-excluding path.
    pub const OLC_PESSIMISTIC_FALLBACKS: &str = "prq_olc_pessimistic_fallbacks";
    /// Histogram: per-node OLC retry depth (log₂-bucketed; bucket 0 is
    /// first-attempt validation).
    pub const OLC_RETRY_DEPTH: &str = "prq_olc_retry_depth";
    /// Counter: query batches executed (one per `QueryBatch::execute`).
    pub const BATCHES: &str = "prq_batches_total";
    /// Counter: queries executed through the batch planner.
    pub const BATCH_QUERIES: &str = "prq_batch_queries_total";
    /// Counter: batch queries whose Σ-keyed factor/offset table was
    /// already cached by an earlier group member (Cholesky + sample
    /// offsets reused, Box–Muller skipped).
    pub const BATCH_SIGMA_CACHE_HITS: &str = "prq_batch_sigma_cache_hits";
    /// Counter: batch queries that had to draw a fresh Σ-group offset
    /// table (first member of the group, or evicted entry).
    pub const BATCH_SIGMA_CACHE_MISSES: &str = "prq_batch_sigma_cache_misses";
    /// Counter: batch members lost to an injected/internal fault and
    /// recovered through the solo re-run path (every hop reported).
    pub const BATCH_ABORTS: &str = "prq_batch_aborts_total";
}

/// The paper's three query-processing phases, used to label spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: index-based search.
    Search,
    /// Phase 2: RR/OR/BF filtering.
    Filter,
    /// Phase 3: probability computation.
    Integrate,
}

/// Saturating `usize → u64` without a lossy cast (audit rule R6).
fn as_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Shared observability handle for the query pipeline.
///
/// Cheap to clone (all clones share instruments); see the module docs
/// for the recording discipline and overhead budget.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    registry: Registry,
    clock: Arc<dyn Clock>,
    queries: Arc<Counter>,
    answers: Arc<Counter>,
    node_visits: Arc<Counter>,
    leaf_hits: Arc<Counter>,
    phase1_candidates: Arc<Counter>,
    fringe_prunes: Arc<Counter>,
    or_rotations: Arc<Counter>,
    or_prunes: Arc<Counter>,
    bf_rejects: Arc<Counter>,
    bf_accepts: Arc<Counter>,
    integrations: Arc<Counter>,
    early_terminations: Arc<Counter>,
    uncertain: Arc<Counter>,
    phase3_samples: Arc<Counter>,
    samples_per_object: Arc<Histogram>,
    phase1_duration: Arc<Histogram>,
    phase2_duration: Arc<Histogram>,
    phase3_duration: Arc<Histogram>,
    repairs: Arc<Counter>,
    fallback_hops: Arc<Counter>,
    evaluator_faults: Arc<Counter>,
    budget_exhausted: Arc<Counter>,
    parallel_objects: Arc<Counter>,
    parallel_samples: Arc<Counter>,
    worker_samples: Arc<Histogram>,
    cloud_builds: Arc<Counter>,
    cloud_cells_scanned: Arc<Counter>,
    cloud_cells_inside: Arc<Counter>,
    cloud_samples_tested: Arc<Counter>,
    olc_attempts: Arc<Counter>,
    olc_retries: Arc<Counter>,
    olc_pessimistic_fallbacks: Arc<Counter>,
    olc_retry_depth: Arc<Histogram>,
    batches: Arc<Counter>,
    batch_queries: Arc<Counter>,
    batch_sigma_cache_hits: Arc<Counter>,
    batch_sigma_cache_misses: Arc<Counter>,
    batch_aborts: Arc<Counter>,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// A fresh metrics handle over the monotonic wall clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A metrics handle over a caller-supplied clock — tests pass
    /// [`gprq_obs::MockClock`] to make span durations deterministic.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let registry = Registry::new();
        PipelineMetrics {
            queries: registry.counter(names::QUERIES),
            answers: registry.counter(names::ANSWERS),
            node_visits: registry.counter(names::PHASE1_NODE_VISITS),
            leaf_hits: registry.counter(names::PHASE1_LEAF_HITS),
            phase1_candidates: registry.counter(names::PHASE1_CANDIDATES),
            fringe_prunes: registry.counter(names::PHASE2_FRINGE_PRUNES),
            or_rotations: registry.counter(names::PHASE2_OR_ROTATIONS),
            or_prunes: registry.counter(names::PHASE2_OR_PRUNES),
            bf_rejects: registry.counter(names::PHASE2_BF_REJECTS),
            bf_accepts: registry.counter(names::PHASE2_BF_ACCEPTS),
            integrations: registry.counter(names::PHASE3_INTEGRATIONS),
            early_terminations: registry.counter(names::PHASE3_EARLY_TERMINATIONS),
            uncertain: registry.counter(names::PHASE3_UNCERTAIN),
            phase3_samples: registry.counter(names::PHASE3_SAMPLES),
            samples_per_object: registry.histogram(names::PHASE3_SAMPLES_PER_OBJECT),
            phase1_duration: registry.histogram(names::PHASE1_DURATION_NS),
            phase2_duration: registry.histogram(names::PHASE2_DURATION_NS),
            phase3_duration: registry.histogram(names::PHASE3_DURATION_NS),
            repairs: registry.counter(names::RESILIENCE_REPAIRS),
            fallback_hops: registry.counter(names::RESILIENCE_FALLBACK_HOPS),
            evaluator_faults: registry.counter(names::RESILIENCE_EVALUATOR_FAULTS),
            budget_exhausted: registry.counter(names::RESILIENCE_BUDGET_EXHAUSTED),
            parallel_objects: registry.counter(names::PARALLEL_OBJECTS),
            parallel_samples: registry.counter(names::PARALLEL_SAMPLES),
            worker_samples: registry.histogram(names::PARALLEL_WORKER_SAMPLES),
            cloud_builds: registry.counter(names::CLOUD_BUILDS),
            cloud_cells_scanned: registry.counter(names::CLOUD_CELLS_SCANNED),
            cloud_cells_inside: registry.counter(names::CLOUD_CELLS_INSIDE),
            cloud_samples_tested: registry.counter(names::CLOUD_SAMPLES_TESTED),
            olc_attempts: registry.counter(names::OLC_ATTEMPTS),
            olc_retries: registry.counter(names::OLC_RETRIES),
            olc_pessimistic_fallbacks: registry.counter(names::OLC_PESSIMISTIC_FALLBACKS),
            olc_retry_depth: registry.histogram(names::OLC_RETRY_DEPTH),
            batches: registry.counter(names::BATCHES),
            batch_queries: registry.counter(names::BATCH_QUERIES),
            batch_sigma_cache_hits: registry.counter(names::BATCH_SIGMA_CACHE_HITS),
            batch_sigma_cache_misses: registry.counter(names::BATCH_SIGMA_CACHE_MISSES),
            batch_aborts: registry.counter(names::BATCH_ABORTS),
            registry,
            clock,
        }
    }

    /// The underlying registry (for registering application metrics
    /// alongside the pipeline's own).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time snapshot of every pipeline metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Starts an RAII span recording into the given phase's duration
    /// histogram.
    pub fn phase_span(&self, phase: Phase) -> PhaseSpan<'_> {
        let target = match phase {
            Phase::Search => &self.phase1_duration,
            Phase::Filter => &self.phase2_duration,
            Phase::Integrate => &self.phase3_duration,
        };
        PhaseSpan::start(self.clock.as_ref(), target)
    }

    /// Flushes one finished query's counters. Called once per query so
    /// per-candidate work carries no instrumentation cost; durations are
    /// recorded live by [`PipelineMetrics::phase_span`], not here.
    pub fn record_query(&self, stats: &QueryStats) {
        self.queries.inc();
        self.answers.add(as_u64(stats.answers));
        self.node_visits.add(as_u64(stats.node_accesses));
        self.leaf_hits.add(as_u64(stats.leaf_hits));
        self.phase1_candidates.add(as_u64(stats.phase1_candidates));
        self.fringe_prunes.add(as_u64(stats.pruned_by_fringe));
        self.or_rotations.add(as_u64(stats.or_rotations));
        self.or_prunes.add(as_u64(stats.pruned_by_or));
        self.bf_rejects.add(as_u64(stats.pruned_by_bf));
        self.bf_accepts
            .add(as_u64(stats.accepted_without_integration));
        self.integrations.add(as_u64(stats.integrations));
        self.early_terminations
            .add(as_u64(stats.early_terminations));
        self.uncertain.add(as_u64(stats.uncertain));
        self.phase3_samples.add(as_u64(stats.phase3_samples));
        self.cloud_builds.add(as_u64(stats.cloud_builds));
        self.cloud_cells_scanned
            .add(as_u64(stats.cloud_cells_scanned));
        self.cloud_cells_inside
            .add(as_u64(stats.cloud_cells_inside));
        self.cloud_samples_tested
            .add(as_u64(stats.cloud_samples_tested));
        self.olc_attempts.add(as_u64(stats.olc_attempts));
        self.olc_retries.add(as_u64(stats.olc_retries));
        self.olc_pessimistic_fallbacks
            .add(as_u64(stats.olc_pessimistic_fallbacks));
        // Fold the per-query retry-depth tally into the pipeline-wide
        // histogram: one batch record per non-empty bucket at that
        // bucket's representative retry count (0, then 2^(i−1)).
        for (i, &n) in stats.olc_retry_depth.iter().enumerate() {
            if n > 0 {
                let representative = match i.checked_sub(1) {
                    None => 0,
                    Some(shift) => 1u64 << shift,
                };
                self.olc_retry_depth.record_n(representative, as_u64(n));
            }
        }
    }

    /// Flushes a shared-cloud statistics block (used by the parallel
    /// integrator, which records directly rather than via `QueryStats`).
    pub fn record_cloud(&self, stats: &gprq_gaussian::cloud::CloudStats) {
        self.cloud_builds.add(as_u64(stats.builds));
        self.cloud_cells_scanned.add(as_u64(stats.cells_scanned));
        self.cloud_cells_inside.add(as_u64(stats.cells_inside));
        self.cloud_samples_tested.add(as_u64(stats.samples_tested));
    }

    /// Records the sample count one budgeted Phase-3 integration drew.
    pub fn record_phase3_object(&self, samples: usize) {
        self.samples_per_object.record(as_u64(samples));
    }

    /// Flushes a resilient execution's degradation report into the
    /// repair / fallback / fault / budget counters.
    pub fn record_report(&self, report: &DegradationReport) {
        for event in report.iter() {
            match event {
                DegradationReason::ThetaClamped { .. }
                | DegradationReason::CovarianceSymmetrized { .. }
                | DegradationReason::CovarianceRegularized { .. }
                | DegradationReason::CatalogDropped { .. } => self.repairs.inc(),
                DegradationReason::StrategySwitched { .. }
                | DegradationReason::NaiveFallback { .. } => self.fallback_hops.inc(),
                DegradationReason::EvaluatorFaults { objects } => {
                    self.evaluator_faults.add(as_u64(*objects));
                }
                DegradationReason::BudgetExhausted { .. } => self.budget_exhausted.inc(),
            }
        }
    }

    /// Records one parallel worker's total drawn samples.
    pub fn record_worker_samples(&self, samples: usize) {
        self.worker_samples.record(as_u64(samples));
        self.parallel_samples.add(as_u64(samples));
    }

    /// Records how many candidate objects a parallel run fanned out.
    pub fn record_parallel_objects(&self, objects: usize) {
        self.parallel_objects.add(as_u64(objects));
    }

    /// Records one finished batch: the batch itself, how many queries it
    /// carried, and the Σ-cache hit/miss split (hits + misses == queries
    /// on the cloud path).
    pub fn record_batch(&self, queries: usize, sigma_cache_hits: usize, sigma_cache_misses: usize) {
        self.batches.inc();
        self.batch_queries.add(as_u64(queries));
        self.batch_sigma_cache_hits.add(as_u64(sigma_cache_hits));
        self.batch_sigma_cache_misses
            .add(as_u64(sigma_cache_misses));
    }

    /// Records one batch member lost to a fault and recovered by the
    /// solo re-run path.
    pub fn record_batch_abort(&self) {
        self.batch_aborts.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_obs::MockClock;

    #[test]
    fn record_query_flushes_every_counter() {
        let m = PipelineMetrics::new();
        let stats = QueryStats {
            phase1_candidates: 10,
            node_accesses: 4,
            leaf_hits: 30,
            pruned_by_fringe: 3,
            or_rotations: 7,
            pruned_by_or: 2,
            pruned_by_bf: 1,
            accepted_without_integration: 1,
            integrations: 3,
            answers: 2,
            phase3_samples: 1_500,
            early_terminations: 1,
            uncertain: 1,
            cloud_builds: 1,
            cloud_cells_scanned: 40,
            cloud_cells_inside: 25,
            cloud_samples_tested: 900,
            ..QueryStats::default()
        };
        m.record_query(&stats);
        m.record_query(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::QUERIES), Some(2));
        assert_eq!(snap.counter(names::ANSWERS), Some(4));
        assert_eq!(snap.counter(names::PHASE1_NODE_VISITS), Some(8));
        assert_eq!(snap.counter(names::PHASE1_LEAF_HITS), Some(60));
        assert_eq!(snap.counter(names::PHASE2_OR_ROTATIONS), Some(14));
        assert_eq!(snap.counter(names::PHASE3_SAMPLES), Some(3_000));
        assert_eq!(snap.counter(names::PHASE3_EARLY_TERMINATIONS), Some(2));
        assert_eq!(snap.counter(names::CLOUD_BUILDS), Some(2));
        assert_eq!(snap.counter(names::CLOUD_CELLS_SCANNED), Some(80));
        assert_eq!(snap.counter(names::CLOUD_CELLS_INSIDE), Some(50));
        assert_eq!(snap.counter(names::CLOUD_SAMPLES_TESTED), Some(1_800));
    }

    #[test]
    fn olc_flush_records_counters_and_depth_histogram() {
        let m = PipelineMetrics::new();
        let mut stats = QueryStats {
            olc_attempts: 12,
            olc_retries: 3,
            olc_pessimistic_fallbacks: 1,
            ..QueryStats::default()
        };
        stats.olc_retry_depth[0] = 9; // nine first-attempt validations
        stats.olc_retry_depth[2] = 3; // three reads at 2–3 retries
        m.record_query(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::OLC_ATTEMPTS), Some(12));
        assert_eq!(snap.counter(names::OLC_RETRIES), Some(3));
        assert_eq!(snap.counter(names::OLC_PESSIMISTIC_FALLBACKS), Some(1));
        let depth = snap
            .histogram(names::OLC_RETRY_DEPTH)
            .expect("depth histogram registered");
        assert_eq!(depth.count, 12, "every depth tally lands in the histogram");
        assert_eq!(depth.sum, 6, "bucket 2 folds in at its representative 2");
    }

    #[test]
    fn cloud_recording() {
        let m = PipelineMetrics::new();
        let stats = gprq_gaussian::cloud::CloudStats {
            builds: 1,
            cells_scanned: 12,
            cells_inside: 7,
            samples_tested: 320,
        };
        m.record_cloud(&stats);
        m.record_cloud(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::CLOUD_BUILDS), Some(2));
        assert_eq!(snap.counter(names::CLOUD_CELLS_SCANNED), Some(24));
        assert_eq!(snap.counter(names::CLOUD_CELLS_INSIDE), Some(14));
        assert_eq!(snap.counter(names::CLOUD_SAMPLES_TESTED), Some(640));
    }

    #[test]
    fn phase_spans_record_into_the_right_histograms() {
        let clock = Arc::new(MockClock::new());
        let m = PipelineMetrics::with_clock(clock.clone());
        for (phase, ns) in [
            (Phase::Search, 100u64),
            (Phase::Filter, 200),
            (Phase::Integrate, 97_000),
        ] {
            let span = m.phase_span(phase);
            clock.advance(ns);
            assert_eq!(span.finish(), ns);
        }
        let snap = m.snapshot();
        assert_eq!(
            snap.histogram(names::PHASE1_DURATION_NS).map(|h| h.sum),
            Some(100)
        );
        assert_eq!(
            snap.histogram(names::PHASE2_DURATION_NS).map(|h| h.sum),
            Some(200)
        );
        assert_eq!(
            snap.histogram(names::PHASE3_DURATION_NS).map(|h| h.sum),
            Some(97_000)
        );
    }

    #[test]
    fn report_classification() {
        use crate::resilience::{BudgetScope, CatalogKind, SwitchCause};
        use crate::strategy::StrategySet;
        let m = PipelineMetrics::new();
        let mut report = DegradationReport::new();
        report.record(DegradationReason::ThetaClamped {
            from: 2.0,
            to: 1.0 - 1e-9,
        });
        report.record(DegradationReason::CatalogDropped {
            which: CatalogKind::Rr,
            catalog_dim: 3,
            query_dim: 2,
        });
        report.record(DegradationReason::StrategySwitched {
            from: StrategySet::ALL,
            to: StrategySet::BF,
            cause: SwitchCause::ThetaAboveHalf(0.7),
        });
        report.record(DegradationReason::NaiveFallback {
            cause: SwitchCause::ExecutionFailed,
        });
        report.record(DegradationReason::EvaluatorFaults { objects: 5 });
        report.record(DegradationReason::BudgetExhausted {
            scope: BudgetScope::TotalSamples,
            unresolved: 9,
        });
        m.record_report(&report);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::RESILIENCE_REPAIRS), Some(2));
        assert_eq!(snap.counter(names::RESILIENCE_FALLBACK_HOPS), Some(2));
        assert_eq!(snap.counter(names::RESILIENCE_EVALUATOR_FAULTS), Some(5));
        assert_eq!(snap.counter(names::RESILIENCE_BUDGET_EXHAUSTED), Some(1));
    }

    #[test]
    fn batch_recording() {
        let m = PipelineMetrics::new();
        m.record_batch(16, 14, 2);
        m.record_batch(4, 0, 4);
        m.record_batch_abort();
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::BATCHES), Some(2));
        assert_eq!(snap.counter(names::BATCH_QUERIES), Some(20));
        assert_eq!(snap.counter(names::BATCH_SIGMA_CACHE_HITS), Some(14));
        assert_eq!(snap.counter(names::BATCH_SIGMA_CACHE_MISSES), Some(6));
        assert_eq!(snap.counter(names::BATCH_ABORTS), Some(1));
    }

    #[test]
    fn parallel_recording() {
        let m = PipelineMetrics::new();
        m.record_parallel_objects(64);
        m.record_worker_samples(32_000);
        m.record_worker_samples(32_000);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::PARALLEL_OBJECTS), Some(64));
        assert_eq!(snap.counter(names::PARALLEL_SAMPLES), Some(64_000));
        assert_eq!(
            snap.histogram(names::PARALLEL_WORKER_SAMPLES)
                .map(|h| h.count),
            Some(2)
        );
    }
}
