//! Extensions beyond the paper's evaluated scope — its §VII "future work"
//! items, implemented on top of the same machinery:
//!
//! * [`pnn`] — probabilistic k-nearest-neighbor queries: rank objects by
//!   qualification probability at a fixed `δ`, pruning with the BF upper
//!   bound;
//! * [`uncertain`] — *uncertain target objects*: when a target is itself
//!   Gaussian, the qualification probability reduces exactly to a query
//!   with the convolved covariance `Σ + Σ_o`;
//! * [`parallel`] — Phase-3 integration fanned out over threads (the
//!   integrations are independent, so this is embarrassingly parallel);
//! * [`session`] — continuous monitoring: a sequence of PRQs from a
//!   moving object, with catalog reuse and enter/leave delta reporting.

pub mod parallel;
pub mod pnn;
pub mod session;
pub mod uncertain;
