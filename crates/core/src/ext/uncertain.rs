//! Uncertain *target* objects (paper §VII, future work 2).
//!
//! The paper assumes exact targets and an imprecise query object. When a
//! target is itself Gaussian, `o ~ N(µ_o, Σ_o)` independent of the query
//! location `x ~ N(q, Σ)`, the difference is again Gaussian:
//!
//! ```text
//! x − o  ~  N(q − µ_o, Σ + Σ_o)
//! ```
//!
//! so `Pr(‖x − o‖ ≤ δ)` is **exactly** a centered-ball probability under
//! the convolved distribution — the entire PRQ machinery (bounding
//! functions included) applies unchanged with `Σ ← Σ + Σ_o`. No new
//! approximation is introduced.

use crate::error::PrqError;
use crate::evaluator::ProbabilityEvaluator;
use crate::query::PrqQuery;
use crate::strategy::bf::{BfBounds, BfClass};
use gprq_linalg::{Matrix, Vector};

/// A target object whose own location is Gaussian.
#[derive(Debug, Clone, Copy)]
pub struct UncertainTarget<const D: usize> {
    /// Mean location `µ_o`.
    pub mean: Vector<D>,
    /// Location covariance `Σ_o`.
    pub covariance: Matrix<D>,
}

/// Qualification probability of an uncertain target against a query:
/// `Pr(‖x − o‖ ≤ δ)` with both sides Gaussian.
///
/// # Errors
///
/// Propagates covariance validation failure for `Σ + Σ_o`.
pub fn qualification_probability<const D: usize, E>(
    query: &PrqQuery<D>,
    target: &UncertainTarget<D>,
    evaluator: &mut E,
) -> Result<f64, PrqError>
where
    E: ProbabilityEvaluator<D>,
{
    let combined = query
        .gaussian()
        .convolve(&target.mean, &target.covariance)?;
    evaluator.begin_query(&combined);
    Ok(evaluator.probability(&combined, &Vector::ZERO, query.delta()))
}

/// Outcome of a range query over uncertain targets.
#[derive(Debug, Clone, Default)]
pub struct UncertainOutcome {
    /// Indices (into the input slice) of qualifying targets.
    pub answers: Vec<usize>,
    /// Targets decided by the BF bounds without integration.
    pub decided_by_bounds: usize,
    /// Numerical integrations performed.
    pub integrations: usize,
}

/// Evaluates `PRQ(q, δ, θ)` over a collection of uncertain targets.
///
/// Each target gets its own convolved distribution, so the BF bounds are
/// recomputed per target — still far cheaper than an integration, and
/// they decide most targets outright (the `decided_by_bounds` counter).
///
/// # Errors
///
/// Propagates covariance validation failure for any `Σ + Σ_o`.
pub fn prq_uncertain_targets<const D: usize, E>(
    query: &PrqQuery<D>,
    targets: &[UncertainTarget<D>],
    evaluator: &mut E,
) -> Result<UncertainOutcome, PrqError>
where
    E: ProbabilityEvaluator<D>,
{
    let mut out = UncertainOutcome::default();
    for (idx, target) in targets.iter().enumerate() {
        let combined = query
            .gaussian()
            .convolve(&target.mean, &target.covariance)?;
        // Build a PRQ against the combined distribution; the "object" is
        // the origin of the difference space.
        let sub_query = PrqQuery::from_gaussian(combined, query.delta(), query.theta())?;
        let bounds = BfBounds::exact(&sub_query);
        match bounds.classify(&Vector::ZERO) {
            BfClass::Accept => {
                out.decided_by_bounds += 1;
                out.answers.push(idx);
            }
            BfClass::Reject => {
                out.decided_by_bounds += 1;
            }
            BfClass::NeedsIntegration => {
                out.integrations += 1;
                evaluator.begin_query(sub_query.gaussian());
                let p = evaluator.probability(sub_query.gaussian(), &Vector::ZERO, query.delta());
                if p >= query.theta() {
                    out.answers.push(idx);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Quadrature2dEvaluator;
    use gprq_linalg::Matrix;

    fn query() -> PrqQuery<2> {
        PrqQuery::new(
            Vector::from([0.0, 0.0]),
            Matrix::identity().scale(4.0),
            3.0,
            0.05,
        )
        .unwrap()
    }

    #[test]
    fn zero_uncertainty_target_matches_exact_prq() {
        // A target with (near-)zero covariance behaves like an exact
        // point: the probability matches the direct integral.
        let q = query();
        let target = UncertainTarget {
            mean: Vector::from([2.0, 1.0]),
            covariance: Matrix::identity().scale(1e-9),
        };
        let mut eval = Quadrature2dEvaluator::default();
        let p_uncertain = qualification_probability(&q, &target, &mut eval).unwrap();
        let p_exact = eval.probability(q.gaussian(), &target.mean, q.delta());
        assert!(
            (p_uncertain - p_exact).abs() < 1e-6,
            "{p_uncertain} vs {p_exact}"
        );
    }

    #[test]
    fn target_uncertainty_spreads_probability() {
        // For a target near the query center, adding uncertainty can only
        // lower the probability mass inside the ball (the difference
        // distribution gets wider).
        let q = query();
        let mut eval = Quadrature2dEvaluator::default();
        let near = Vector::from([0.5, 0.5]);
        let mut prev = 1.0;
        for spread in [1e-9, 1.0, 4.0, 16.0] {
            let t = UncertainTarget {
                mean: near,
                covariance: Matrix::identity().scale(spread),
            };
            let p = qualification_probability(&q, &t, &mut eval).unwrap();
            assert!(p <= prev + 1e-9, "spread {spread}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn far_target_gains_from_uncertainty() {
        // Conversely a far target can only reach the ball thanks to its
        // own spread.
        let q = query();
        let mut eval = Quadrature2dEvaluator::default();
        let far = Vector::from([20.0, 0.0]);
        let tight = UncertainTarget {
            mean: far,
            covariance: Matrix::identity().scale(1e-9),
        };
        let loose = UncertainTarget {
            mean: far,
            covariance: Matrix::identity().scale(100.0),
        };
        let p_tight = qualification_probability(&q, &tight, &mut eval).unwrap();
        let p_loose = qualification_probability(&q, &loose, &mut eval).unwrap();
        assert!(p_tight < 1e-9);
        assert!(p_loose > p_tight);
    }

    #[test]
    fn batch_query_classifies_and_matches_direct() {
        let q = query();
        let targets: Vec<UncertainTarget<2>> = (0..40)
            .map(|i| UncertainTarget {
                mean: Vector::from([i as f64 * 0.5 - 10.0, (i % 7) as f64 - 3.0]),
                covariance: Matrix::identity().scale(0.5 + (i % 3) as f64),
            })
            .collect();
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = prq_uncertain_targets(&q, &targets, &mut eval).unwrap();
        // Cross-check every target against the direct probability.
        let mut expect = Vec::new();
        for (i, t) in targets.iter().enumerate() {
            let p = qualification_probability(&q, t, &mut eval).unwrap();
            if p >= q.theta() {
                expect.push(i);
            }
        }
        assert_eq!(outcome.answers, expect);
        assert_eq!(
            outcome.decided_by_bounds + outcome.integrations,
            targets.len()
        );
        assert!(outcome.decided_by_bounds > 0, "bounds should decide some");
    }
}
