//! Continuous-query sessions: a sequence of probabilistic range queries
//! from one moving, imprecisely-localized object (the paper's §I robot
//! scenario executed over time).
//!
//! A session amortizes what repeated one-shot execution would pay per
//! step: the U-catalogs are built once, the evaluator is reused, and the
//! session reports per-step plus aggregate statistics. Results are
//! returned as *deltas* (objects entering/leaving the probable range)
//! because monitoring applications react to changes, not to full sets.

use crate::error::PrqError;
use crate::evaluator::ProbabilityEvaluator;
use crate::executor::{PrqExecutor, QueryStats};
use crate::query::PrqQuery;
use crate::strategy::StrategySet;
use crate::ucatalog::{BfCatalog, RrCatalog};
use gprq_linalg::{Matrix, Vector};
use gprq_rtree::RTree;

/// One step's outcome in a monitoring session.
#[derive(Debug, Clone)]
pub struct StepOutcome<T> {
    /// Payloads qualifying at this step (sorted, deduplicated).
    pub answers: Vec<T>,
    /// Payloads newly qualifying relative to the previous step.
    pub entered: Vec<T>,
    /// Payloads that stopped qualifying relative to the previous step.
    pub left: Vec<T>,
    /// Execution statistics for this step.
    pub stats: QueryStats,
}

/// A monitoring session over a static object database.
pub struct MonitoringSession<'t, const D: usize, T, E> {
    tree: &'t RTree<D, T>,
    delta: f64,
    theta: f64,
    strategies: StrategySet,
    rr_catalog: RrCatalog,
    bf_catalog: BfCatalog,
    evaluator: E,
    previous: Vec<T>,
    /// Aggregate statistics across all steps.
    pub total: QueryStats,
    /// Number of steps executed.
    pub steps: usize,
}

impl<'t, const D: usize, T, E> MonitoringSession<'t, D, T, E>
where
    T: Clone + Ord,
    E: ProbabilityEvaluator<D>,
{
    /// Creates a session; builds both U-catalogs up front (the paper's
    /// intended deployment: tables offline, lookups per query).
    ///
    /// # Errors
    ///
    /// Validates `delta`, `theta`, and the strategy set.
    pub fn new(
        tree: &'t RTree<D, T>,
        delta: f64,
        theta: f64,
        strategies: StrategySet,
        evaluator: E,
    ) -> Result<Self, PrqError> {
        strategies.validate()?;
        crate::query::validate_thresholds(delta, theta)?;
        Ok(MonitoringSession {
            tree,
            delta,
            theta,
            strategies,
            rr_catalog: RrCatalog::new(D),
            bf_catalog: BfCatalog::new(D),
            evaluator,
            previous: Vec::new(),
            total: QueryStats::default(),
            steps: 0,
        })
    }

    /// Executes one step at the given pose estimate.
    ///
    /// # Errors
    ///
    /// Propagates query-construction and execution errors.
    pub fn step(
        &mut self,
        mean: Vector<D>,
        covariance: Matrix<D>,
    ) -> Result<StepOutcome<T>, PrqError> {
        let query = PrqQuery::new(mean, covariance, self.delta, self.theta)?;
        let outcome = PrqExecutor::new(self.strategies)
            .with_rr_catalog(&self.rr_catalog)
            .with_bf_catalog(&self.bf_catalog)
            .execute(self.tree, &query, &mut self.evaluator)?;

        let mut answers: Vec<T> = outcome.answers.iter().map(|(_, d)| (*d).clone()).collect();
        answers.sort_unstable();
        answers.dedup();

        let entered: Vec<T> = answers
            .iter()
            .filter(|a| self.previous.binary_search(a).is_err())
            .cloned()
            .collect();
        let left: Vec<T> = self
            .previous
            .iter()
            .filter(|p| answers.binary_search(p).is_err())
            .cloned()
            .collect();

        // Aggregate statistics.
        let s = outcome.stats;
        self.total.merge(&s);
        self.steps += 1;

        self.previous = answers.clone();
        Ok(StepOutcome {
            answers,
            entered,
            left,
            stats: s,
        })
    }

    /// Mean integrations per step so far.
    pub fn mean_integrations(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total.integrations as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Quadrature2dEvaluator;
    use gprq_rtree::RStarParams;

    fn grid_tree() -> RTree<2, u32> {
        let mut points = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                points.push((
                    Vector::from([i as f64 * 25.0, j as f64 * 25.0]),
                    (i * 40 + j) as u32,
                ));
            }
        }
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn cov(spread: f64) -> Matrix<2> {
        Matrix::identity().scale(spread)
    }

    #[test]
    fn deltas_track_movement() {
        let tree = grid_tree();
        let mut session = MonitoringSession::new(
            &tree,
            60.0,
            0.2,
            StrategySet::ALL,
            Quadrature2dEvaluator::default(),
        )
        .unwrap();
        let first = session
            .step(Vector::from([200.0, 200.0]), cov(100.0))
            .unwrap();
        assert!(!first.answers.is_empty());
        assert_eq!(first.entered, first.answers, "first step: all enter");
        assert!(first.left.is_empty());

        // Tiny movement: mostly stable set.
        let second = session
            .step(Vector::from([205.0, 200.0]), cov(100.0))
            .unwrap();
        assert!(second.entered.len() + second.left.len() < first.answers.len());

        // Large jump: completely new set.
        let third = session
            .step(Vector::from([800.0, 800.0]), cov(100.0))
            .unwrap();
        assert!(!third.entered.is_empty());
        assert!(!third.left.is_empty());
        // Old answers all left (they're ~850 away, far beyond δ = 60).
        assert_eq!(third.left.len(), second.answers.len());
        assert_eq!(session.steps, 3);
        assert!(session.mean_integrations() >= 0.0);
    }

    #[test]
    fn session_matches_one_shot_execution() {
        let tree = grid_tree();
        let mut session = MonitoringSession::new(
            &tree,
            60.0,
            0.2,
            StrategySet::ALL,
            Quadrature2dEvaluator::default(),
        )
        .unwrap();
        let mean = Vector::from([333.0, 512.0]);
        let sigma = cov(80.0);
        let step = session.step(mean, sigma).unwrap();

        let query = PrqQuery::new(mean, sigma, 60.0, 0.2).unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        let one_shot = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        let mut expect: Vec<u32> = one_shot.answers.iter().map(|(_, d)| **d).collect();
        expect.sort_unstable();
        assert_eq!(step.answers, expect);
    }

    #[test]
    fn growing_uncertainty_changes_answer_set() {
        // The paper's Example 1 punchline, as an assertion: at fixed
        // position, growing Σ changes which objects clear θ.
        let tree = grid_tree();
        let mut session = MonitoringSession::new(
            &tree,
            60.0,
            0.3,
            StrategySet::ALL,
            Quadrature2dEvaluator::default(),
        )
        .unwrap();
        let mean = Vector::from([500.0, 500.0]);
        let tight = session.step(mean, cov(10.0)).unwrap();
        // σ ≈ 173 per axis: even an object at the center captures only
        // ~1 − exp(−δ²/(2σ²)) ≈ 6 % < θ of the mass — no object qualifies.
        let loose = session.step(mean, cov(30_000.0)).unwrap();
        assert!(!tight.answers.is_empty());
        assert!(
            loose.answers.is_empty(),
            "under huge uncertainty nothing clears θ = 0.3, got {:?}",
            loose.answers
        );
    }

    #[test]
    fn rejects_invalid_parameters() {
        let tree = grid_tree();
        assert!(MonitoringSession::new(
            &tree,
            -1.0,
            0.2,
            StrategySet::ALL,
            Quadrature2dEvaluator::default()
        )
        .is_err());
        assert!(MonitoringSession::new(
            &tree,
            1.0,
            0.0,
            StrategySet::ALL,
            Quadrature2dEvaluator::default()
        )
        .is_err());
        let or_only = StrategySet {
            rr: false,
            or: true,
            bf: false,
        };
        assert!(
            MonitoringSession::new(&tree, 1.0, 0.2, or_only, Quadrature2dEvaluator::default())
                .is_err()
        );
    }
}
