//! Probabilistic k-nearest-neighbor queries (paper §VII, future work 1).
//!
//! `PNN(q, Σ, δ, k)` returns the `k` objects with the **highest
//! qualification probability** `Pr(‖x − o‖ ≤ δ)` — the natural ranking
//! companion of the thresholded `PRQ`.
//!
//! The search streams candidates from the R\*-tree in ascending Euclidean
//! distance from `q` and integrates them, maintaining the current top-k.
//! It stops as soon as the BF **upper bound on probability at the next
//! candidate's distance** falls below the current k-th best probability:
//! because the bound `∫_{B(o,δ)} p∥` is monotonically decreasing in
//! `‖o − q‖` and dominates the true probability (Property 4), no farther
//! object can displace the top-k.

use crate::evaluator::ProbabilityEvaluator;
use crate::query::PrqQuery;
use gprq_gaussian::noncentral::ball_probability;
use gprq_linalg::Vector;
use gprq_rtree::RTree;

/// One ranked result of a probabilistic k-NN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnnResult<'t, const D: usize, T> {
    /// The object's location.
    pub point: &'t Vector<D>,
    /// The object's payload.
    pub data: &'t T,
    /// Estimated qualification probability.
    pub probability: f64,
    /// Euclidean distance from the query center.
    pub distance: f64,
}

/// Statistics of a probabilistic k-NN execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PnnStats {
    /// Candidates pulled from the distance-ordered stream.
    pub candidates_examined: usize,
    /// Numerical integrations performed.
    pub integrations: usize,
}

/// Upper bound on the qualification probability of an object at distance
/// `dist` from the query center, from the BF upper bounding function
/// `p∥` (Definition 6): `(λ∥)^{−d/2}|Σ|^{−1/2} · F_d(√λ∥·dist, √λ∥·δ)`,
/// clamped to 1.
pub fn probability_upper_bound<const D: usize>(query: &PrqQuery<D>, dist: f64) -> f64 {
    let g = query.gaussian();
    let lambda_par = g.lambda_parallel();
    let sqrt_l = lambda_par.sqrt();
    let ln_scale = -0.5 * (D as f64) * lambda_par.ln() - 0.5 * g.log_det_covariance();
    let f = ball_probability(D, sqrt_l * dist, sqrt_l * query.delta());
    (ln_scale.exp() * f).min(1.0)
}

/// Executes a probabilistic k-NN query. The `theta` field of `query` is
/// ignored (ranking replaces thresholding); `δ` defines the event whose
/// probability ranks the objects.
///
/// Results are sorted by descending probability (ties by ascending
/// distance).
pub fn probabilistic_knn<'t, const D: usize, T, E>(
    tree: &'t RTree<D, T>,
    query: &PrqQuery<D>,
    k: usize,
    evaluator: &mut E,
) -> (Vec<PnnResult<'t, D, T>>, PnnStats)
where
    E: ProbabilityEvaluator<D>,
{
    let mut stats = PnnStats::default();
    if k == 0 || tree.is_empty() {
        return (Vec::new(), stats);
    }
    evaluator.begin_query(query.gaussian());
    let mut top: Vec<PnnResult<'t, D, T>> = Vec::with_capacity(k + 1);

    for (dist, point, data) in tree.nearest_iter(query.center()) {
        stats.candidates_examined += 1;
        // Termination: can anything at this distance (or farther) beat
        // the current k-th probability?
        if top.len() == k {
            if let Some(kth) = top.last() {
                if probability_upper_bound(query, dist) < kth.probability {
                    break;
                }
            }
        }
        stats.integrations += 1;
        let probability = evaluator.probability(query.gaussian(), point, query.delta());
        let result = PnnResult {
            point,
            data,
            probability,
            distance: dist,
        };
        // Insert in sorted order (descending probability, ascending
        // distance); k is small so linear insertion beats a heap.
        let pos = top
            .iter()
            .position(|r| {
                r.probability < probability || (r.probability == probability && r.distance > dist)
            })
            .unwrap_or(top.len());
        top.insert(pos, result);
        if top.len() > k {
            top.pop();
        }
    }
    (top, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Quadrature2dEvaluator;
    use gprq_linalg::Matrix;
    use gprq_rtree::RStarParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> RTree<2, usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                    i,
                )
            })
            .collect();
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn paper_query() -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0);
        // θ is irrelevant for PNN; any valid value works.
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    #[test]
    fn matches_exhaustive_ranking() {
        let tree = random_tree(2_000, 5);
        let query = paper_query();
        let k = 10;
        let mut eval = Quadrature2dEvaluator::default();
        let (got, stats) = probabilistic_knn(&tree, &query, k, &mut eval);
        assert_eq!(got.len(), k);

        // Exhaustive oracle.
        let mut oracle = Quadrature2dEvaluator::default();
        let mut all: Vec<(f64, usize)> = tree
            .iter()
            .map(|(p, d)| (oracle.probability(query.gaussian(), p, query.delta()), *d))
            .collect();
        all.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (i, r) in got.iter().enumerate() {
            assert!(
                (r.probability - all[i].0).abs() < 1e-9,
                "rank {i}: {} vs oracle {}",
                r.probability,
                all[i].0
            );
        }
        // The bound must have terminated the scan early.
        assert!(
            stats.integrations < 2_000,
            "expected early termination, integrated {}",
            stats.integrations
        );
    }

    #[test]
    fn results_sorted_descending() {
        let tree = random_tree(500, 9);
        let query = paper_query();
        let mut eval = Quadrature2dEvaluator::default();
        let (got, _) = probabilistic_knn(&tree, &query, 8, &mut eval);
        for w in got.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn upper_bound_dominates_truth_and_decreases() {
        let query = paper_query();
        let mut oracle = Quadrature2dEvaluator::default();
        let mut prev = f64::INFINITY;
        for t in [0.0, 10.0, 20.0, 40.0, 80.0] {
            let ub = probability_upper_bound(&query, t);
            assert!(ub <= prev + 1e-12, "bound must be non-increasing");
            prev = ub;
            let p = *query.center() + Vector::from([t, 0.0]);
            let truth = oracle.probability(query.gaussian(), &p, query.delta());
            assert!(ub >= truth - 1e-9, "bound {ub} < truth {truth} at {t}");
        }
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let tree = random_tree(100, 1);
        let query = paper_query();
        let mut eval = Quadrature2dEvaluator::default();
        assert!(probabilistic_knn(&tree, &query, 0, &mut eval).0.is_empty());
        let empty: RTree<2, usize> = RTree::new();
        assert!(probabilistic_knn(&empty, &query, 5, &mut eval).0.is_empty());
    }

    #[test]
    fn k_exceeding_database_returns_all() {
        let tree = random_tree(20, 2);
        let query = paper_query();
        let mut eval = Quadrature2dEvaluator::default();
        let (got, _) = probabilistic_knn(&tree, &query, 100, &mut eval);
        assert_eq!(got.len(), 20);
    }
}
