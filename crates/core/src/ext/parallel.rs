//! Parallel Phase-3 integration.
//!
//! The per-candidate Monte-Carlo integrations are independent, so Phase 3
//! — the ≥97 %-of-runtime phase — parallelizes embarrassingly. Each
//! candidate gets a **deterministic per-object RNG stream** derived from
//! the base seed and its index, so the result is bit-identical regardless
//! of thread count (and identical to the sequential run).

use crate::error::PrqError;
use crate::metrics::PipelineMetrics;
use crate::query::PrqQuery;
use gprq_gaussian::integrate::importance_sampling_probability;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for parallel qualification evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ParallelIntegrator {
    /// Monte-Carlo samples per object.
    pub samples: usize,
    /// Base RNG seed; object `i` uses a stream derived from it.
    pub seed: u64,
    /// Worker threads (`0` = number of available CPUs).
    pub threads: usize,
}

impl ParallelIntegrator {
    /// Creates an integrator.
    ///
    /// # Errors
    ///
    /// [`PrqError::InvalidSampleBudget`] if `samples == 0` — a
    /// zero-sample estimate would be an unfounded hard rejection.
    pub fn new(samples: usize, seed: u64, threads: usize) -> Result<Self, PrqError> {
        if samples == 0 {
            return Err(PrqError::InvalidSampleBudget);
        }
        Ok(ParallelIntegrator {
            samples,
            seed,
            threads,
        })
    }

    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Per-object seed: a splitmix-style mix of base seed and index so
    /// adjacent objects get decorrelated streams.
    fn object_seed(&self, index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Computes the qualification probability of every candidate,
    /// fanning the work across threads. `probabilities[i]` corresponds to
    /// `candidates[i]`.
    pub fn probabilities<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
    ) -> Vec<f64> {
        self.run(query, candidates, None)
    }

    /// [`ParallelIntegrator::probabilities`] recording per-worker sample
    /// totals and fan-out counters into `metrics`. The probabilities are
    /// bit-identical to the unmetered variant: instrumentation happens
    /// once per worker, outside the sampling loops.
    pub fn probabilities_with_metrics<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: &PipelineMetrics,
    ) -> Vec<f64> {
        self.run(query, candidates, Some(metrics))
    }

    fn run<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: Option<&PipelineMetrics>,
    ) -> Vec<f64> {
        let n = candidates.len();
        let mut out = vec![0.0f64; n];
        if n == 0 {
            return out;
        }
        if let Some(m) = metrics {
            m.record_parallel_objects(n);
        }
        let workers = self.worker_count().min(n);
        let chunk = n.div_ceil(workers);
        // std scoped threads (Rust ≥ 1.63) propagate worker panics on
        // scope exit, so no explicit join-error handling is needed.
        std::thread::scope(|scope| {
            for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let start = w * chunk;
                scope.spawn(move || {
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        let i = start + offset;
                        // INVARIANT: the per-object stream depends only on
                        // (base seed, candidate index) — never on thread
                        // count or ambient entropy — so answer sets are
                        // bit-identical across runs and worker layouts.
                        let mut rng = StdRng::seed_from_u64(self.object_seed(i));
                        *slot = importance_sampling_probability(
                            query.gaussian(),
                            &candidates[i],
                            query.delta(),
                            self.samples,
                            &mut rng,
                        );
                    }
                    // One histogram write per worker, after its loop: the
                    // sample *total* is layout-independent (Σ = n·samples),
                    // only the per-worker distribution varies.
                    if let Some(m) = metrics {
                        m.record_worker_samples(out_chunk.len().saturating_mul(self.samples));
                    }
                });
            }
        });
        out
    }

    /// Convenience: returns which candidates qualify (`p ≥ θ`).
    pub fn qualify<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
    ) -> Vec<bool> {
        self.probabilities(query, candidates)
            .into_iter()
            .map(|p| p >= query.theta())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn query() -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    fn candidates(n: usize) -> Vec<Vector<2>> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 0.37;
                let radius = (i % 60) as f64;
                Vector::from([500.0 + radius * angle.cos(), 500.0 + radius * angle.sin()])
            })
            .collect()
    }

    #[test]
    fn new_rejects_zero_samples() {
        assert!(matches!(
            ParallelIntegrator::new(0, 1, 1),
            Err(PrqError::InvalidSampleBudget)
        ));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let q = query();
        let cands = candidates(64);
        let p1 = ParallelIntegrator::new(5_000, 7, 1)
            .unwrap()
            .probabilities(&q, &cands);
        let p4 = ParallelIntegrator::new(5_000, 7, 4)
            .unwrap()
            .probabilities(&q, &cands);
        let p7 = ParallelIntegrator::new(5_000, 7, 7)
            .unwrap()
            .probabilities(&q, &cands);
        assert_eq!(p1, p4);
        assert_eq!(p1, p7);
    }

    #[test]
    fn same_seed_runs_produce_identical_answer_sets() {
        let q = query();
        let cands = candidates(48);
        // Two runs with the same base seed must agree bit-for-bit, both
        // in the qualifying answer set and in the raw probabilities —
        // thread count deliberately left at `0` (machine-dependent) to
        // show the guarantee does not hinge on a fixed worker layout.
        let int42 = ParallelIntegrator::new(5_000, 42, 0).unwrap();
        let a = int42.qualify(&q, &cands);
        let b = int42.qualify(&q, &cands);
        assert_eq!(a, b);
        let p1 = int42.probabilities(&q, &cands);
        let p2 = int42.probabilities(&q, &cands);
        assert_eq!(p1, p2);
        // A different base seed must actually perturb the estimates.
        let p3 = ParallelIntegrator::new(5_000, 43, 0)
            .unwrap()
            .probabilities(&q, &cands);
        assert_ne!(p1, p3);
    }

    #[test]
    fn parity_across_thread_counts_probabilities_and_metric_counters() {
        use crate::metrics::{names, PipelineMetrics};
        // The determinism guarantee extended to observability: every
        // worker layout must report bit-identical probabilities AND
        // identical metric *counter* values — only the span-duration and
        // per-worker histograms may legitimately differ.
        type NamedCounters = Vec<(&'static str, u64)>;
        let q = query();
        let cands = candidates(64);
        let mut reference: Option<(Vec<f64>, NamedCounters)> = None;
        for threads in [1usize, 2, 4, 0] {
            let metrics = PipelineMetrics::new();
            let probs = ParallelIntegrator::new(5_000, 42, threads)
                .unwrap()
                .probabilities_with_metrics(&q, &cands, &metrics);
            let counters = metrics.snapshot().counters();
            match &reference {
                None => reference = Some((probs, counters)),
                Some((p0, c0)) => {
                    assert_eq!(&probs, p0, "threads = {threads}: probabilities drifted");
                    assert_eq!(&counters, c0, "threads = {threads}: counters drifted");
                }
            }
        }
        let (_, counters) = reference.unwrap();
        let find = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(find(names::PARALLEL_OBJECTS), 64);
        assert_eq!(find(names::PARALLEL_SAMPLES), 64 * 5_000);
    }

    #[test]
    fn metered_probabilities_match_unmetered() {
        use crate::metrics::PipelineMetrics;
        let q = query();
        let cands = candidates(16);
        let integrator = ParallelIntegrator::new(2_000, 9, 3).unwrap();
        let plain = integrator.probabilities(&q, &cands);
        let metrics = PipelineMetrics::new();
        let metered = integrator.probabilities_with_metrics(&q, &cands, &metrics);
        assert_eq!(plain, metered);
    }

    #[test]
    fn matches_quadrature_oracle() {
        use crate::evaluator::{ProbabilityEvaluator, Quadrature2dEvaluator};
        let q = query();
        let cands = candidates(16);
        let probs = ParallelIntegrator::new(100_000, 3, 0)
            .unwrap()
            .probabilities(&q, &cands);
        let mut oracle = Quadrature2dEvaluator::default();
        for (c, p) in cands.iter().zip(&probs) {
            let truth = oracle.probability(q.gaussian(), c, q.delta());
            assert!((p - truth).abs() < 0.01, "{p} vs {truth}");
        }
    }

    #[test]
    fn qualify_thresholds() {
        let q = query();
        let near = Vector::from([500.0, 500.0]);
        let far = Vector::from([900.0, 900.0]);
        let flags = ParallelIntegrator::new(10_000, 1, 2)
            .unwrap()
            .qualify(&q, &[near, far]);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn empty_candidates() {
        let q = query();
        let probs = ParallelIntegrator::new(1_000, 1, 4)
            .unwrap()
            .probabilities(&q, &[]);
        assert!(probs.is_empty());
    }

    #[test]
    fn more_threads_than_candidates() {
        let q = query();
        let cands = candidates(3);
        let probs = ParallelIntegrator::new(1_000, 1, 16)
            .unwrap()
            .probabilities(&q, &cands);
        assert_eq!(probs.len(), 3);
    }
}
