//! Parallel Phase-3 integration.
//!
//! Phase 3 — the ≥97 %-of-runtime phase — parallelizes embarrassingly.
//! The default [`Phase3Mode::SharedCloud`] engine draws **one** sample
//! cloud per query from the base seed (the proposal distribution never
//! depends on the candidate, §V-A), indexes it with a
//! [`CloudGrid`], and partitions
//! *candidates* — not samples — across workers. Every worker reads the
//! same immutable grid, so results are bit-identical across thread
//! counts by construction.
//!
//! [`Phase3Mode::PerCandidate`] keeps the paper-faithful baseline: a
//! fresh importance-sampling batch per candidate, with a deterministic
//! per-object RNG stream derived from the base seed and the candidate
//! index. The two modes legitimately differ bitwise (different sample
//! streams); both are gated against the closed-form `mc_conformance`
//! oracle, and the `phase3` bench records their wall-clock gap.
//!
//! Estimator caveat: the shared cloud correlates errors *across*
//! candidates of one query. Each per-candidate estimate is still
//! unbiased with unchanged variance (see `gprq_gaussian::cloud`).

use crate::error::PrqError;
use crate::metrics::PipelineMetrics;
use crate::query::PrqQuery;
use gprq_gaussian::cloud::{CloudGrid, CloudStats, SampleCloud};
use gprq_gaussian::integrate::importance_sampling_probability;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;

/// How the integrator spends its per-object sample budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase3Mode {
    /// One shared, grid-indexed sample cloud per query; candidates are
    /// partitioned across workers. The default.
    SharedCloud,
    /// The paper's baseline: a fresh per-candidate sample batch from a
    /// per-object RNG stream. Kept for the `phase3` bench comparison and
    /// for workloads that require independent per-candidate errors.
    PerCandidate,
}

/// One query's share of a fused batch Phase 3: its immutable grid, the
/// candidate block to probe, and the query's `δ`. Built by the batch
/// executor (`crate::batch`), consumed by
/// [`ParallelIntegrator::batch_probabilities`].
#[derive(Debug)]
pub(crate) struct BatchPhase3Item<'a, const D: usize> {
    /// The query's grid-indexed sample cloud.
    pub grid: &'a CloudGrid<D>,
    /// Candidate centers surviving Phases 1–2, in work-list order.
    pub candidates: &'a [Vector<D>],
    /// The query's range radius `δ`.
    pub delta: f64,
}

/// Configuration for parallel qualification evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ParallelIntegrator {
    /// Monte-Carlo samples per object (`PerCandidate`) or in the shared
    /// per-query cloud (`SharedCloud`).
    pub samples: usize,
    /// Base RNG seed; the cloud (or object `i`'s stream) derives from it.
    pub seed: u64,
    /// Worker threads (`0` = number of available CPUs).
    pub threads: usize,
    mode: Phase3Mode,
}

impl ParallelIntegrator {
    /// Creates an integrator in the default [`Phase3Mode::SharedCloud`].
    ///
    /// # Errors
    ///
    /// [`PrqError::InvalidSampleBudget`] if `samples == 0` — a
    /// zero-sample estimate would be an unfounded hard rejection.
    pub fn new(samples: usize, seed: u64, threads: usize) -> Result<Self, PrqError> {
        if samples == 0 {
            return Err(PrqError::InvalidSampleBudget);
        }
        Ok(ParallelIntegrator {
            samples,
            seed,
            threads,
            mode: Phase3Mode::SharedCloud,
        })
    }

    /// Selects the Phase-3 engine (see [`Phase3Mode`]).
    pub fn with_mode(mut self, mode: Phase3Mode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured Phase-3 engine.
    pub fn mode(&self) -> Phase3Mode {
        self.mode
    }

    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Per-object seed: a splitmix-style mix of base seed and index so
    /// adjacent objects get decorrelated streams.
    fn object_seed(&self, index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Computes the qualification probability of every candidate,
    /// fanning the work across threads. `probabilities[i]` corresponds to
    /// `candidates[i]`.
    pub fn probabilities<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
    ) -> Vec<f64> {
        self.run(query, candidates, None)
    }

    /// [`ParallelIntegrator::probabilities`] recording per-worker sample
    /// totals and fan-out counters into `metrics`. The probabilities are
    /// bit-identical to the unmetered variant: instrumentation happens
    /// once per worker, outside the sampling loops.
    pub fn probabilities_with_metrics<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: &PipelineMetrics,
    ) -> Vec<f64> {
        self.run(query, candidates, Some(metrics))
    }

    fn run<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: Option<&PipelineMetrics>,
    ) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        if let Some(m) = metrics {
            m.record_parallel_objects(candidates.len());
        }
        match self.mode {
            Phase3Mode::SharedCloud => self.run_shared_cloud(query, candidates, metrics),
            Phase3Mode::PerCandidate => self.run_per_candidate(query, candidates, metrics),
        }
    }

    fn run_shared_cloud<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: Option<&PipelineMetrics>,
    ) -> Vec<f64> {
        let n = candidates.len();
        let mut out = vec![0.0f64; n];
        // `new` rejects samples == 0, so the floor never engages.
        let budget = NonZeroUsize::new(self.samples).unwrap_or(NonZeroUsize::MIN);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cloud = SampleCloud::draw(query.gaussian(), budget, &mut rng);
        let grid = CloudGrid::build(&cloud);
        let workers = self.worker_count().min(n);
        let chunk = n.div_ceil(workers);
        let mut worker_stats = vec![CloudStats::default(); workers];
        std::thread::scope(|scope| {
            for ((w, out_chunk), local) in out
                .chunks_mut(chunk)
                .enumerate()
                .zip(worker_stats.iter_mut())
            {
                let start = w * chunk;
                let grid = &grid;
                scope.spawn(move || {
                    // INVARIANT: the cloud is drawn once from the base
                    // seed before the fan-out, and *candidates* — never
                    // samples — are partitioned, so every worker layout
                    // reads the same immutable grid and probabilities are
                    // bit-identical across thread counts.
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = grid.probability_with_stats(
                            &candidates[start + offset],
                            query.delta(),
                            local,
                        );
                    }
                    // One histogram write per worker, after its loop. In
                    // this mode "worker samples" means distance-tested
                    // samples; the total is layout-independent (a sum
                    // over candidates), only the split varies.
                    if let Some(m) = metrics {
                        m.record_worker_samples(local.samples_tested);
                    }
                });
            }
        });
        if let Some(m) = metrics {
            let mut total = CloudStats {
                builds: 1,
                ..CloudStats::default()
            };
            for s in &worker_stats {
                total.merge(s);
            }
            m.record_cloud(&total);
        }
        out
    }

    fn run_per_candidate<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
        metrics: Option<&PipelineMetrics>,
    ) -> Vec<f64> {
        let n = candidates.len();
        let mut out = vec![0.0f64; n];
        let workers = self.worker_count().min(n);
        let chunk = n.div_ceil(workers);
        // std scoped threads (Rust ≥ 1.63) propagate worker panics on
        // scope exit, so no explicit join-error handling is needed.
        std::thread::scope(|scope| {
            for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let start = w * chunk;
                scope.spawn(move || {
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        let i = start + offset;
                        // INVARIANT: the per-object stream depends only on
                        // (base seed, candidate index) — never on thread
                        // count or ambient entropy — so answer sets are
                        // bit-identical across runs and worker layouts.
                        let mut rng = StdRng::seed_from_u64(self.object_seed(i));
                        // `new` rejects samples == 0, so the budget error
                        // cannot occur; 0.0 is the defensive fallback.
                        *slot = importance_sampling_probability(
                            query.gaussian(),
                            &candidates[i],
                            query.delta(),
                            self.samples,
                            &mut rng,
                        )
                        .unwrap_or(0.0);
                    }
                    // One histogram write per worker, after its loop: the
                    // sample *total* is layout-independent (Σ = n·samples),
                    // only the per-worker distribution varies.
                    if let Some(m) = metrics {
                        m.record_worker_samples(out_chunk.len().saturating_mul(self.samples));
                    }
                });
            }
        });
        out
    }

    /// Fused batch Phase 3: workers partition the **flattened**
    /// `(query, candidate)` space — the whole batch's work, not one
    /// query's — so a batch with many small candidate lists still keeps
    /// every worker busy. Returns per-query probability vectors (same
    /// order as `items[q].candidates`) and per-query [`CloudStats`]
    /// accumulated from that query's probes.
    ///
    /// Parity: each probe is a pure function of the query's immutable
    /// grid, the candidate, and `delta`, and the per-query stats are
    /// commutative integer sums over that query's candidates — so both
    /// outputs are bit-identical across thread counts and worker
    /// layouts, exactly like the solo shared-cloud path.
    pub(crate) fn batch_probabilities<const D: usize>(
        &self,
        items: &[BatchPhase3Item<'_, D>],
        metrics: Option<&PipelineMetrics>,
    ) -> (Vec<Vec<f64>>, Vec<CloudStats>) {
        let n_queries = items.len();
        let mut prefix = Vec::with_capacity(n_queries + 1);
        prefix.push(0usize);
        for item in items {
            let last = *prefix.last().unwrap_or(&0);
            prefix.push(last + item.candidates.len());
        }
        let total = *prefix.last().unwrap_or(&0);
        let mut query_stats = vec![CloudStats::default(); n_queries];
        if total == 0 {
            return (vec![Vec::new(); n_queries], query_stats);
        }
        if let Some(m) = metrics {
            m.record_parallel_objects(total);
        }
        let mut flat = vec![0.0f64; total];
        let workers = self.worker_count().min(total);
        let chunk = total.div_ceil(workers);
        let mut worker_stats = vec![vec![CloudStats::default(); n_queries]; workers];
        let prefix = &prefix;
        std::thread::scope(|scope| {
            for ((w, out_chunk), locals) in flat
                .chunks_mut(chunk)
                .enumerate()
                .zip(worker_stats.iter_mut())
            {
                let start = w * chunk;
                scope.spawn(move || {
                    // INVARIANT: the flat index → (query, candidate)
                    // mapping depends only on the batch's candidate
                    // counts, never on the worker layout, and every
                    // worker reads immutable per-query grids — so the
                    // probability written to each slot is layout-free.
                    let mut qi = 0usize;
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        let f = start + offset;
                        while f >= prefix[qi + 1] {
                            qi += 1;
                        }
                        let item = &items[qi];
                        *slot = item.grid.probability_with_stats(
                            &item.candidates[f - prefix[qi]],
                            item.delta,
                            &mut locals[qi],
                        );
                    }
                    // One histogram write per worker, after its loop, as
                    // on the solo shared-cloud path.
                    if let Some(m) = metrics {
                        let tested = locals.iter().map(|s| s.samples_tested).sum();
                        m.record_worker_samples(tested);
                    }
                });
            }
        });
        // Fold per-worker tallies per query. The fields are commutative
        // integer sums, so the fold order cannot affect the result.
        for locals in &worker_stats {
            for (dst, src) in query_stats.iter_mut().zip(locals.iter()) {
                dst.merge(src);
            }
        }
        let per_query = items
            .iter()
            .enumerate()
            .map(|(q, _)| flat[prefix[q]..prefix[q + 1]].to_vec())
            .collect();
        (per_query, query_stats)
    }

    /// Convenience: returns which candidates qualify (`p ≥ θ`).
    pub fn qualify<const D: usize>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[Vector<D>],
    ) -> Vec<bool> {
        self.probabilities(query, candidates)
            .into_iter()
            .map(|p| p >= query.theta())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn query() -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    fn candidates(n: usize) -> Vec<Vector<2>> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 0.37;
                let radius = (i % 60) as f64;
                Vector::from([500.0 + radius * angle.cos(), 500.0 + radius * angle.sin()])
            })
            .collect()
    }

    #[test]
    fn new_rejects_zero_samples() {
        assert!(matches!(
            ParallelIntegrator::new(0, 1, 1),
            Err(PrqError::InvalidSampleBudget)
        ));
    }

    #[test]
    fn defaults_to_shared_cloud() {
        let int = ParallelIntegrator::new(100, 1, 1).unwrap();
        assert_eq!(int.mode(), Phase3Mode::SharedCloud);
        let baseline = int.with_mode(Phase3Mode::PerCandidate);
        assert_eq!(baseline.mode(), Phase3Mode::PerCandidate);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let q = query();
        let cands = candidates(64);
        for mode in [Phase3Mode::SharedCloud, Phase3Mode::PerCandidate] {
            let run = |threads| {
                ParallelIntegrator::new(5_000, 7, threads)
                    .unwrap()
                    .with_mode(mode)
                    .probabilities(&q, &cands)
            };
            let p1 = run(1);
            assert_eq!(p1, run(4), "{mode:?}");
            assert_eq!(p1, run(7), "{mode:?}");
        }
    }

    #[test]
    fn same_seed_runs_produce_identical_answer_sets() {
        let q = query();
        let cands = candidates(48);
        // Two runs with the same base seed must agree bit-for-bit, both
        // in the qualifying answer set and in the raw probabilities —
        // thread count deliberately left at `0` (machine-dependent) to
        // show the guarantee does not hinge on a fixed worker layout.
        let int42 = ParallelIntegrator::new(5_000, 42, 0).unwrap();
        let a = int42.qualify(&q, &cands);
        let b = int42.qualify(&q, &cands);
        assert_eq!(a, b);
        let p1 = int42.probabilities(&q, &cands);
        let p2 = int42.probabilities(&q, &cands);
        assert_eq!(p1, p2);
        // A different base seed must actually perturb the estimates.
        let p3 = ParallelIntegrator::new(5_000, 43, 0)
            .unwrap()
            .probabilities(&q, &cands);
        assert_ne!(p1, p3);
    }

    #[test]
    fn parity_across_thread_counts_probabilities_and_metric_counters() {
        use crate::metrics::{names, PipelineMetrics};
        // The determinism guarantee extended to observability: for each
        // mode, every worker layout must report bit-identical
        // probabilities AND identical metric *counter* values — only the
        // span-duration and per-worker histograms may legitimately
        // differ. The cloud counters are sums over candidates, so they
        // are layout-independent too.
        type NamedCounters = Vec<(&'static str, u64)>;
        let q = query();
        let cands = candidates(64);
        for mode in [Phase3Mode::SharedCloud, Phase3Mode::PerCandidate] {
            let mut reference: Option<(Vec<f64>, NamedCounters)> = None;
            for threads in [1usize, 2, 4, 0] {
                let metrics = PipelineMetrics::new();
                let probs = ParallelIntegrator::new(5_000, 42, threads)
                    .unwrap()
                    .with_mode(mode)
                    .probabilities_with_metrics(&q, &cands, &metrics);
                let counters = metrics.snapshot().counters();
                match &reference {
                    None => reference = Some((probs, counters)),
                    Some((p0, c0)) => {
                        assert_eq!(
                            &probs, p0,
                            "{mode:?}, threads = {threads}: probabilities drifted"
                        );
                        assert_eq!(
                            &counters, c0,
                            "{mode:?}, threads = {threads}: counters drifted"
                        );
                    }
                }
            }
            let (_, counters) = reference.unwrap();
            let find = |name: &str| {
                counters
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert_eq!(find(names::PARALLEL_OBJECTS), 64);
            match mode {
                Phase3Mode::PerCandidate => {
                    assert_eq!(find(names::PARALLEL_SAMPLES), 64 * 5_000);
                    assert_eq!(find(names::CLOUD_BUILDS), 0);
                }
                Phase3Mode::SharedCloud => {
                    assert_eq!(find(names::CLOUD_BUILDS), 1);
                    // Distance-tested samples = PARALLEL_SAMPLES in this
                    // mode, and the grid must save work vs. 64 full scans.
                    assert_eq!(
                        find(names::PARALLEL_SAMPLES),
                        find(names::CLOUD_SAMPLES_TESTED)
                    );
                    assert!(find(names::CLOUD_SAMPLES_TESTED) < 64 * 5_000);
                    assert!(find(names::CLOUD_CELLS_SCANNED) > 0);
                }
            }
        }
    }

    #[test]
    fn shared_cloud_agrees_with_per_candidate_within_mc_error() {
        let q = query();
        let cands = candidates(16);
        let shared = ParallelIntegrator::new(100_000, 11, 2)
            .unwrap()
            .probabilities(&q, &cands);
        let baseline = ParallelIntegrator::new(100_000, 11, 2)
            .unwrap()
            .with_mode(Phase3Mode::PerCandidate)
            .probabilities(&q, &cands);
        for (s, b) in shared.iter().zip(&baseline) {
            assert!((s - b).abs() < 0.01, "shared {s} vs per-candidate {b}");
        }
    }

    #[test]
    fn metered_probabilities_match_unmetered() {
        use crate::metrics::PipelineMetrics;
        let q = query();
        let cands = candidates(16);
        for mode in [Phase3Mode::SharedCloud, Phase3Mode::PerCandidate] {
            let integrator = ParallelIntegrator::new(2_000, 9, 3)
                .unwrap()
                .with_mode(mode);
            let plain = integrator.probabilities(&q, &cands);
            let metrics = PipelineMetrics::new();
            let metered = integrator.probabilities_with_metrics(&q, &cands, &metrics);
            assert_eq!(plain, metered, "{mode:?}");
        }
    }

    #[test]
    fn matches_quadrature_oracle() {
        use crate::evaluator::{ProbabilityEvaluator, Quadrature2dEvaluator};
        let q = query();
        let cands = candidates(16);
        let mut oracle = Quadrature2dEvaluator::default();
        for mode in [Phase3Mode::SharedCloud, Phase3Mode::PerCandidate] {
            let probs = ParallelIntegrator::new(100_000, 3, 0)
                .unwrap()
                .with_mode(mode)
                .probabilities(&q, &cands);
            for (c, p) in cands.iter().zip(&probs) {
                let truth = oracle.probability(q.gaussian(), c, q.delta());
                assert!((p - truth).abs() < 0.01, "{mode:?}: {p} vs {truth}");
            }
        }
    }

    #[test]
    fn qualify_thresholds() {
        let q = query();
        let near = Vector::from([500.0, 500.0]);
        let far = Vector::from([900.0, 900.0]);
        let flags = ParallelIntegrator::new(10_000, 1, 2)
            .unwrap()
            .qualify(&q, &[near, far]);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn empty_candidates() {
        let q = query();
        let probs = ParallelIntegrator::new(1_000, 1, 4)
            .unwrap()
            .probabilities(&q, &[]);
        assert!(probs.is_empty());
    }

    #[test]
    fn more_threads_than_candidates() {
        let q = query();
        let cands = candidates(3);
        let probs = ParallelIntegrator::new(1_000, 1, 16)
            .unwrap()
            .probabilities(&q, &cands);
        assert_eq!(probs.len(), 3);
    }
}
