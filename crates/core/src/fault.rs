//! Deterministic fault injection for chaos testing (the `fault-inject`
//! cargo feature).
//!
//! A [`FaultPlan`] holds one [`FaultSchedule`] per [`FaultSite`]. The
//! [`ResilientExecutor`] consults the plan at each site; when a site
//! *trips*, the executor behaves as if the corresponding real-world
//! failure happened — a missing catalog, a failing index traversal, an
//! erroring evaluator, a starved sample budget, a degenerate Σ.
//!
//! Everything is deterministic: a plan built from a seed
//! ([`FaultPlan::from_seed`]) always trips the same sites on the same
//! calls, so a chaos-test failure reproduces from its seed alone. No
//! RNG state is consumed at query time — schedules are fixed counters.
//!
//! [`ResilientExecutor`]: crate::resilience::ResilientExecutor

use std::fmt;

/// A pipeline location where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// U-catalogs become unavailable at preflight (cache eviction).
    CatalogLookup,
    /// The Phase-1 index traversal aborts mid-descent.
    Phase1Traversal,
    /// A Phase-3 evaluation fails outright.
    Evaluator,
    /// One object's sample budget is starved to zero.
    SampleStarvation,
    /// Σ degenerates to a singular matrix before admission.
    SigmaDegeneracy,
    /// A conflict storm invalidates optimistic tree reads mid-descent:
    /// every `n`-th node capture races an artificial version bump, so
    /// the OLC retry ladder (and its pessimistic fallback) is forced
    /// to absorb worst-case contention.
    OlcConflict,
    /// A batch member is aborted mid-batch: the batch executor drops the
    /// affected query from the fused Phase-3 pass and recovers it through
    /// the solo re-run path, leaving every other member untouched.
    BatchAbort,
}

impl FaultSite {
    /// All sites, in a fixed order (used to derive per-site schedules
    /// from a seed). This list is append-only: `BatchAbort` sits last so
    /// seeds from before its introduction still derive the same
    /// schedules for the earlier sites.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::CatalogLookup,
        FaultSite::Phase1Traversal,
        FaultSite::Evaluator,
        FaultSite::SampleStarvation,
        FaultSite::SigmaDegeneracy,
        FaultSite::OlcConflict,
        FaultSite::BatchAbort,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::CatalogLookup => write!(f, "catalog-lookup"),
            FaultSite::Phase1Traversal => write!(f, "phase1-traversal"),
            FaultSite::Evaluator => write!(f, "evaluator"),
            FaultSite::SampleStarvation => write!(f, "sample-starvation"),
            FaultSite::SigmaDegeneracy => write!(f, "sigma-degeneracy"),
            FaultSite::OlcConflict => write!(f, "olc-conflict"),
            FaultSite::BatchAbort => write!(f, "batch-abort"),
        }
    }
}

/// When a site trips, as a function of how often it has been consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSchedule {
    /// Never trips (the default).
    #[default]
    Never,
    /// Trips on every consultation.
    Always,
    /// Trips once, on the `n`-th consultation (0-based), then never
    /// again.
    OnNth(usize),
    /// Trips on every `n`-th consultation (`n ≥ 1`): consultations
    /// `n−1, 2n−1, …` trip.
    EveryNth(usize),
}

impl FaultSchedule {
    fn trips(self, hit: usize) -> bool {
        match self {
            FaultSchedule::Never => false,
            FaultSchedule::Always => true,
            FaultSchedule::OnNth(n) => hit == n,
            FaultSchedule::EveryNth(n) => n > 0 && (hit + 1) % n == 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SiteState {
    schedule: FaultSchedule,
    hits: usize,
}

/// A deterministic per-site fault schedule with consultation counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    catalog: SiteState,
    phase1: SiteState,
    evaluator: SiteState,
    starvation: SiteState,
    sigma: SiteState,
    olc_conflict: SiteState,
    batch_abort: SiteState,
}

/// `splitmix64` — the standard seed expander; deterministic and cheap.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan in which no site ever trips.
    pub fn quiet() -> Self {
        Self::default()
    }

    /// Derives a plan deterministically from a seed: each site draws a
    /// schedule kind and parameter from a `splitmix64` stream, so
    /// distinct seeds exercise distinct fault mixes and the same seed
    /// always reproduces the same run.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut plan = FaultPlan::quiet();
        for site in FaultSite::ALL {
            let word = splitmix64(&mut state);
            // 2 bits of kind, 4 bits of parameter — small n keeps the
            // faults frequent enough to bite in short test runs.
            let n = usize::try_from((word >> 2) & 0xF).unwrap_or(15);
            let schedule = match word & 0b11 {
                0 => FaultSchedule::Never,
                1 => FaultSchedule::OnNth(n),
                2 => FaultSchedule::EveryNth(n.max(1)),
                _ => FaultSchedule::Always,
            };
            plan = plan.with_schedule(site, schedule);
        }
        plan
    }

    /// Sets the schedule for one site (builder style).
    pub fn with_schedule(mut self, site: FaultSite, schedule: FaultSchedule) -> Self {
        self.state_mut(site).schedule = schedule;
        self
    }

    /// The schedule configured for `site`.
    pub fn schedule(&self, site: FaultSite) -> FaultSchedule {
        match site {
            FaultSite::CatalogLookup => self.catalog.schedule,
            FaultSite::Phase1Traversal => self.phase1.schedule,
            FaultSite::Evaluator => self.evaluator.schedule,
            FaultSite::SampleStarvation => self.starvation.schedule,
            FaultSite::SigmaDegeneracy => self.sigma.schedule,
            FaultSite::OlcConflict => self.olc_conflict.schedule,
            FaultSite::BatchAbort => self.batch_abort.schedule,
        }
    }

    /// How many times `site` has been consulted so far.
    pub fn hits(&self, site: FaultSite) -> usize {
        match site {
            FaultSite::CatalogLookup => self.catalog.hits,
            FaultSite::Phase1Traversal => self.phase1.hits,
            FaultSite::Evaluator => self.evaluator.hits,
            FaultSite::SampleStarvation => self.starvation.hits,
            FaultSite::SigmaDegeneracy => self.sigma.hits,
            FaultSite::OlcConflict => self.olc_conflict.hits,
            FaultSite::BatchAbort => self.batch_abort.hits,
        }
    }

    /// Consults the plan at `site`: advances the site's counter and
    /// reports whether the fault fires on this consultation.
    pub fn trip(&mut self, site: FaultSite) -> bool {
        let state = self.state_mut(site);
        let fired = state.schedule.trips(state.hits);
        state.hits += 1;
        fired
    }

    fn state_mut(&mut self, site: FaultSite) -> &mut SiteState {
        match site {
            FaultSite::CatalogLookup => &mut self.catalog,
            FaultSite::Phase1Traversal => &mut self.phase1,
            FaultSite::Evaluator => &mut self.evaluator,
            FaultSite::SampleStarvation => &mut self.starvation,
            FaultSite::SigmaDegeneracy => &mut self.sigma,
            FaultSite::OlcConflict => &mut self.olc_conflict,
            FaultSite::BatchAbort => &mut self.batch_abort,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_fire_as_documented() {
        assert!(!FaultSchedule::Never.trips(0));
        assert!(FaultSchedule::Always.trips(7));
        assert!(FaultSchedule::OnNth(2).trips(2));
        assert!(!FaultSchedule::OnNth(2).trips(3));
        assert!(FaultSchedule::EveryNth(3).trips(2));
        assert!(FaultSchedule::EveryNth(3).trips(5));
        assert!(!FaultSchedule::EveryNth(3).trips(3));
        assert!(!FaultSchedule::EveryNth(0).trips(0), "n = 0 never fires");
    }

    #[test]
    fn trip_advances_counters_per_site() {
        let mut plan = FaultPlan::quiet()
            .with_schedule(FaultSite::Evaluator, FaultSchedule::OnNth(1))
            .with_schedule(FaultSite::CatalogLookup, FaultSchedule::Always);
        assert!(!plan.trip(FaultSite::Evaluator)); // hit 0
        assert!(plan.trip(FaultSite::Evaluator)); // hit 1 fires
        assert!(!plan.trip(FaultSite::Evaluator)); // once only
        assert_eq!(plan.hits(FaultSite::Evaluator), 3);
        // Other sites' counters are independent.
        assert_eq!(plan.hits(FaultSite::CatalogLookup), 0);
        assert!(plan.trip(FaultSite::CatalogLookup));
        assert!(!plan.trip(FaultSite::Phase1Traversal));
    }

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(42);
        let b = FaultPlan::from_seed(42);
        for site in FaultSite::ALL {
            assert_eq!(a.schedule(site), b.schedule(site), "{site}");
        }
        // Across a handful of seeds, at least one schedule differs.
        let differs = (0u64..8).any(|s| {
            let p = FaultPlan::from_seed(s);
            FaultSite::ALL
                .iter()
                .any(|&site| p.schedule(site) != a.schedule(site))
        });
        assert!(differs, "seeds should produce distinct plans");
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = FaultSite::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            [
                "catalog-lookup",
                "phase1-traversal",
                "evaluator",
                "sample-starvation",
                "sigma-degeneracy",
                "olc-conflict",
                "batch-abort"
            ]
        );
    }
}
