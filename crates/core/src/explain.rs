//! Query explanation — an `EXPLAIN` for probabilistic range queries.
//!
//! Given a query and a strategy set, [`explain`] derives everything the
//! executor *would* use — θ-region radius and box, oblique half-widths,
//! BF radii, region volumes, and (given a density estimate) the expected
//! number of Phase-3 integrations — without touching an index. Intended
//! for interactive debugging, query planning, and the experiment
//! harness's geometry printouts.

use crate::cost::{expected_integrations, region_volumes, DensityEstimate, RegionVolumes};
use crate::error::PrqError;
use crate::metrics::PipelineMetrics;
use crate::query::PrqQuery;
use crate::strategy::bf::{BfBounds, RejectBound};
use crate::strategy::or::OrFilter;
use crate::strategy::StrategySet;
use crate::theta_region::ThetaRegion;
use gprq_obs::{MetricValue, MetricsSnapshot};
use std::fmt;

/// The derived execution plan of a query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Which strategies the plan composes.
    pub strategies: StrategySet,
    /// `r_θ` (normalized θ-region radius); `None` when RR/OR are absent.
    pub r_theta: Option<f64>,
    /// θ-region bounding-box half-widths per axis.
    pub theta_box_half_widths: Option<Vec<f64>>,
    /// Oblique-box half-widths in the eigenbasis (OR).
    pub oblique_half_widths: Option<Vec<f64>>,
    /// BF reject radius `α∥`; `None` when BF is absent, `Some(None)`
    /// flattened to `RejectAll` via [`QueryPlan::provably_empty`].
    pub alpha_reject: Option<f64>,
    /// BF accept radius `α⊥` (absent in the no-hole regime).
    pub alpha_accept: Option<f64>,
    /// `true` when BF proves the whole answer set empty.
    pub provably_empty: bool,
    /// Integration-region volumes (RR / OR / BF / intersection).
    pub volumes: RegionVolumes,
    /// Expected Phase-3 integrations under the supplied density.
    pub expected_integrations: f64,
    /// Observed runtime metrics, when the plan was derived from a live
    /// [`PipelineMetrics`] via [`explain_with_metrics`]. Lets the plan
    /// printout contrast *predicted* cost with *measured* counters.
    pub metrics: Option<MetricsSnapshot>,
}

/// Derives the execution plan for `query` under `strategies`, predicting
/// cost against `density`.
///
/// # Errors
///
/// Propagates strategy-set validation and θ-region errors.
pub fn explain<const D: usize>(
    query: &PrqQuery<D>,
    strategies: StrategySet,
    density: &DensityEstimate,
) -> Result<QueryPlan, PrqError> {
    strategies.validate()?;
    let volumes = region_volumes(query, 0x5EED)?;

    let (r_theta, theta_box, oblique) = if strategies.rr || strategies.or {
        let region = ThetaRegion::for_query(query)?;
        let or = OrFilter::new(query, &region);
        (
            Some(region.r_theta()),
            Some(region.box_half_widths().as_slice().to_vec()),
            Some(or.half_widths().as_slice().to_vec()),
        )
    } else {
        (None, None, None)
    };

    let (alpha_reject, alpha_accept, provably_empty) = if strategies.bf {
        let bounds = BfBounds::exact(query);
        match bounds.reject {
            RejectBound::Radius(r) => (Some(r), bounds.accept, false),
            RejectBound::RejectAll => (None, None, true),
        }
    } else {
        (None, None, false)
    };

    let expected = if provably_empty {
        0.0
    } else {
        expected_integrations(&volumes, density, strategies)
    };

    Ok(QueryPlan {
        strategies,
        r_theta,
        theta_box_half_widths: theta_box,
        oblique_half_widths: if strategies.or { oblique } else { None },
        alpha_reject,
        alpha_accept,
        provably_empty,
        volumes,
        expected_integrations: expected,
        metrics: None,
    })
}

/// [`explain`] augmented with a snapshot of observed pipeline metrics,
/// so the rendered plan contrasts predicted cost with measured counters.
///
/// # Errors
///
/// Propagates strategy-set validation and θ-region errors, exactly as
/// [`explain`] does.
pub fn explain_with_metrics<const D: usize>(
    query: &PrqQuery<D>,
    strategies: StrategySet,
    density: &DensityEstimate,
    metrics: &PipelineMetrics,
) -> Result<QueryPlan, PrqError> {
    let mut plan = explain(query, strategies, density)?;
    plan.metrics = Some(metrics.snapshot());
    Ok(plan)
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: strategies = {}", self.strategies.name())?;
        if self.provably_empty {
            return writeln!(f, "  answer set is provably empty (BF reject-all)");
        }
        if let Some(r) = self.r_theta {
            writeln!(f, "  θ-region radius r_θ = {r:.4}")?;
        }
        if let Some(w) = &self.theta_box_half_widths {
            writeln!(f, "  θ-box half-widths  = {w:.2?}")?;
        }
        if let Some(w) = &self.oblique_half_widths {
            writeln!(f, "  oblique half-widths = {w:.2?}")?;
        }
        if let Some(a) = self.alpha_reject {
            match self.alpha_accept {
                Some(b) => writeln!(f, "  BF radii: reject α∥ = {a:.2}, accept α⊥ = {b:.2}")?,
                None => writeln!(f, "  BF radii: reject α∥ = {a:.2}, no accept hole")?,
            }
        }
        writeln!(
            f,
            "  region volumes: RR {:.1}, OR {:.1}, BF {:.1}, ALL {:.1}",
            self.volumes.rr, self.volumes.or, self.volumes.bf, self.volumes.all
        )?;
        writeln!(
            f,
            "  expected integrations ≈ {:.0}",
            self.expected_integrations
        )?;
        if let Some(snap) = &self.metrics {
            writeln!(f, "  observed metrics:")?;
            for entry in snap.iter() {
                match entry.value {
                    MetricValue::Counter(v) => writeln!(f, "    {} = {v}", entry.name)?,
                    MetricValue::Gauge(v) => writeln!(f, "    {} = {v} (gauge)", entry.name)?,
                    MetricValue::Histogram(h) => writeln!(
                        f,
                        "    {}: count {} p50 {} p99 {}",
                        entry.name, h.count, h.p50, h.p99
                    )?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::{Matrix, Vector};

    fn query(gamma: f64, delta: f64, theta: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([0.0, 0.0]), sigma, delta, theta).unwrap()
    }

    fn density() -> DensityEstimate {
        DensityEstimate::uniform(50_747, 1_000_000.0)
    }

    #[test]
    fn full_plan_has_all_components() {
        let plan = explain(&query(10.0, 25.0, 0.01), StrategySet::ALL, &density()).unwrap();
        assert!(plan.r_theta.is_some());
        assert!(plan.theta_box_half_widths.is_some());
        assert!(plan.oblique_half_widths.is_some());
        assert!(plan.alpha_reject.is_some());
        assert!(plan.alpha_accept.is_some());
        assert!(!plan.provably_empty);
        assert!(plan.expected_integrations > 0.0);
        // Display renders every section.
        let text = plan.to_string();
        assert!(text.contains("r_θ"));
        assert!(text.contains("BF radii"));
        assert!(text.contains("expected integrations"));
    }

    #[test]
    fn bf_only_plan_omits_regions() {
        let plan = explain(&query(10.0, 25.0, 0.01), StrategySet::BF, &density()).unwrap();
        assert!(plan.r_theta.is_none());
        assert!(plan.theta_box_half_widths.is_none());
        assert!(plan.oblique_half_widths.is_none());
        assert!(plan.alpha_reject.is_some());
    }

    #[test]
    fn provably_empty_plan() {
        // δ far too small for θ = 0.49.
        let plan = explain(&query(10.0, 0.5, 0.49), StrategySet::BF, &density()).unwrap();
        assert!(plan.provably_empty);
        assert_eq!(plan.expected_integrations, 0.0);
        assert!(plan.to_string().contains("provably empty"));
    }

    #[test]
    fn expected_integrations_ordering_matches_strategy_strength() {
        let q = query(10.0, 25.0, 0.01);
        let d = density();
        let rr = explain(&q, StrategySet::RR, &d)
            .unwrap()
            .expected_integrations;
        let all = explain(&q, StrategySet::ALL, &d)
            .unwrap()
            .expected_integrations;
        assert!(
            all < rr,
            "ALL ({all}) should predict less work than RR ({rr})"
        );
    }

    #[test]
    fn plan_with_metrics_renders_observed_section() {
        use crate::metrics::{names, PipelineMetrics};
        let metrics = PipelineMetrics::new();
        metrics.registry().counter(names::QUERIES).add(7);
        let plan = explain_with_metrics(
            &query(10.0, 25.0, 0.01),
            StrategySet::ALL,
            &density(),
            &metrics,
        )
        .unwrap();
        let snap = plan.metrics.as_ref().unwrap();
        assert_eq!(snap.counter(names::QUERIES), Some(7));
        let text = plan.to_string();
        assert!(text.contains("observed metrics"), "{text}");
        assert!(text.contains("prq_queries_total = 7"), "{text}");
        // The plain `explain` path carries no snapshot and no section.
        let bare = explain(&query(10.0, 25.0, 0.01), StrategySet::ALL, &density()).unwrap();
        assert!(bare.metrics.is_none());
        assert!(!bare.to_string().contains("observed metrics"));
    }

    #[test]
    fn invalid_strategy_set_rejected() {
        let or_only = StrategySet {
            rr: false,
            or: true,
            bf: false,
        };
        assert!(explain(&query(10.0, 25.0, 0.01), or_only, &density()).is_err());
    }
}
