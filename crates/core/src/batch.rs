//! Batched query execution: N queries planned and run as **one unit**.
//!
//! The batch engine amortizes the three pipeline phases across queries
//! without changing a single answer bit:
//!
//! 1. **Fused Phase 1** — all Phase-1 rectangles descend the R\*-tree in
//!    one multi-rectangle traversal ([`Phase1Index::search_rects_into`]),
//!    probes sorted by rectangle origin so near-identical queries share
//!    node visits. Per-query candidates *and* [`SearchStats`] are
//!    bitwise identical to N solo descents (pinned by the rtree parity
//!    suite).
//! 2. **Fused Phase 2** — each query's candidates run through the same
//!    `PreparedQuery::filter_candidates` loop the solo executor uses.
//! 3. **Fused Phase 3** — queries sharing a covariance Σ share one
//!    mean-free offset table `w_j = L·z_j` from the [`SigmaFactorCache`]
//!    (the expensive Box–Muller draws happen once per Σ-group), and the
//!    whole batch's `(query, candidate)` work is flattened across the
//!    [`ParallelIntegrator`] worker pool.
//!
//! # The parity contract
//!
//! For every query `q` in the batch, the answer set, the qualification
//! probabilities, and the integer counters of [`QueryStats`] are
//! **bitwise identical** to the sequential
//!
//! ```ignore
//! PrqExecutor::execute(tree, q, &mut MonteCarloEvaluator::new(
//!     integrator.samples,
//!     cloud_seed(integrator.seed, q.gaussian()),
//! ))
//! ```
//!
//! run. This holds by construction, not by accident:
//!
//! * the per-query cloud seed ([`cloud_seed`]) mixes the base seed with
//!   the covariance bits only — so two same-Σ queries map to the same
//!   seed, hence the same `z`-stream, whether drawn fresh (solo) or once
//!   (cached offsets);
//! * [`GaussianSampler::sample`] materializes `L·z` *before* the single
//!   component-wise mean add, so re-centering a cached offset column is
//!   the same float operation sequence as a fresh draw
//!   (`SampleCloud::from_offsets` parity tests);
//! * grid probes are pure functions of (grid, candidate, δ), and the
//!   flattened worker partition never splits a sample stream.
//!
//! Estimator caveat (same as the PR-5 shared cloud, one level up):
//! same-Σ queries share one sample cloud, so their Monte-Carlo errors
//! are *correlated across queries*. Each per-candidate estimate is still
//! unbiased with unchanged variance.
//!
//! # Fault degradation
//!
//! Under the `fault-inject` feature, `QueryBatch::execute_with_faults`
//! consults `FaultSite::BatchAbort` once per query: a tripped query is
//! dropped from the fused Phase-3 pass and recovered through a solo
//! Phase-3 re-run with the same derived cloud seed — its answers are
//! bitwise identical, only its wall-clock differs — and is reported with
//! [`BatchOutcome::recovered`] set plus a `prq_batch_aborts_total` tick.
//! Unaffected queries never see the fault.
//!
//! [`GaussianSampler::sample`]: gprq_gaussian::sampler::GaussianSampler::sample
//! [`SearchStats`]: gprq_rtree::SearchStats

use crate::error::PrqError;
use crate::executor::{PrqExecutor, QueryStats};
use crate::ext::parallel::{BatchPhase3Item, ParallelIntegrator};
use crate::metrics::Phase;
use crate::query::PrqQuery;
use gprq_gaussian::cloud::{CloudGrid, CloudStats, SampleCloud};
use gprq_gaussian::Gaussian;
use gprq_linalg::Vector;
use gprq_rtree::{Phase1Index, Rect, SearchStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Default Σ-group cache capacity (offset tables retained across
/// batches). 32 tables of 50 000 × D doubles ≈ 25 MB at D = 2 — small
/// next to the tree, large enough that realistic workloads (a handful
/// of sensor models) never evict.
const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Splitmix64 finalizer — the same mixer the fault planner and the
/// per-object seed derivation use, so seed streams stay decorrelated.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-query cloud seed: `base_seed` mixed with the bit patterns of
/// the covariance matrix — and **only** the covariance. The mean must
/// not enter: two queries sharing Σ must map to the same seed so the
/// cached offset table reproduces, bitwise, the cloud a solo
/// `MonteCarloEvaluator` seeded with this value would draw.
///
/// Consequence (documented, deliberate): same-Σ queries share one
/// `z`-stream, so their Monte-Carlo errors are correlated *across
/// queries* — the batch-level analogue of the PR-5 shared-cloud caveat.
pub fn cloud_seed<const D: usize>(base_seed: u64, gaussian: &Gaussian<D>) -> u64 {
    let cov = gaussian.covariance();
    let mut state = base_seed ^ 0x9E37_79B9_7F4A_7C15;
    for r in 0..D {
        for c in 0..D {
            state = splitmix(state ^ cov[(r, c)].to_bits());
        }
    }
    state
}

/// One cached Σ-group: the key (covariance bits, sample count, seed)
/// and the mean-free offset table drawn from it.
#[derive(Debug)]
struct CacheEntry<const D: usize> {
    sigma_bits: Vec<u64>,
    samples: usize,
    seed: u64,
    offsets: [Vec<f64>; D],
}

/// A keyed cache of mean-free sample-offset tables (`w_j = L·z_j`),
/// shared by every query whose covariance matches bitwise.
///
/// Keying on the covariance *bits* (plus sample budget and seed) is
/// exact: identical Σ bits give an identical Cholesky factor (the
/// factorization is deterministic), hence an identical offset table.
/// Eviction is FIFO and fully deterministic; a re-draw after eviction
/// reproduces the evicted table bitwise (same seed, fresh
/// [`StandardNormal`] stream), so cache capacity can never change an
/// answer — only how often the Box–Muller work is repeated.
///
/// [`StandardNormal`]: gprq_gaussian::sampler::StandardNormal
#[derive(Debug)]
pub struct SigmaFactorCache<const D: usize> {
    capacity: usize,
    entries: Vec<CacheEntry<D>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<const D: usize> SigmaFactorCache<D> {
    /// Creates a cache holding at most `capacity` offset tables
    /// (floored to 1 — a zero-capacity cache would still need one live
    /// table to serve the current query).
    pub fn new(capacity: usize) -> Self {
        SigmaFactorCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Cached tables currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no table is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from a cached table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to draw a fresh table.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Tables evicted by the FIFO policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns the index of the offset table for `(Σ, samples, seed)`,
    /// drawing (and possibly evicting, FIFO) on a miss. The `bool` is
    /// `true` on a hit. The index is only valid until the next
    /// `get_or_draw` call — use it immediately via
    /// [`SigmaFactorCache::offsets`].
    fn get_or_draw(
        &mut self,
        gaussian: &Gaussian<D>,
        samples: NonZeroUsize,
        seed: u64,
    ) -> (usize, bool) {
        let cov = gaussian.covariance();
        let mut sigma_bits = Vec::with_capacity(D * D);
        for r in 0..D {
            for c in 0..D {
                sigma_bits.push(cov[(r, c)].to_bits());
            }
        }
        let n = samples.get();
        if let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.sigma_bits == sigma_bits && e.samples == n && e.seed == seed)
        {
            self.hits += 1;
            return (idx, true);
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let offsets = SampleCloud::draw_offsets(gaussian.cholesky(), samples, &mut rng);
        self.entries.push(CacheEntry {
            sigma_bits,
            samples: n,
            seed,
            offsets,
        });
        (self.entries.len() - 1, false)
    }

    /// The offset table at `idx` (an index just returned by
    /// `get_or_draw`).
    fn offsets(&self, idx: usize) -> &[Vec<f64>; D] {
        &self.entries[idx].offsets
    }
}

/// Result of one query inside a batch — the batch analogue of
/// [`PrqOutcome`](crate::PrqOutcome), extended with the Phase-3 work
/// list and its probabilities so callers (and the parity suite) can see
/// exactly what was integrated.
#[derive(Debug)]
pub struct BatchOutcome<'t, const D: usize, T> {
    /// Objects satisfying `Pr(‖x − o‖ ≤ δ) ≥ θ` — BF sure-accepts first
    /// (candidate order), then Phase-3 qualifiers (work-list order),
    /// exactly as the solo executor emits them.
    pub answers: Vec<(&'t Vector<D>, &'t T)>,
    /// The Phase-3 work list (candidates that needed integration), in
    /// the order they were integrated.
    pub integrated: Vec<(&'t Vector<D>, &'t T)>,
    /// `probabilities[i]` is the qualification probability of
    /// `integrated[i]`.
    pub probabilities: Vec<f64>,
    /// Execution statistics. Integer counters match the solo run
    /// bitwise; phase times are the fused phase's wall-clock divided
    /// evenly across the batch (per-query attribution of shared work).
    pub stats: QueryStats,
    /// `true` when this query was dropped from the fused Phase-3 pass
    /// by a `FaultSite::BatchAbort` fault (`fault-inject`) and recovered
    /// through the solo re-run path (same seed — same answers).
    pub recovered: bool,
}

/// A batch execution engine: plans N queries and runs them as one unit
/// over a [`Phase1Index`], a [`ParallelIntegrator`], and a
/// [`SigmaFactorCache`], flushing per-query [`QueryStats`] into the
/// executor's [`PipelineMetrics`](crate::PipelineMetrics) exactly once
/// each (plus one `record_batch` per call).
///
/// ```
/// use gprq_core::ext::parallel::ParallelIntegrator;
/// use gprq_core::{PrqExecutor, PrqQuery, QueryBatch, StrategySet};
/// use gprq_linalg::{Matrix, Vector};
/// use gprq_rtree::{RStarParams, RTree};
///
/// let points: Vec<(Vector<2>, u32)> = (0..400)
///     .map(|i| (Vector::from([(i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0]), i))
///     .collect();
/// let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
/// let sigma = Matrix::identity().scale(15.0);
/// let queries: Vec<PrqQuery<2>> = (0..4)
///     .map(|i| {
///         PrqQuery::new(Vector::from([30.0 + i as f64 * 8.0, 40.0]), sigma, 12.0, 0.05).unwrap()
///     })
///     .collect();
/// let mut batch = QueryBatch::new(
///     PrqExecutor::new(StrategySet::ALL),
///     ParallelIntegrator::new(4_000, 7, 1).unwrap(),
/// );
/// let outcomes = batch.execute(&tree, &queries).unwrap();
/// assert_eq!(outcomes.len(), 4);
/// // Queries 1..4 share Σ with query 0: one offset table serves all.
/// assert_eq!(batch.cache().misses(), 1);
/// assert_eq!(batch.cache().hits(), 3);
/// ```
#[derive(Debug)]
pub struct QueryBatch<'c, const D: usize> {
    executor: PrqExecutor<'c>,
    integrator: ParallelIntegrator,
    cache: SigmaFactorCache<D>,
}

impl<'c, const D: usize> QueryBatch<'c, D> {
    /// Creates a batch engine with the default Σ-cache capacity.
    ///
    /// The integrator's `samples`/`seed` define the sequential baseline
    /// the batch is parity-checked against (see the module docs); its
    /// `threads` only changes wall-clock, never bits.
    pub fn new(executor: PrqExecutor<'c>, integrator: ParallelIntegrator) -> Self {
        QueryBatch {
            executor,
            integrator,
            cache: SigmaFactorCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Overrides the Σ-cache capacity (floored to 1). Capacity affects
    /// only how often offset tables are re-drawn — never any answer.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = SigmaFactorCache::new(capacity);
        self
    }

    /// The Σ-group cache (hit/miss/eviction observability).
    pub fn cache(&self) -> &SigmaFactorCache<D> {
        &self.cache
    }

    /// The cloud seed this batch derives for `query` — the seed a solo
    /// `MonteCarloEvaluator` must use to reproduce the batched answer
    /// bitwise.
    pub fn cloud_seed_for(&self, query: &PrqQuery<D>) -> u64 {
        cloud_seed(self.integrator.seed, query.gaussian())
    }

    /// Executes `queries` as one batch. `outcomes[i]` answers
    /// `queries[i]`.
    ///
    /// # Errors
    ///
    /// Planning any query fails the whole batch (a misconfigured
    /// strategy set or θ-region is a caller bug, not a data condition):
    /// [`PrqError::NoPrimaryStrategy`],
    /// [`PrqError::ThetaRegionUndefined`], or
    /// [`PrqError::CatalogDimensionMismatch`] — the same preconditions
    /// as [`PrqExecutor::execute`].
    pub fn execute<'t, T, I>(
        &mut self,
        tree: &'t I,
        queries: &[PrqQuery<D>],
    ) -> Result<Vec<BatchOutcome<'t, D, T>>, PrqError>
    where
        I: Phase1Index<D, T>,
    {
        self.run(tree, queries, &mut || false)
    }

    /// [`QueryBatch::execute`] consulting `plan` at the
    /// [`FaultSite::BatchAbort`](crate::fault::FaultSite::BatchAbort)
    /// site once per query, in index order: tripped queries are dropped
    /// from the fused Phase-3 pass and recovered through the solo
    /// re-run path (same seed, bitwise-identical answers,
    /// [`BatchOutcome::recovered`] set). Untripped queries are
    /// unaffected.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryBatch::execute`] — faults degrade
    /// individual queries, they never fail the batch.
    #[cfg(feature = "fault-inject")]
    pub fn execute_with_faults<'t, T, I>(
        &mut self,
        tree: &'t I,
        queries: &[PrqQuery<D>],
        plan: &mut crate::fault::FaultPlan,
    ) -> Result<Vec<BatchOutcome<'t, D, T>>, PrqError>
    where
        I: Phase1Index<D, T>,
    {
        self.run(tree, queries, &mut || {
            plan.trip(crate::fault::FaultSite::BatchAbort)
        })
    }

    /// The batch pipeline. `should_abort` is polled once per query, in
    /// index order, between Phase 2 and Phase 3 — the single
    /// fault-injection point — so fault scheduling never perturbs any
    /// seed stream.
    fn run<'t, T, I>(
        &mut self,
        tree: &'t I,
        queries: &[PrqQuery<D>],
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<BatchOutcome<'t, D, T>>, PrqError>
    where
        I: Phase1Index<D, T>,
    {
        let n = queries.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let metrics = self.executor.metrics();
        let share = |total: Duration| total / u32::try_from(n).unwrap_or(u32::MAX);

        let plans = queries
            .iter()
            .map(|q| self.executor.plan(q))
            .collect::<Result<Vec<_>, _>>()?;

        // --- Fused Phase 1: one multi-rectangle descent. ---------------
        let span1 = metrics.map(|m| m.phase_span(Phase::Search));
        let t0 = Instant::now();
        let mut probes: Vec<(usize, Rect<D>)> = Vec::with_capacity(n);
        for (q, plan) in plans.iter().enumerate() {
            if let Some(rect) = plan.search_rect(&queries[q])? {
                probes.push((q, rect));
            }
        }
        // Sort probes by rectangle origin (lexicographic, total order)
        // so overlapping queries sit adjacently in the active set during
        // the shared descent; index tie-break keeps the order total and
        // deterministic. Per-query results are order-independent.
        probes.sort_by(|(qa, ra), (qb, rb)| {
            for d in 0..D {
                match ra.lo[d].total_cmp(&rb.lo[d]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            qa.cmp(qb)
        });
        let probe_rects: Vec<Rect<D>> = probes.iter().map(|&(_, r)| r).collect();
        let mut probe_stats = vec![SearchStats::default(); probes.len()];
        let mut probe_out: Vec<Vec<(&'t Vector<D>, &'t T)>> = vec![Vec::new(); probes.len()];
        tree.search_rects_into(&probe_rects, &mut probe_stats, &mut probe_out);

        let mut stats = vec![QueryStats::default(); n];
        let mut candidates: Vec<Vec<(&'t Vector<D>, &'t T)>> = (0..n).map(|_| Vec::new()).collect();
        for (slot, &(q, _)) in probes.iter().enumerate() {
            stats[q].absorb_search(&probe_stats[slot]);
            candidates[q] = std::mem::take(&mut probe_out[slot]);
        }
        let phase1_each = share(t0.elapsed());
        for (st, cand) in stats.iter_mut().zip(&candidates) {
            st.phase1_candidates = cand.len();
            st.phase1_time = phase1_each;
        }
        if let Some(span) = span1 {
            span.finish();
        }

        // --- Fused Phase 2: the solo filter loop, per query. -----------
        let span2 = metrics.map(|m| m.phase_span(Phase::Filter));
        let t1 = Instant::now();
        let mut answers: Vec<Vec<(&'t Vector<D>, &'t T)>> = (0..n).map(|_| Vec::new()).collect();
        let mut work: Vec<Vec<(&'t Vector<D>, &'t T)>> = (0..n).map(|_| Vec::new()).collect();
        for q in 0..n {
            plans[q].filter_candidates(
                &queries[q],
                &candidates[q],
                &mut stats[q],
                &mut answers[q],
                &mut work[q],
            );
        }
        let phase2_each = share(t1.elapsed());
        for st in &mut stats {
            st.phase2_time = phase2_each;
        }
        if let Some(span) = span2 {
            span.finish();
        }

        // --- Fault gate: one poll per query, in index order. -----------
        let aborted: Vec<bool> = (0..n).map(|_| should_abort()).collect();

        // --- Fused Phase 3: Σ-grouped clouds, flattened fan-out. -------
        let span3 = metrics.map(|m| m.phase_span(Phase::Integrate));
        let t2 = Instant::now();
        let budget = NonZeroUsize::new(self.integrator.samples).unwrap_or(NonZeroUsize::MIN);
        let live: Vec<usize> = (0..n).filter(|&q| !aborted[q]).collect();
        // Every live query consults the cache and builds its grid even
        // with an empty work list — the solo evaluator's `begin_query`
        // builds unconditionally, and `cloud_builds == 1` parity (plus
        // deterministic hit/miss accounting) depends on matching that.
        let mut batch_hits = 0usize;
        let mut batch_misses = 0usize;
        let mut grids: Vec<CloudGrid<D>> = Vec::with_capacity(live.len());
        for &q in &live {
            let gaussian = queries[q].gaussian();
            let seed = cloud_seed(self.integrator.seed, gaussian);
            let (idx, hit) = self.cache.get_or_draw(gaussian, budget, seed);
            if hit {
                batch_hits += 1;
            } else {
                batch_misses += 1;
            }
            grids.push(CloudGrid::build_recentered(
                gaussian.mean(),
                self.cache.offsets(idx),
            ));
        }
        let centers: Vec<Vec<Vector<D>>> = live
            .iter()
            .map(|&q| work[q].iter().map(|&(p, _)| *p).collect())
            .collect();
        let items: Vec<BatchPhase3Item<'_, D>> = live
            .iter()
            .enumerate()
            .map(|(slot, &q)| BatchPhase3Item {
                grid: &grids[slot],
                candidates: &centers[slot],
                delta: queries[q].delta(),
            })
            .collect();
        let (probs, cloud_stats) = self.integrator.batch_probabilities(&items, metrics);
        drop(items);

        let mut probabilities: Vec<Vec<f64>> = (0..n).map(|_| Vec::new()).collect();
        for (&q, (pvec, mut cs)) in live.iter().zip(probs.into_iter().zip(cloud_stats)) {
            stats[q].integrations = work[q].len();
            // The solo evaluator counts its one grid build in
            // `begin_query`; attribute the (possibly cached) build here.
            cs.builds = 1;
            stats[q].absorb_cloud(&cs);
            for (j, &(point, data)) in work[q].iter().enumerate() {
                if pvec[j] >= queries[q].theta() {
                    answers[q].push((point, data));
                }
            }
            probabilities[q] = pvec;
        }

        // --- Recovery: solo Phase-3 re-run for aborted queries. --------
        for q in (0..n).filter(|&q| aborted[q]) {
            if let Some(m) = metrics {
                m.record_batch_abort();
            }
            let gaussian = queries[q].gaussian();
            let mut rng = StdRng::seed_from_u64(cloud_seed(self.integrator.seed, gaussian));
            let cloud = SampleCloud::draw(gaussian, budget, &mut rng);
            let grid = CloudGrid::build(&cloud);
            let mut cs = CloudStats {
                builds: 1,
                ..CloudStats::default()
            };
            for &(point, data) in &work[q] {
                stats[q].integrations += 1;
                let p = grid.probability_with_stats(point, queries[q].delta(), &mut cs);
                probabilities[q].push(p);
                if p >= queries[q].theta() {
                    answers[q].push((point, data));
                }
            }
            stats[q].absorb_cloud(&cs);
        }
        let phase3_each = share(t2.elapsed());
        for st in &mut stats {
            st.phase3_time = phase3_each;
        }
        if let Some(span) = span3 {
            span.finish();
        }

        // --- Flush: once per query, in index order, plus the batch. ----
        let mut outcomes = Vec::with_capacity(n);
        for (q, ((st, ans), (intg, prob))) in stats
            .iter_mut()
            .zip(answers)
            .zip(work.into_iter().zip(probabilities))
            .enumerate()
        {
            st.answers = ans.len();
            if let Some(m) = metrics {
                m.record_query(st);
            }
            outcomes.push(BatchOutcome {
                answers: ans,
                integrated: intg,
                probabilities: prob,
                stats: *st,
                recovered: aborted[q],
            });
        }
        if let Some(m) = metrics {
            m.record_batch(n, batch_hits, batch_misses);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::MonteCarloEvaluator;
    use crate::strategy::StrategySet;
    use gprq_linalg::Matrix;
    use gprq_rtree::{RStarParams, RTree};
    use rand::Rng;

    fn random_tree(n: usize, seed: u64) -> RTree<2, usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                    i,
                )
            })
            .collect();
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn sigma(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    #[test]
    fn cloud_seed_depends_on_covariance_only() {
        let a = Gaussian::new(Vector::from([1.0, 2.0]), sigma(5.0)).unwrap();
        let b = Gaussian::new(Vector::from([-900.0, 431.5]), sigma(5.0)).unwrap();
        let c = Gaussian::new(Vector::from([1.0, 2.0]), sigma(5.000001)).unwrap();
        assert_eq!(
            cloud_seed(42, &a),
            cloud_seed(42, &b),
            "mean must not enter"
        );
        assert_ne!(cloud_seed(42, &a), cloud_seed(42, &c), "Σ must enter");
        assert_ne!(
            cloud_seed(42, &a),
            cloud_seed(43, &a),
            "base seed must enter"
        );
    }

    #[test]
    fn cache_fifo_eviction_is_deterministic_and_redraws_bitwise() {
        let mut cache: SigmaFactorCache<2> = SigmaFactorCache::new(2);
        let n = NonZeroUsize::new(64).unwrap();
        let gauss = |g: f64| Gaussian::new(Vector::from([0.0, 0.0]), sigma(g)).unwrap();
        let (i0, hit0) = cache.get_or_draw(&gauss(1.0), n, 7);
        let first = cache.offsets(i0).clone();
        assert!(!hit0);
        assert!(cache.get_or_draw(&gauss(1.0), n, 7).1, "second lookup hits");
        cache.get_or_draw(&gauss(2.0), n, 8);
        cache.get_or_draw(&gauss(3.0), n, 9); // evicts γ=1.0 (FIFO)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let (i1, hit1) = cache.get_or_draw(&gauss(1.0), n, 7);
        assert!(!hit1, "evicted entry must miss");
        let redraw = cache.offsets(i1).clone();
        for d in 0..2 {
            let same = first[d]
                .iter()
                .zip(&redraw[d])
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "re-draw after eviction must be bitwise identical");
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 4));
    }

    #[test]
    fn batch_matches_solo_executor_bitwise() {
        let tree = random_tree(5_000, 21);
        let shared = sigma(10.0);
        let queries: Vec<PrqQuery<2>> = vec![
            PrqQuery::new(Vector::from([500.0, 500.0]), shared, 25.0, 0.01).unwrap(),
            PrqQuery::new(Vector::from([480.0, 510.0]), shared, 25.0, 0.05).unwrap(),
            PrqQuery::new(Vector::from([200.0, 800.0]), sigma(4.0), 30.0, 0.10).unwrap(),
            // Far-off-grid query: empty work list, still builds one cloud.
            PrqQuery::new(Vector::from([-5_000.0, -5_000.0]), shared, 10.0, 0.20).unwrap(),
        ];
        let executor = PrqExecutor::new(StrategySet::ALL);
        let integrator = ParallelIntegrator::new(10_000, 99, 2).unwrap();
        let mut batch = QueryBatch::new(executor, integrator);
        let outcomes = batch.execute(&tree, &queries).unwrap();

        for (q, (query, outcome)) in queries.iter().zip(&outcomes).enumerate() {
            let seed = batch.cloud_seed_for(query);
            let mut eval = MonteCarloEvaluator::new(10_000, seed);
            let solo = executor.execute(&tree, query, &mut eval).unwrap();
            let batch_ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
            let solo_ids: Vec<usize> = solo.answers.iter().map(|(_, d)| **d).collect();
            assert_eq!(batch_ids, solo_ids, "answer sets diverge for query {q}");
            assert_eq!(outcome.stats.integrations, solo.stats.integrations);
            assert_eq!(outcome.stats.cloud_builds, solo.stats.cloud_builds);
            assert_eq!(
                outcome.stats.cloud_samples_tested,
                solo.stats.cloud_samples_tested
            );
            assert_eq!(outcome.stats.node_accesses, solo.stats.node_accesses);
            assert_eq!(outcome.stats.answers, solo.stats.answers);
            assert!(!outcome.recovered);
        }
        // Queries 0, 1, 3 share Σ: one miss serves three lookups.
        assert_eq!(batch.cache().misses(), 2);
        assert_eq!(batch.cache().hits(), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let tree = random_tree(100, 31);
        let mut batch: QueryBatch<'_, 2> = QueryBatch::new(
            PrqExecutor::new(StrategySet::ALL),
            ParallelIntegrator::new(100, 1, 1).unwrap(),
        );
        let outcomes: Vec<BatchOutcome<'_, 2, usize>> = batch.execute(&tree, &[]).unwrap();
        assert!(outcomes.is_empty());
        assert!(batch.cache().is_empty());
    }
}
