//! # gprq-core
//!
//! The primary contribution of *"Spatial Range Querying for Gaussian-Based
//! Imprecise Query Objects"* (Ishikawa, Iijima, Yu — ICDE 2009),
//! implemented in full:
//!
//! * [`PrqQuery`] — probabilistic range queries `PRQ(q, δ, θ)` whose query
//!   object's location is a Gaussian `N(q, Σ)` (Definitions 1–2);
//! * [`ThetaRegion`] — the `1 − 2θ` ellipsoid
//!   and its bounding geometry (Definitions 3–5, Properties 1–2);
//! * the three filtering strategies — [`strategy::rr`] (rectilinear
//!   region, Algorithm 1), [`strategy::or`] (oblique region), and
//!   [`strategy::bf`] (bounding functions, Algorithm 2) — and their six
//!   combinations ([`StrategySet`]);
//! * [`ucatalog`] — the paper's precomputed lookup tables with
//!   conservative lookup semantics (Eqs. 32–33), next to exact inverses;
//! * [`PrqExecutor`] — the three-phase pipeline (index search → filtering
//!   → Monte-Carlo probability computation) with full [`QueryStats`];
//! * [`naive`] — the full-scan baseline;
//! * [`ext`] — the paper's §VII future-work items: probabilistic k-NN
//!   queries, uncertain *target* objects, and parallel Phase 3.
//!
//! ```
//! use gprq_core::{PrqExecutor, PrqQuery, StrategySet, MonteCarloEvaluator};
//! use gprq_linalg::{Matrix, Vector};
//! use gprq_rtree::{RTree, RStarParams};
//!
//! // Index some exact target objects.
//! let points: Vec<(Vector<2>, u32)> = (0..100)
//!     .map(|i| (Vector::from([(i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0]), i))
//!     .collect();
//! let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
//!
//! // A query object whose position is uncertain.
//! let query = PrqQuery::new(
//!     Vector::from([45.0, 45.0]),          // mean position
//!     Matrix::identity().scale(25.0),      // covariance
//!     15.0,                                // distance threshold δ
//!     0.1,                                 // probability threshold θ
//! ).unwrap();
//!
//! let mut evaluator = MonteCarloEvaluator::new(20_000, 42);
//! let outcome = PrqExecutor::new(StrategySet::ALL)
//!     .execute(&tree, &query, &mut evaluator)
//!     .unwrap();
//! assert!(!outcome.answers.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod error;
pub mod evaluator;
pub mod executor;
pub mod explain;
pub mod ext;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod metrics;
pub mod naive;
pub mod query;
pub mod resilience;
pub mod strategy;
pub mod theta_region;
pub mod ucatalog;

pub use batch::{cloud_seed, BatchOutcome, QueryBatch, SigmaFactorCache};
pub use cost::{expected_integrations, region_volumes, DensityEstimate, RegionVolumes};
pub use error::PrqError;
pub use evaluator::{
    BudgetedEvaluator, DeterministicBudgeted, EvalFailure, EvalReport, MonteCarloEvaluator,
    ProbabilityEvaluator, Quadrature2dEvaluator, QuasiMonteCarloEvaluator,
    SequentialMonteCarloEvaluator, SharedSamplesEvaluator,
};
pub use executor::{PrqExecutor, PrqOutcome, QueryScratch, QueryStats};
pub use explain::{explain, explain_with_metrics, QueryPlan};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultPlan, FaultSchedule, FaultSite};
pub use metrics::{Phase, PipelineMetrics};
pub use naive::execute_naive;
pub use query::PrqQuery;
pub use resilience::{
    AdmissionPolicy, DegradationReason, DegradationReport, EvalBudget, ResilientExecutor,
    ResilientOutcome, TerminalStrategy, UncertainCause, UncertainObject, Verdict,
};
pub use strategy::bf::{BfBounds, BfClass, RejectBound};
pub use strategy::or::OrFilter;
pub use strategy::rr::{FringeMode, RrFilter};
pub use strategy::StrategySet;
pub use theta_region::{r_theta_exact, ThetaRegion};
pub use ucatalog::{BfCatalog, CatalogLookup, RrCatalog};
