//! Phase-3 qualification-probability evaluators.
//!
//! The executor is generic over *how* `Pr(‖x − o‖ ≤ δ)` is computed so the
//! experiment harness can swap the shared-sample default for the paper's
//! per-candidate importance sampling or the deterministic 2-D oracle.
//!
//! The default engine is the shared-sample cloud from
//! [`gprq_gaussian::cloud`]: the proposal distribution `N(q, Σ)` never
//! depends on the candidate (§V-A), so one sample batch per query answers
//! every candidate. Sharing samples correlates the *errors* across
//! candidates of one query — each per-candidate estimate stays unbiased
//! with unchanged variance — which is why the `mc_conformance` closed-form
//! oracle, not bit-parity with the old per-candidate path, gates
//! correctness.

use crate::resilience::Verdict;
use gprq_gaussian::cloud::{CloudGrid, CloudStats, SampleCloud};
use gprq_gaussian::integrate::{quadrature_probability_2d, RunningEstimate, PAPER_MC_SAMPLES};
use gprq_gaussian::Gaussian;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::num::NonZeroUsize;

/// Computes qualification probabilities for Phase 3.
///
/// Implementations may be stateful (RNG streams, cached sample clouds);
/// the executor calls [`ProbabilityEvaluator::begin_query`] once per query
/// so caches can be (re)built for the query's distribution.
pub trait ProbabilityEvaluator<const D: usize> {
    /// Called once before a query's Phase 3 with the query distribution.
    fn begin_query(&mut self, _gaussian: &Gaussian<D>) {}

    /// Estimates `Pr(‖x − center‖ ≤ delta)` for `x ~ gaussian`.
    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64;

    /// Drains the accumulated shared-cloud statistics (grid builds, cells
    /// scanned/inside, samples distance-tested), resetting them to zero.
    /// Evaluators without a cloud return the zero default.
    fn take_cloud_stats(&mut self) -> CloudStats {
        CloudStats::default()
    }
}

/// Sample budgets are validated at construction; this conversion is for
/// the type system, with a defensive floor of one sample.
fn nonzero(samples: usize) -> NonZeroUsize {
    NonZeroUsize::new(samples).unwrap_or(NonZeroUsize::MIN)
}

/// Draws the query's shared sample cloud and indexes it — the single
/// construction path for every shared-sample evaluator, so the draw
/// order and grid build stay in sync in one place.
fn build_grid<const D: usize>(
    gaussian: &Gaussian<D>,
    samples: usize,
    rng: &mut StdRng,
) -> CloudGrid<D> {
    CloudGrid::build(&SampleCloud::draw(gaussian, nonzero(samples), rng))
}

/// The default Phase-3 evaluator: one shared, grid-indexed sample cloud
/// per query (see [`gprq_gaussian::cloud`]).
///
/// [`ProbabilityEvaluator::begin_query`] rebuilds the cloud for the new
/// query distribution. Without it the cloud is built lazily on the first
/// `probability` call and *reused* until the next `begin_query`, so
/// direct use across different distributions must call `begin_query`
/// between them.
#[derive(Debug, Clone)]
pub struct MonteCarloEvaluator<const D: usize> {
    samples: usize,
    rng: StdRng,
    grid: Option<CloudGrid<D>>,
    stats: CloudStats,
}

impl<const D: usize> MonteCarloEvaluator<D> {
    /// Creates an evaluator with an explicit sample count and seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0);
        MonteCarloEvaluator {
            samples,
            rng: StdRng::seed_from_u64(seed),
            grid: None,
            stats: CloudStats::default(),
        }
    }

    /// The paper's configuration: 100 000 samples per query cloud.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(PAPER_MC_SAMPLES, seed)
    }

    /// Number of samples in the per-query cloud.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl<const D: usize> ProbabilityEvaluator<D> for MonteCarloEvaluator<D> {
    fn begin_query(&mut self, gaussian: &Gaussian<D>) {
        self.stats.builds += 1;
        self.grid = Some(build_grid(gaussian, self.samples, &mut self.rng));
    }

    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64 {
        // Direct use without begin_query: build the cloud now.
        let samples = self.samples;
        let rng = &mut self.rng;
        let builds = &mut self.stats.builds;
        let grid = self.grid.get_or_insert_with(|| {
            *builds += 1;
            build_grid(gaussian, samples, rng)
        });
        grid.probability_with_stats(center, delta, &mut self.stats)
    }

    fn take_cloud_stats(&mut self) -> CloudStats {
        std::mem::take(&mut self.stats)
    }
}

/// Former name of the shared-sample evaluator. The shared-cloud design is
/// the default now, so the separate type is gone; the alias keeps old
/// call sites compiling. Prefer [`MonteCarloEvaluator`] in new code.
pub type SharedSamplesEvaluator<const D: usize> = MonteCarloEvaluator<D>;

/// Deterministic quasi-Monte-Carlo evaluator (Halton sequence warped to
/// the query Gaussian).
///
/// An extension beyond the paper's integrator menu: repeatable results
/// with near-`O(1/n)` convergence in low dimension. Supports any `D ≤ 16`
/// (the number of tabulated Halton prime bases).
#[derive(Debug, Clone, Copy)]
pub struct QuasiMonteCarloEvaluator {
    samples: usize,
}

impl QuasiMonteCarloEvaluator {
    /// Creates an evaluator with the given sample budget per object.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0);
        QuasiMonteCarloEvaluator { samples }
    }
}

impl<const D: usize> ProbabilityEvaluator<D> for QuasiMonteCarloEvaluator {
    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64 {
        gprq_gaussian::quasi::quasi_monte_carlo_probability(gaussian, center, delta, self.samples)
    }
}

/// Deterministic 2-D evaluator using polar Gauss–Legendre quadrature —
/// the test oracle (exact to ~10⁻¹⁰ at the default node counts).
#[derive(Debug, Clone, Copy)]
pub struct Quadrature2dEvaluator {
    /// Radial node count.
    pub n_radial: usize,
    /// Angular node count.
    pub n_angular: usize,
}

impl Default for Quadrature2dEvaluator {
    fn default() -> Self {
        Quadrature2dEvaluator {
            n_radial: 64,
            n_angular: 128,
        }
    }
}

impl ProbabilityEvaluator<2> for Quadrature2dEvaluator {
    fn probability(&mut self, gaussian: &Gaussian<2>, center: &Vector<2>, delta: f64) -> f64 {
        quadrature_probability_2d(gaussian, center, delta, self.n_radial, self.n_angular)
    }
}

/// Outcome of one budgeted per-object evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// The probability estimate at the point evaluation stopped.
    pub estimate: f64,
    /// Samples actually drawn (0 for deterministic evaluators).
    pub samples: usize,
    /// The classification against `θ` — explicit, never a bare number,
    /// so budget exhaustion is visible as [`Verdict::Uncertain`].
    pub verdict: Verdict,
    /// Whether the evaluation stopped before its full sample budget
    /// because the confidence interval already cleared `θ`.
    pub early: bool,
}

/// Why a budgeted evaluation produced no usable estimate at all (as
/// opposed to an [`Verdict::Uncertain`] estimate, which is a *result*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalFailure {
    /// The per-object sample budget was zero — the total-sample budget
    /// was already exhausted before this object was reached.
    NoBudget,
    /// An injected fault aborted the evaluation (chaos testing, or a
    /// wrapped evaluator that can genuinely fail).
    Injected,
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalFailure::NoBudget => write!(f, "no sample budget left for this object"),
            EvalFailure::Injected => write!(f, "evaluation aborted by injected fault"),
        }
    }
}

impl std::error::Error for EvalFailure {}

/// A Phase-3 evaluator that works under an explicit per-object sample
/// budget and classifies against `θ` itself, so it can stop as soon as
/// the answer is statistically settled.
///
/// This is the resilient counterpart of [`ProbabilityEvaluator`]: where
/// that trait returns an unlabeled point estimate after a fixed budget,
/// this one returns an [`EvalReport`] whose verdict is explicit about
/// confidence — including [`Verdict::Uncertain`] when the budget ran
/// out with the confidence interval still straddling `θ`.
pub trait BudgetedEvaluator<const D: usize> {
    /// Called once before a query's Phase 3 with the query distribution.
    fn begin_query(&mut self, _gaussian: &Gaussian<D>) {}

    /// Evaluates `Pr(‖x − center‖ ≤ delta) vs θ` using at most
    /// `max_samples` draws.
    ///
    /// # Errors
    ///
    /// * [`EvalFailure::NoBudget`] when `max_samples == 0`,
    /// * [`EvalFailure::Injected`] when a fault plan aborts the call.
    fn evaluate(
        &mut self,
        gaussian: &Gaussian<D>,
        center: &Vector<D>,
        delta: f64,
        theta: f64,
        max_samples: usize,
    ) -> Result<EvalReport, EvalFailure>;

    /// Drains the accumulated shared-cloud statistics, resetting them to
    /// zero. Evaluators without a cloud return the zero default.
    fn take_cloud_stats(&mut self) -> CloudStats {
        CloudStats::default()
    }
}

/// Sequential Monte Carlo with Wilson-interval early termination over the
/// query's shared sample cloud: hit counts accumulate over *prefixes* of
/// the cloud in blocks, and evaluation stops as soon as the confidence
/// interval for the running estimate lies entirely on one side of `θ`.
///
/// Most candidates are far from the threshold, so a few hundred samples
/// decide them instead of the paper's fixed 100 000 — the `resilience`
/// bench records the saving. With early termination disabled (the
/// baseline), the full budget is always spent and the interval is
/// checked once at the end, so the *verdicts* are comparable and only
/// the sample counts differ.
///
/// The cloud grows lazily: a candidate that terminates after 512 samples
/// never forces the remaining 99 488 to be drawn, and a later candidate
/// that needs more reuses the existing prefix bitwise (see
/// `SampleCloud::extend`). As with [`MonteCarloEvaluator`], call
/// [`BudgetedEvaluator::begin_query`] between distributions.
#[derive(Debug, Clone)]
pub struct SequentialMonteCarloEvaluator<const D: usize> {
    block: usize,
    z: f64,
    rng: StdRng,
    early_termination: bool,
    cloud: Option<SampleCloud<D>>,
    stats: CloudStats,
}

impl<const D: usize> SequentialMonteCarloEvaluator<D> {
    /// Default block size between interval checks.
    pub const DEFAULT_BLOCK: usize = 512;
    /// Default confidence width: ±3σ two-sided (≈ 99.7 %).
    pub const DEFAULT_Z: f64 = 3.0;

    /// Creates an evaluator with the default block size and confidence
    /// width, early termination enabled.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`; debug-asserts `z > 0`.
    pub fn new(block: usize, z: f64, seed: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        debug_assert!(z > 0.0);
        SequentialMonteCarloEvaluator {
            block,
            z,
            rng: StdRng::seed_from_u64(seed),
            early_termination: true,
            cloud: None,
            stats: CloudStats::default(),
        }
    }

    /// The default configuration (block 512, z = 3).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(Self::DEFAULT_BLOCK, Self::DEFAULT_Z, seed)
    }

    /// Enables or disables early termination (disabled = fixed-budget
    /// baseline for the resilience bench).
    pub fn with_early_termination(mut self, on: bool) -> Self {
        self.early_termination = on;
        self
    }

    /// Whether early termination is enabled.
    pub fn early_termination(&self) -> bool {
        self.early_termination
    }
}

impl<const D: usize> BudgetedEvaluator<D> for SequentialMonteCarloEvaluator<D> {
    fn begin_query(&mut self, _gaussian: &Gaussian<D>) {
        self.cloud = None;
    }

    fn evaluate(
        &mut self,
        gaussian: &Gaussian<D>,
        center: &Vector<D>,
        delta: f64,
        theta: f64,
        max_samples: usize,
    ) -> Result<EvalReport, EvalFailure> {
        if max_samples == 0 {
            return Err(EvalFailure::NoBudget);
        }
        let block = self.block;
        let rng = &mut self.rng;
        if self.cloud.is_none() {
            self.stats.builds += 1;
        }
        let cloud = self.cloud.get_or_insert_with(|| {
            SampleCloud::draw(gaussian, nonzero(block.min(max_samples)), rng)
        });
        let mut est = RunningEstimate::default();
        loop {
            let remaining = max_samples - est.n;
            if remaining == 0 {
                break;
            }
            let take = block.min(remaining);
            let need = est.n + take;
            if cloud.len() < need {
                cloud.extend(gaussian, need - cloud.len(), rng);
            }
            est.hits += cloud.count_in_range(center, delta, est.n, need);
            est.n = need;
            self.stats.samples_tested += take;
            if self.early_termination {
                let (lo, hi) = est.wilson_bounds(self.z);
                if lo >= theta {
                    return Ok(EvalReport {
                        estimate: est.estimate(),
                        samples: est.n,
                        verdict: Verdict::Accept,
                        early: est.n < max_samples,
                    });
                }
                if hi < theta {
                    return Ok(EvalReport {
                        estimate: est.estimate(),
                        samples: est.n,
                        verdict: Verdict::Reject,
                        early: est.n < max_samples,
                    });
                }
            }
        }
        // Budget exhausted: check the interval once (for the baseline
        // mode this is the only check) and label honestly.
        let (lo, hi) = est.wilson_bounds(self.z);
        let verdict = if lo >= theta {
            Verdict::Accept
        } else if hi < theta {
            Verdict::Reject
        } else {
            Verdict::Uncertain
        };
        Ok(EvalReport {
            estimate: est.estimate(),
            samples: est.n,
            verdict,
            early: false,
        })
    }

    fn take_cloud_stats(&mut self) -> CloudStats {
        std::mem::take(&mut self.stats)
    }
}

/// Adapts any deterministic [`ProbabilityEvaluator`] to the budgeted
/// interface: the exact probability is computed (ignoring the sample
/// budget), the verdict is the exact comparison against `θ`, and the
/// reported sample count is zero.
///
/// Used by the chaos suite so fallback-path answers can be compared
/// bit-for-bit against the naive oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterministicBudgeted<E> {
    inner: E,
}

impl<E> DeterministicBudgeted<E> {
    /// Wraps a deterministic evaluator.
    pub fn new(inner: E) -> Self {
        DeterministicBudgeted { inner }
    }
}

impl<const D: usize, E: ProbabilityEvaluator<D>> BudgetedEvaluator<D> for DeterministicBudgeted<E> {
    fn begin_query(&mut self, gaussian: &Gaussian<D>) {
        self.inner.begin_query(gaussian);
    }

    fn evaluate(
        &mut self,
        gaussian: &Gaussian<D>,
        center: &Vector<D>,
        delta: f64,
        theta: f64,
        _max_samples: usize,
    ) -> Result<EvalReport, EvalFailure> {
        let p = self.inner.probability(gaussian, center, delta);
        Ok(EvalReport {
            estimate: p,
            samples: 0,
            verdict: if p >= theta {
                Verdict::Accept
            } else {
                Verdict::Reject
            },
            early: false,
        })
    }

    fn take_cloud_stats(&mut self) -> CloudStats {
        self.inner.take_cloud_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn gaussian() -> Gaussian<2> {
        let s3 = 3.0f64.sqrt();
        Gaussian::new(
            Vector::from([10.0, 10.0]),
            Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0),
        )
        .unwrap()
    }

    #[test]
    fn evaluators_agree() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let delta = 25.0;
        let mut quad = Quadrature2dEvaluator::default();
        let oracle = quad.probability(&g, &center, delta);

        let mut mc = MonteCarloEvaluator::new(200_000, 7);
        ProbabilityEvaluator::<2>::begin_query(&mut mc, &g);
        assert!((mc.probability(&g, &center, delta) - oracle).abs() < 0.006);

        let mut shared = SharedSamplesEvaluator::<2>::new(200_000, 9);
        shared.begin_query(&g);
        assert!((shared.probability(&g, &center, delta) - oracle).abs() < 0.006);
    }

    #[test]
    fn shared_samples_work_without_begin_query() {
        let g = gaussian();
        let mut shared = SharedSamplesEvaluator::<2>::new(50_000, 3);
        let p = shared.probability(&g, g.mean(), 10.0);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn shared_samples_rebuild_per_query() {
        let g1 = gaussian();
        let g2 = Gaussian::<2>::standard();
        let mut shared = SharedSamplesEvaluator::<2>::new(100_000, 3);
        shared.begin_query(&g1);
        let _ = shared.probability(&g1, g1.mean(), 10.0);
        // New query with a completely different distribution.
        shared.begin_query(&g2);
        let p = shared.probability(&g2, g2.mean(), 1.0);
        // P(‖x‖ ≤ 1) for the 2-D standard normal is 0.3935.
        assert!((p - 0.3935).abs() < 0.01, "got {p}");
    }

    #[test]
    fn cloud_stats_count_builds_and_drain() {
        let g = gaussian();
        let mut mc = MonteCarloEvaluator::<2>::new(10_000, 5);
        ProbabilityEvaluator::<2>::begin_query(&mut mc, &g);
        let _ = mc.probability(&g, g.mean(), 10.0);
        ProbabilityEvaluator::<2>::begin_query(&mut mc, &g);
        let _ = mc.probability(&g, g.mean(), 10.0);
        let stats = ProbabilityEvaluator::<2>::take_cloud_stats(&mut mc);
        assert_eq!(stats.builds, 2, "one build per begin_query");
        assert!(stats.cells_scanned > 0);
        // Drained: a second take returns zeros.
        let again = ProbabilityEvaluator::<2>::take_cloud_stats(&mut mc);
        assert_eq!(again, CloudStats::default());
    }

    #[test]
    fn qmc_evaluator_matches_oracle_and_is_deterministic() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let mut quad = Quadrature2dEvaluator::default();
        let oracle = quad.probability(&g, &center, 25.0);
        let mut qmc = QuasiMonteCarloEvaluator::new(50_000);
        let a = ProbabilityEvaluator::<2>::probability(&mut qmc, &g, &center, 25.0);
        let b = ProbabilityEvaluator::<2>::probability(&mut qmc, &g, &center, 25.0);
        assert_eq!(a, b, "QMC must be deterministic");
        assert!((a - oracle).abs() < 0.003, "qmc {a} vs oracle {oracle}");
    }

    #[test]
    fn paper_default_sample_count() {
        let mc = MonteCarloEvaluator::<2>::paper_default(1);
        assert_eq!(mc.samples(), 100_000);
    }

    #[test]
    fn sequential_mc_terminates_early_on_clear_cases() {
        let g = gaussian();
        let mut eval = SequentialMonteCarloEvaluator::with_defaults(17);
        // Ball around the mean with generous radius: p ≈ 1 ≫ θ = 0.01.
        let accept =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, g.mean(), 60.0, 0.01, 100_000).unwrap();
        assert_eq!(accept.verdict, Verdict::Accept);
        assert!(accept.early, "clear accept should stop early");
        assert!(accept.samples < 10_000, "spent {}", accept.samples);
        // Far-away center: p ≈ 0 ≪ θ.
        let far = Vector::from([10_000.0, 10_000.0]);
        let reject =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, &far, 1.0, 0.01, 100_000).unwrap();
        assert_eq!(reject.verdict, Verdict::Reject);
        assert!(reject.early);
        assert!(reject.samples < 10_000);
    }

    #[test]
    fn sequential_mc_baseline_spends_full_budget() {
        let g = gaussian();
        let mut eval =
            SequentialMonteCarloEvaluator::with_defaults(17).with_early_termination(false);
        assert!(!eval.early_termination());
        let r =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, g.mean(), 60.0, 0.01, 20_000).unwrap();
        assert_eq!(r.samples, 20_000);
        assert!(!r.early);
        assert_eq!(r.verdict, Verdict::Accept);
    }

    #[test]
    fn sequential_mc_borderline_is_uncertain() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let mut quad = Quadrature2dEvaluator::default();
        let truth = quad.probability(&g, &center, 25.0);
        // θ exactly at the true probability: the interval can never
        // clear it, so a small budget must end Uncertain.
        let mut eval = SequentialMonteCarloEvaluator::with_defaults(23);
        let r =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, &center, 25.0, truth, 4_096).unwrap();
        assert_eq!(r.verdict, Verdict::Uncertain);
        assert_eq!(r.samples, 4_096);
        assert!(!r.early);
        assert!((r.estimate - truth).abs() < 0.05);
    }

    #[test]
    fn sequential_mc_shares_the_cloud_prefix_across_candidates() {
        // Two evaluations of the *same* candidate on one evaluator reuse
        // the same cloud prefix, so with early termination off and equal
        // budgets the estimates are bitwise identical.
        let g = gaussian();
        let mut eval =
            SequentialMonteCarloEvaluator::with_defaults(31).with_early_termination(false);
        let a =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, g.mean(), 20.0, 0.5, 8_192).unwrap();
        let b =
            BudgetedEvaluator::<2>::evaluate(&mut eval, &g, g.mean(), 20.0, 0.5, 8_192).unwrap();
        assert_eq!(a.estimate, b.estimate);
        let stats = BudgetedEvaluator::<2>::take_cloud_stats(&mut eval);
        assert_eq!(stats.builds, 1, "one cloud serves both candidates");
        assert_eq!(stats.samples_tested, 2 * 8_192);
    }

    #[test]
    fn sequential_mc_rejects_zero_budget() {
        let g = gaussian();
        let mut eval = SequentialMonteCarloEvaluator::with_defaults(1);
        let e = BudgetedEvaluator::<2>::evaluate(&mut eval, &g, g.mean(), 1.0, 0.5, 0).unwrap_err();
        assert_eq!(e, EvalFailure::NoBudget);
        assert!(e.to_string().contains("budget"));
    }

    #[test]
    fn deterministic_budgeted_matches_oracle_verdict() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let mut quad = Quadrature2dEvaluator::default();
        let truth = quad.probability(&g, &center, 25.0);
        let mut det = DeterministicBudgeted::new(Quadrature2dEvaluator::default());
        let r = det.evaluate(&g, &center, 25.0, truth / 2.0, 0).unwrap();
        assert_eq!(r.verdict, Verdict::Accept);
        assert_eq!(r.samples, 0);
        assert_eq!(r.estimate, truth);
        let r2 = det.evaluate(&g, &center, 25.0, truth * 1.5, 0).unwrap();
        assert_eq!(r2.verdict, Verdict::Reject);
    }

    #[test]
    fn mc_deterministic_under_seed() {
        let g = gaussian();
        let run = |seed| {
            let mut mc = MonteCarloEvaluator::new(10_000, seed);
            mc.probability(&g, &Vector::from([12.0, 12.0]), 20.0)
        };
        assert_eq!(run(5), run(5));
    }
}
