//! Phase-3 qualification-probability evaluators.
//!
//! The executor is generic over *how* `Pr(‖x − o‖ ≤ δ)` is computed so the
//! experiment harness can swap the paper's importance-sampling Monte Carlo
//! for the shared-sample optimization or the deterministic 2-D oracle.

use gprq_gaussian::integrate::{
    importance_sampling_probability, quadrature_probability_2d, SharedSampleEvaluator,
    PAPER_MC_SAMPLES,
};
use gprq_gaussian::Gaussian;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Computes qualification probabilities for Phase 3.
///
/// Implementations may be stateful (RNG streams, cached sample batches);
/// the executor calls [`ProbabilityEvaluator::begin_query`] once per query
/// so caches can be (re)built for the query's distribution.
pub trait ProbabilityEvaluator<const D: usize> {
    /// Called once before a query's Phase 3 with the query distribution.
    fn begin_query(&mut self, _gaussian: &Gaussian<D>) {}

    /// Estimates `Pr(‖x − center‖ ≤ delta)` for `x ~ gaussian`.
    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64;
}

/// The paper's evaluator: fresh importance-sampling Monte Carlo per
/// object (§V-A, 100 000 samples each).
#[derive(Debug, Clone)]
pub struct MonteCarloEvaluator {
    samples: usize,
    rng: StdRng,
}

impl MonteCarloEvaluator {
    /// Creates an evaluator with an explicit sample count and seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0);
        MonteCarloEvaluator {
            samples,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's configuration: 100 000 samples per integration.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(PAPER_MC_SAMPLES, seed)
    }

    /// Number of samples per integration.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl<const D: usize> ProbabilityEvaluator<D> for MonteCarloEvaluator {
    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64 {
        importance_sampling_probability(gaussian, center, delta, self.samples, &mut self.rng)
    }
}

/// Shared-sample evaluator: one batch of samples per query, reused across
/// all candidates (an optimization the paper leaves on the table because
/// the proposal distribution is candidate-independent; measured in the
/// `ablation` bench).
#[derive(Debug, Clone)]
pub struct SharedSamplesEvaluator<const D: usize> {
    samples: usize,
    rng: StdRng,
    batch: Option<SharedSampleEvaluator<D>>,
}

impl<const D: usize> SharedSamplesEvaluator<D> {
    /// Creates an evaluator; the batch is drawn lazily per query.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0);
        SharedSamplesEvaluator {
            samples,
            rng: StdRng::seed_from_u64(seed),
            batch: None,
        }
    }
}

impl<const D: usize> ProbabilityEvaluator<D> for SharedSamplesEvaluator<D> {
    fn begin_query(&mut self, gaussian: &Gaussian<D>) {
        self.batch = Some(SharedSampleEvaluator::new(
            gaussian,
            self.samples,
            &mut self.rng,
        ));
    }

    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64 {
        // Direct use without begin_query: build the batch now.
        let samples = self.samples;
        let rng = &mut self.rng;
        self.batch
            .get_or_insert_with(|| SharedSampleEvaluator::new(gaussian, samples, rng))
            .probability(center, delta)
    }
}

/// Deterministic quasi-Monte-Carlo evaluator (Halton sequence warped to
/// the query Gaussian).
///
/// An extension beyond the paper's integrator menu: repeatable results
/// with near-`O(1/n)` convergence in low dimension. Supports any `D ≤ 16`
/// (the number of tabulated Halton prime bases).
#[derive(Debug, Clone, Copy)]
pub struct QuasiMonteCarloEvaluator {
    samples: usize,
}

impl QuasiMonteCarloEvaluator {
    /// Creates an evaluator with the given sample budget per object.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0);
        QuasiMonteCarloEvaluator { samples }
    }
}

impl<const D: usize> ProbabilityEvaluator<D> for QuasiMonteCarloEvaluator {
    fn probability(&mut self, gaussian: &Gaussian<D>, center: &Vector<D>, delta: f64) -> f64 {
        gprq_gaussian::quasi::quasi_monte_carlo_probability(gaussian, center, delta, self.samples)
    }
}

/// Deterministic 2-D evaluator using polar Gauss–Legendre quadrature —
/// the test oracle (exact to ~10⁻¹⁰ at the default node counts).
#[derive(Debug, Clone, Copy)]
pub struct Quadrature2dEvaluator {
    /// Radial node count.
    pub n_radial: usize,
    /// Angular node count.
    pub n_angular: usize,
}

impl Default for Quadrature2dEvaluator {
    fn default() -> Self {
        Quadrature2dEvaluator {
            n_radial: 64,
            n_angular: 128,
        }
    }
}

impl ProbabilityEvaluator<2> for Quadrature2dEvaluator {
    fn probability(&mut self, gaussian: &Gaussian<2>, center: &Vector<2>, delta: f64) -> f64 {
        quadrature_probability_2d(gaussian, center, delta, self.n_radial, self.n_angular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn gaussian() -> Gaussian<2> {
        let s3 = 3.0f64.sqrt();
        Gaussian::new(
            Vector::from([10.0, 10.0]),
            Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0),
        )
        .unwrap()
    }

    #[test]
    fn evaluators_agree() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let delta = 25.0;
        let mut quad = Quadrature2dEvaluator::default();
        let oracle = quad.probability(&g, &center, delta);

        let mut mc = MonteCarloEvaluator::new(200_000, 7);
        ProbabilityEvaluator::<2>::begin_query(&mut mc, &g);
        assert!((mc.probability(&g, &center, delta) - oracle).abs() < 0.006);

        let mut shared = SharedSamplesEvaluator::<2>::new(200_000, 9);
        shared.begin_query(&g);
        assert!((shared.probability(&g, &center, delta) - oracle).abs() < 0.006);
    }

    #[test]
    fn shared_samples_work_without_begin_query() {
        let g = gaussian();
        let mut shared = SharedSamplesEvaluator::<2>::new(50_000, 3);
        let p = shared.probability(&g, g.mean(), 10.0);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn shared_samples_rebuild_per_query() {
        let g1 = gaussian();
        let g2 = Gaussian::<2>::standard();
        let mut shared = SharedSamplesEvaluator::<2>::new(100_000, 3);
        shared.begin_query(&g1);
        let _ = shared.probability(&g1, g1.mean(), 10.0);
        // New query with a completely different distribution.
        shared.begin_query(&g2);
        let p = shared.probability(&g2, g2.mean(), 1.0);
        // P(‖x‖ ≤ 1) for the 2-D standard normal is 0.3935.
        assert!((p - 0.3935).abs() < 0.01, "got {p}");
    }

    #[test]
    fn qmc_evaluator_matches_oracle_and_is_deterministic() {
        let g = gaussian();
        let center = Vector::from([15.0, 8.0]);
        let mut quad = Quadrature2dEvaluator::default();
        let oracle = quad.probability(&g, &center, 25.0);
        let mut qmc = QuasiMonteCarloEvaluator::new(50_000);
        let a = ProbabilityEvaluator::<2>::probability(&mut qmc, &g, &center, 25.0);
        let b = ProbabilityEvaluator::<2>::probability(&mut qmc, &g, &center, 25.0);
        assert_eq!(a, b, "QMC must be deterministic");
        assert!((a - oracle).abs() < 0.003, "qmc {a} vs oracle {oracle}");
    }

    #[test]
    fn paper_default_sample_count() {
        let mc = MonteCarloEvaluator::paper_default(1);
        assert_eq!(mc.samples(), 100_000);
    }

    #[test]
    fn mc_deterministic_under_seed() {
        let g = gaussian();
        let run = |seed| {
            let mut mc = MonteCarloEvaluator::new(10_000, seed);
            mc.probability(&g, &Vector::from([12.0, 12.0]), 20.0)
        };
        assert_eq!(run(5), run(5));
    }
}
