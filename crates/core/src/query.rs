//! The probabilistic range query type.

use crate::error::PrqError;
use gprq_gaussian::Gaussian;
use gprq_linalg::{Matrix, Vector};

/// A probabilistic range query `PRQ(q, δ, θ)` (paper Definition 2).
///
/// The query object's location is the Gaussian random vector
/// `x ~ N(q, Σ)`; the query returns every database object `o` with
///
/// ```text
/// Pr(‖x − o‖² ≤ δ²) ≥ θ
/// ```
///
/// ```
/// use gprq_core::PrqQuery;
/// use gprq_linalg::{Matrix, Vector};
///
/// let q = PrqQuery::<2>::new(
///     Vector::from([500.0, 500.0]),
///     Matrix::identity().scale(10.0),
///     25.0,
///     0.01,
/// ).unwrap();
/// assert_eq!(q.delta(), 25.0);
/// ```
#[derive(Debug, Clone)]
pub struct PrqQuery<const D: usize> {
    gaussian: Gaussian<D>,
    delta: f64,
    theta: f64,
}

/// The single authoritative `(δ, θ)` validation, shared by every query
/// construction path (direct, from-Gaussian, monitoring sessions, and
/// the resilient admission stage) so NaN/∞ inputs cannot slip through
/// one path while being rejected by another.
///
/// # Errors
///
/// * [`PrqError::InvalidDelta`] unless `δ > 0` and finite (NaN and ±∞
///   both fail the comparison chain and are rejected),
/// * [`PrqError::InvalidTheta`] unless `0 < θ < 1` (NaN fails both
///   comparisons and is rejected).
pub(crate) fn validate_thresholds(delta: f64, theta: f64) -> Result<(), PrqError> {
    if !(delta > 0.0 && delta.is_finite()) {
        return Err(PrqError::InvalidDelta(delta));
    }
    if !(theta > 0.0 && theta < 1.0) {
        return Err(PrqError::InvalidTheta(theta));
    }
    Ok(())
}

impl<const D: usize> PrqQuery<D> {
    /// Builds a query, validating all parameters.
    ///
    /// # Errors
    ///
    /// * [`PrqError::InvalidDelta`] unless `δ > 0` and finite,
    /// * [`PrqError::InvalidTheta`] unless `0 < θ < 1`,
    /// * [`PrqError::BadCovariance`] if `Σ` is not symmetric
    ///   positive-definite.
    pub fn new(
        center: Vector<D>,
        covariance: Matrix<D>,
        delta: f64,
        theta: f64,
    ) -> Result<Self, PrqError> {
        validate_thresholds(delta, theta)?;
        let gaussian = Gaussian::new(center, covariance)?;
        Ok(PrqQuery {
            gaussian,
            delta,
            theta,
        })
    }

    /// Builds a query from an existing [`Gaussian`].
    ///
    /// # Errors
    ///
    /// Returns [`PrqError::InvalidDelta`] when `δ` is not positive and
    /// finite, and [`PrqError::InvalidTheta`] when `θ ∉ (0, 1)`.
    pub fn from_gaussian(gaussian: Gaussian<D>, delta: f64, theta: f64) -> Result<Self, PrqError> {
        validate_thresholds(delta, theta)?;
        Ok(PrqQuery {
            gaussian,
            delta,
            theta,
        })
    }

    /// The query object's location distribution.
    pub fn gaussian(&self) -> &Gaussian<D> {
        &self.gaussian
    }

    /// The query center `q` (mean of the distribution).
    pub fn center(&self) -> &Vector<D> {
        self.gaussian.mean()
    }

    /// The distance threshold `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The probability threshold `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Dimensionality of the query space.
    pub const fn dim(&self) -> usize {
        D
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
    }

    #[test]
    fn valid_query_builds() {
        let q = PrqQuery::new(Vector::from([1.0, 2.0]), sigma(), 25.0, 0.01).unwrap();
        assert_eq!(q.center().as_slice(), &[1.0, 2.0]);
        assert_eq!(q.delta(), 25.0);
        assert_eq!(q.theta(), 0.01);
        assert_eq!(q.dim(), 2);
    }

    #[test]
    fn rejects_bad_delta() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = PrqQuery::new(Vector::<2>::ZERO, sigma(), bad, 0.1).unwrap_err();
            assert!(matches!(e, PrqError::InvalidDelta(_)), "delta = {bad}");
        }
    }

    #[test]
    fn rejects_bad_theta() {
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            let e = PrqQuery::new(Vector::<2>::ZERO, sigma(), 1.0, bad).unwrap_err();
            assert!(matches!(e, PrqError::InvalidTheta(_)), "theta = {bad}");
        }
    }

    #[test]
    fn rejects_bad_covariance() {
        let not_spd = Matrix::from_rows([[1.0, 2.0], [2.0, 1.0]]);
        let e = PrqQuery::new(Vector::<2>::ZERO, not_spd, 1.0, 0.1).unwrap_err();
        assert!(matches!(e, PrqError::BadCovariance(_)));
    }

    #[test]
    fn from_gaussian_validates_thresholds() {
        let g = Gaussian::<2>::standard();
        assert!(PrqQuery::from_gaussian(g.clone(), 1.0, 0.5).is_ok());
        assert!(PrqQuery::from_gaussian(g.clone(), -1.0, 0.5).is_err());
        assert!(PrqQuery::from_gaussian(g, 1.0, 0.0).is_err());
    }

    #[test]
    fn from_gaussian_rejects_non_finite_thresholds() {
        // Regression: NaN θ and NaN/∞ δ must be rejected on *every*
        // construction path, not only `PrqQuery::new`.
        let g = Gaussian::<2>::standard();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = PrqQuery::from_gaussian(g.clone(), bad, 0.1).unwrap_err();
            assert!(matches!(e, PrqError::InvalidDelta(_)), "delta = {bad}");
        }
        let e = PrqQuery::from_gaussian(g.clone(), 1.0, f64::NAN).unwrap_err();
        assert!(matches!(e, PrqError::InvalidTheta(_)));
        for bad in [f64::INFINITY, f64::NEG_INFINITY] {
            let e = PrqQuery::from_gaussian(g.clone(), 1.0, bad).unwrap_err();
            assert!(matches!(e, PrqError::InvalidTheta(_)), "theta = {bad}");
        }
    }
}
