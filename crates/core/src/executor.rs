//! The three-phase query executor (paper §III-B, Algorithms 1 & 2).
//!
//! 1. **Index-based search** — an R\*-tree rectangle query over the
//!    Phase-1 region (RR's Minkowski box, or BF's `α∥` box when RR is not
//!    in the strategy set);
//! 2. **Filtering** — the RR fringe test, the OR oblique-box test, and
//!    the BF distance classification (reject beyond `α∥`, *accept without
//!    integration* within `α⊥`), in that order (cheapest first);
//! 3. **Probability computation** — numerical integration for the
//!    survivors, keeping those with probability `≥ θ`.
//!
//! [`QueryStats`] records everything the paper's tables report: per-phase
//! wall-clock times, candidate counts, and the number of numerical
//! integrations (the dominant cost, "at least 97% of the total processing
//! time", §V-B).

use crate::error::PrqError;
use crate::evaluator::ProbabilityEvaluator;
use crate::metrics::{Phase, PipelineMetrics};
use crate::query::PrqQuery;
use crate::strategy::bf::{BfBounds, BfClass};
use crate::strategy::or::OrFilter;
use crate::strategy::rr::{FringeMode, RrFilter};
use crate::strategy::StrategySet;
use crate::theta_region::ThetaRegion;
use crate::ucatalog::{BfCatalog, RrCatalog};
use gprq_linalg::Vector;
use gprq_rtree::{Phase1Index, Rect, SearchStats, OLC_DEPTH_BUCKETS};
use std::time::{Duration, Instant};

/// Statistics for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Candidates returned by the Phase-1 index search.
    pub phase1_candidates: usize,
    /// R-tree nodes visited in Phase 1.
    pub node_accesses: usize,
    /// Leaf records tested against the Phase-1 rectangle
    /// (`SearchStats::entries_checked`) — the index's read amplification.
    pub leaf_hits: usize,
    /// Candidates pruned by the RR fringe filter.
    pub pruned_by_fringe: usize,
    /// Candidates the OR filter rotated into the covariance eigenbasis
    /// (every OR test costs one rotation, pass or prune).
    pub or_rotations: usize,
    /// Candidates pruned by the OR oblique-box filter.
    pub pruned_by_or: usize,
    /// Candidates pruned by the BF reject radius `α∥`.
    pub pruned_by_bf: usize,
    /// Candidates accepted by the BF accept radius `α⊥` **without**
    /// numerical integration.
    pub accepted_without_integration: usize,
    /// Numerical integrations performed (the paper's "number of
    /// candidates", Tables II–III).
    pub integrations: usize,
    /// Final answer-set size (the ANS column).
    pub answers: usize,
    /// Monte-Carlo samples actually drawn in Phase 3. Zero when the
    /// evaluator does not report sample counts (the fixed-budget
    /// [`ProbabilityEvaluator`]s); the budgeted resilient path fills it
    /// so the early-termination saving is measurable.
    pub phase3_samples: usize,
    /// Phase-3 integrations that stopped before their full sample budget
    /// because the confidence interval already cleared `θ`.
    pub early_terminations: usize,
    /// Objects the budgeted path could not classify before exhausting
    /// its budget (reported as explicit [`Verdict::Uncertain`], never
    /// silently guessed).
    ///
    /// [`Verdict::Uncertain`]: crate::resilience::Verdict::Uncertain
    pub uncertain: usize,
    /// Shared sample clouds built for Phase 3 (normally one per query
    /// on the cloud path; zero for deterministic evaluators).
    pub cloud_builds: usize,
    /// Grid cells visited while answering cloud probabilities.
    pub cloud_cells_scanned: usize,
    /// Visited cells classified fully inside `B(center, δ)` — their
    /// samples counted without a distance test.
    pub cloud_cells_inside: usize,
    /// Cloud samples that ran the SoA distance kernel (boundary cells).
    pub cloud_samples_tested: usize,
    /// Optimistic (OLC) node-read attempts in Phase 1. Zero for the
    /// single-writer [`RTree`](gprq_rtree::RTree); the concurrent tree
    /// counts one per capture/validate round.
    pub olc_attempts: usize,
    /// OLC attempts that failed validation (or found the node
    /// write-locked) and were retried by the contention ladder.
    pub olc_retries: usize,
    /// Phase-1 traversals that exhausted the optimistic ladder and
    /// degraded to the pessimistic (writer-excluding) fallback path.
    pub olc_pessimistic_fallbacks: usize,
    /// Log₂ histogram of per-node retry depth: bucket 0 counts
    /// first-attempt validations, bucket `i ≥ 1` counts reads that
    /// needed `2^(i−1) ≤ retries < 2^i` (last bucket saturates).
    pub olc_retry_depth: [usize; OLC_DEPTH_BUCKETS],
    /// Phase-1 wall-clock time.
    pub phase1_time: Duration,
    /// Phase-2 wall-clock time.
    pub phase2_time: Duration,
    /// Phase-3 wall-clock time.
    pub phase3_time: Duration,
}

impl QueryStats {
    /// Total wall-clock time across the three phases.
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time + self.phase3_time
    }

    /// Accumulates `other` into `self`, field by field — the single
    /// aggregation point for batch drivers and monitoring sessions.
    pub fn merge(&mut self, other: &QueryStats) {
        self.phase1_candidates += other.phase1_candidates;
        self.node_accesses += other.node_accesses;
        self.leaf_hits += other.leaf_hits;
        self.pruned_by_fringe += other.pruned_by_fringe;
        self.or_rotations += other.or_rotations;
        self.pruned_by_or += other.pruned_by_or;
        self.pruned_by_bf += other.pruned_by_bf;
        self.accepted_without_integration += other.accepted_without_integration;
        self.integrations += other.integrations;
        self.answers += other.answers;
        self.phase3_samples += other.phase3_samples;
        self.early_terminations += other.early_terminations;
        self.uncertain += other.uncertain;
        self.cloud_builds += other.cloud_builds;
        self.cloud_cells_scanned += other.cloud_cells_scanned;
        self.cloud_cells_inside += other.cloud_cells_inside;
        self.cloud_samples_tested += other.cloud_samples_tested;
        self.olc_attempts += other.olc_attempts;
        self.olc_retries += other.olc_retries;
        self.olc_pessimistic_fallbacks += other.olc_pessimistic_fallbacks;
        for (mine, theirs) in self.olc_retry_depth.iter_mut().zip(other.olc_retry_depth) {
            *mine += theirs;
        }
        self.phase1_time += other.phase1_time;
        self.phase2_time += other.phase2_time;
        self.phase3_time += other.phase3_time;
    }

    /// Flushes a Phase-1 [`SearchStats`] into the index-side fields
    /// (overwriting, not accumulating — the executor calls this once
    /// per query on freshly zeroed stats).
    pub(crate) fn absorb_search(&mut self, search: &SearchStats) {
        self.node_accesses = search.nodes_visited;
        self.leaf_hits = search.entries_checked;
        self.olc_attempts = search.olc_attempts;
        self.olc_retries = search.olc_retries;
        self.olc_pessimistic_fallbacks = search.olc_fallbacks;
        self.olc_retry_depth = search.olc_retry_depth;
    }

    /// Absorbs a drained [`CloudStats`] block into the cloud fields —
    /// the single bridge between the evaluator-side statistics and the
    /// per-query record.
    ///
    /// [`CloudStats`]: gprq_gaussian::cloud::CloudStats
    pub fn absorb_cloud(&mut self, cloud: &gprq_gaussian::cloud::CloudStats) {
        self.cloud_builds += cloud.builds;
        self.cloud_cells_scanned += cloud.cells_scanned;
        self.cloud_cells_inside += cloud.cells_inside;
        self.cloud_samples_tested += cloud.samples_tested;
    }
}

/// Result of a query: answer records (borrowed from the tree) plus stats.
#[derive(Debug)]
pub struct PrqOutcome<'t, const D: usize, T> {
    /// Objects satisfying `Pr(‖x − o‖ ≤ δ) ≥ θ`.
    pub answers: Vec<(&'t Vector<D>, &'t T)>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Reusable intermediate buffers for [`PrqExecutor::execute_with_scratch`].
///
/// The executor's Phase-1 candidate set and Phase-3 work list are the
/// only per-query allocations besides the returned answer vector; a
/// batch driver (the experiment harness runs 30-query workloads per
/// table cell) keeps one scratch per tree borrow and amortizes them.
#[derive(Debug, Default)]
pub struct QueryScratch<'t, const D: usize, T> {
    candidates: Vec<(&'t Vector<D>, &'t T)>,
    to_integrate: Vec<(&'t Vector<D>, &'t T)>,
}

impl<'t, const D: usize, T> QueryScratch<'t, D, T> {
    /// Creates empty scratch buffers (no allocation until first use).
    pub fn new() -> Self {
        QueryScratch {
            candidates: Vec::new(),
            to_integrate: Vec::new(),
        }
    }

    /// The Phase-3 work list produced by
    /// [`PrqExecutor::collect_candidates`].
    pub(crate) fn work_list(&self) -> &[(&'t Vector<D>, &'t T)] {
        &self.to_integrate
    }

    /// Mutable access to the Phase-3 work list, for fallback paths that
    /// build it directly (the naive full scan).
    pub(crate) fn naive_work_list(&mut self) -> &mut Vec<(&'t Vector<D>, &'t T)> {
        &mut self.to_integrate
    }
}

/// Configured query executor.
///
/// ```
/// use gprq_core::{PrqExecutor, PrqQuery, StrategySet, MonteCarloEvaluator};
/// use gprq_linalg::{Matrix, Vector};
/// use gprq_rtree::{RTree, RStarParams};
///
/// let points: Vec<(Vector<2>, u32)> = (0..500)
///     .map(|i| (Vector::from([(i % 25) as f64 * 4.0, (i / 25) as f64 * 5.0]), i))
///     .collect();
/// let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
/// let query = PrqQuery::new(
///     Vector::from([50.0, 50.0]),
///     Matrix::identity().scale(20.0),
///     10.0,
///     0.05,
/// ).unwrap();
/// let executor = PrqExecutor::new(StrategySet::ALL);
/// let mut eval = MonteCarloEvaluator::new(20_000, 42);
/// let outcome = executor.execute(&tree, &query, &mut eval).unwrap();
/// assert!(outcome.stats.integrations <= outcome.stats.phase1_candidates);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrqExecutor<'c> {
    strategies: StrategySet,
    fringe_mode: FringeMode,
    rr_catalog: Option<&'c RrCatalog>,
    bf_catalog: Option<&'c BfCatalog>,
    metrics: Option<&'c PipelineMetrics>,
}

impl<'c> PrqExecutor<'c> {
    /// An executor computing all radii exactly (as the paper's own
    /// experiments do, §V-A).
    pub fn new(strategies: StrategySet) -> Self {
        PrqExecutor {
            strategies,
            fringe_mode: FringeMode::PaperFaithful,
            rr_catalog: None,
            bf_catalog: None,
            metrics: None,
        }
    }

    /// Attaches a [`PipelineMetrics`] handle: phase spans and per-query
    /// counter flushes record into it. Without one, execution carries no
    /// instrumentation cost at all.
    pub fn with_metrics(mut self, metrics: &'c PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the fringe-filter mode (see [`FringeMode`]).
    pub fn with_fringe_mode(mut self, mode: FringeMode) -> Self {
        self.fringe_mode = mode;
        self
    }

    /// Uses a U-catalog for the θ-region radius (paper Algorithm 1,
    /// line 4) instead of the exact chi quantile; falls back to exact
    /// when the catalog has no safe entry.
    pub fn with_rr_catalog(mut self, catalog: &'c RrCatalog) -> Self {
        self.rr_catalog = Some(catalog);
        self
    }

    /// Uses a U-catalog for the BF radii (paper Eqs. 32–33).
    pub fn with_bf_catalog(mut self, catalog: &'c BfCatalog) -> Self {
        self.bf_catalog = Some(catalog);
        self
    }

    /// The configured strategy set.
    pub fn strategies(&self) -> StrategySet {
        self.strategies
    }

    /// The attached metrics handle, if any — shared with the batch
    /// executor so fused phases record into the same pipeline.
    pub(crate) fn metrics(&self) -> Option<&'c PipelineMetrics> {
        self.metrics
    }

    /// Executes the query against a Phase-1 index of exact target
    /// objects — the single-writer [`RTree`](gprq_rtree::RTree) or the
    /// lock-free-read [`ConcurrentRTree`](gprq_rtree::ConcurrentRTree)
    /// (any [`Phase1Index`]).
    ///
    /// # Errors
    ///
    /// * [`PrqError::NoPrimaryStrategy`] for an OR-only strategy set,
    /// * [`PrqError::ThetaRegionUndefined`] if RR or OR is enabled with
    ///   `θ ≥ 1/2` (BF-only sets still work there).
    pub fn execute<'t, const D: usize, T, I, E>(
        &self,
        tree: &'t I,
        query: &PrqQuery<D>,
        evaluator: &mut E,
    ) -> Result<PrqOutcome<'t, D, T>, PrqError>
    where
        I: Phase1Index<D, T>,
        E: ProbabilityEvaluator<D>,
    {
        let mut scratch = QueryScratch::new();
        self.execute_with_scratch(tree, query, evaluator, &mut scratch)
    }

    /// [`PrqExecutor::execute`] reusing caller-owned intermediate
    /// buffers; results are identical. Use from per-query loops.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PrqExecutor::execute`], plus
    /// [`PrqError::CatalogDimensionMismatch`] when a configured BF
    /// catalog was built for a different dimension.
    pub fn execute_with_scratch<'t, const D: usize, T, I, E>(
        &self,
        tree: &'t I,
        query: &PrqQuery<D>,
        evaluator: &mut E,
        scratch: &mut QueryScratch<'t, D, T>,
    ) -> Result<PrqOutcome<'t, D, T>, PrqError>
    where
        I: Phase1Index<D, T>,
        E: ProbabilityEvaluator<D>,
    {
        let mut stats = QueryStats::default();
        let mut answers: Vec<(&'t Vector<D>, &'t T)> = Vec::new();
        self.collect_candidates(tree, query, scratch, &mut stats, &mut answers)?;

        // --- Phase 3: probability computation. -------------------------
        let span3 = self.metrics.map(|m| m.phase_span(Phase::Integrate));
        let t2 = Instant::now();
        evaluator.begin_query(query.gaussian());
        for &(point, data) in scratch.to_integrate.iter() {
            stats.integrations += 1;
            let p = evaluator.probability(query.gaussian(), point, query.delta());
            if p >= query.theta() {
                answers.push((point, data));
            }
        }
        stats.phase3_time = t2.elapsed();
        stats.absorb_cloud(&evaluator.take_cloud_stats());
        stats.answers = answers.len();
        if let Some(span) = span3 {
            span.finish();
        }
        if let Some(metrics) = self.metrics {
            metrics.record_query(&stats);
        }

        Ok(PrqOutcome { answers, stats })
    }

    /// Phases 1 and 2 (index search + filtering), shared between the
    /// plain Phase-3 loop above and the budgeted resilient path: fills
    /// `scratch.to_integrate` with the Phase-3 work list, appends BF
    /// sure-accepts to `answers`, and records Phase-1/2 statistics.
    ///
    /// # Errors
    ///
    /// Same preconditions as [`PrqExecutor::execute_with_scratch`]:
    /// [`PrqError::NoPrimaryStrategy`], [`PrqError::ThetaRegionUndefined`],
    /// or [`PrqError::CatalogDimensionMismatch`].
    pub(crate) fn collect_candidates<'t, const D: usize, T, I>(
        &self,
        tree: &'t I,
        query: &PrqQuery<D>,
        scratch: &mut QueryScratch<'t, D, T>,
        stats: &mut QueryStats,
        answers: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) -> Result<(), PrqError>
    where
        I: Phase1Index<D, T>,
    {
        let plan = self.plan(query)?;

        // --- Phase 1: index-based search. ------------------------------
        let span1 = self.metrics.map(|m| m.phase_span(Phase::Search));
        let t0 = Instant::now();
        let search_rect = plan.search_rect(query)?;
        let QueryScratch {
            candidates,
            to_integrate,
        } = scratch;
        candidates.clear();
        to_integrate.clear();
        if let Some(rect) = search_rect {
            let mut search_stats = SearchStats::default();
            tree.search_rect_into(&rect, &mut search_stats, candidates);
            stats.absorb_search(&search_stats);
        }
        stats.phase1_candidates = candidates.len();
        stats.phase1_time = t0.elapsed();
        if let Some(span) = span1 {
            span.finish();
        }

        // --- Phase 2: filtering. ---------------------------------------
        let span2 = self.metrics.map(|m| m.phase_span(Phase::Filter));
        let t1 = Instant::now();
        plan.filter_candidates(query, candidates, stats, answers, to_integrate);
        stats.phase2_time = t1.elapsed();
        if let Some(span) = span2 {
            span.finish();
        }
        Ok(())
    }

    /// Builds the per-query [`PreparedQuery`] — strategy validation plus the
    /// owned θ-region and BF bounds — shared by the solo path above and
    /// the batch executor (`crate::batch`), so both run Phases 1–2
    /// through the identical code.
    ///
    /// # Errors
    ///
    /// [`PrqError::NoPrimaryStrategy`],
    /// [`PrqError::ThetaRegionUndefined`], or
    /// [`PrqError::CatalogDimensionMismatch`] — the same preconditions
    /// as [`PrqExecutor::execute`].
    pub(crate) fn plan<const D: usize>(
        &self,
        query: &PrqQuery<D>,
    ) -> Result<PreparedQuery<D>, PrqError> {
        self.strategies.validate()?;
        let needs_region = self.strategies.rr || self.strategies.or;
        let region: Option<ThetaRegion<D>> = if needs_region {
            let r_theta = match self.rr_catalog {
                Some(cat) => {
                    debug_assert_eq!(cat.dim(), D);
                    match cat.lookup(query.theta()) {
                        Some(r) => r,
                        None => crate::theta_region::r_theta_exact::<D>(query.theta())?,
                    }
                }
                None => crate::theta_region::r_theta_exact::<D>(query.theta())?,
            };
            Some(ThetaRegion::with_r_theta(query, r_theta)?)
        } else {
            None
        };
        let bf_bounds: Option<BfBounds<D>> = if self.strategies.bf {
            Some(match self.bf_catalog {
                Some(cat) => BfBounds::from_catalog(query, cat)?,
                None => BfBounds::exact(query),
            })
        } else {
            None
        };
        Ok(PreparedQuery {
            strategies: self.strategies,
            fringe_mode: self.fringe_mode,
            region,
            bf_bounds,
        })
    }
}

/// The owned, query-specific part of Phases 1–2: the θ-region and BF
/// bounds an executor derived for one query, plus the strategy knobs
/// needed to rebuild the borrowing filters on demand.
///
/// [`RrFilter`]/[`OrFilter`] borrow the region, so the plan stores the
/// region and reconstructs the filters (cheap, deterministic) inside
/// each entry point instead of holding self-referential borrows. Both
/// the solo executor and the batch executor drive their Phase-1 probe
/// and Phase-2 loop through this type, which is what makes batch/solo
/// parity structural rather than coincidental.
#[derive(Debug)]
pub(crate) struct PreparedQuery<const D: usize> {
    strategies: StrategySet,
    fringe_mode: FringeMode,
    region: Option<ThetaRegion<D>>,
    bf_bounds: Option<BfBounds<D>>,
}

impl<const D: usize> PreparedQuery<D> {
    /// The Phase-1 search rectangle: RR's Minkowski box when RR is
    /// enabled, else BF's `α∥` box (Algorithm 2, line 6). `Ok(None)` is
    /// the provably-empty case — skip Phase 1 entirely.
    ///
    /// # Errors
    ///
    /// [`PrqError::NoPrimaryStrategy`] if neither RR nor BF is enabled
    /// (surfaced as an error rather than a panic per the panic-free
    /// audit rule; `StrategySet::validate` normally rejects this first).
    pub(crate) fn search_rect(&self, query: &PrqQuery<D>) -> Result<Option<Rect<D>>, PrqError> {
        if self.strategies.rr {
            if let Some(reg) = &self.region {
                let rr = RrFilter::new(query, reg, self.fringe_mode);
                return Ok(Some(rr.search_rect()));
            }
        }
        match &self.bf_bounds {
            Some(bf) => Ok(bf.search_rect()),
            None => Err(PrqError::NoPrimaryStrategy),
        }
    }

    /// The Phase-2 loop: runs every candidate through the enabled
    /// filters in cheapest-first order (RR fringe, OR oblique box, BF
    /// classification), appending BF sure-accepts to `answers` and
    /// survivors to `to_integrate`, with pruning counters in `stats`.
    pub(crate) fn filter_candidates<'t, T>(
        &self,
        query: &PrqQuery<D>,
        candidates: &[(&'t Vector<D>, &'t T)],
        stats: &mut QueryStats,
        answers: &mut Vec<(&'t Vector<D>, &'t T)>,
        to_integrate: &mut Vec<(&'t Vector<D>, &'t T)>,
    ) {
        // Binding the filters under one `match` ties their construction
        // to the region's existence: `region` is `Some` exactly when
        // `rr || or`, so neither arm can observe a missing region.
        let (rr_filter, or_filter): (Option<RrFilter<'_, D>>, Option<OrFilter<D>>) =
            match &self.region {
                Some(reg) => (
                    self.strategies
                        .rr
                        .then(|| RrFilter::new(query, reg, self.fringe_mode)),
                    self.strategies.or.then(|| OrFilter::new(query, reg)),
                ),
                None => (None, None),
            };
        'candidates: for &(point, data) in candidates {
            if let Some(rr) = &rr_filter {
                if !rr.passes(point) {
                    stats.pruned_by_fringe += 1;
                    continue 'candidates;
                }
            }
            if let Some(or) = &or_filter {
                stats.or_rotations += 1;
                if !or.passes(point) {
                    stats.pruned_by_or += 1;
                    continue 'candidates;
                }
            }
            if let Some(bf) = &self.bf_bounds {
                match bf.classify(point) {
                    BfClass::Reject => {
                        stats.pruned_by_bf += 1;
                        continue 'candidates;
                    }
                    BfClass::Accept => {
                        stats.accepted_without_integration += 1;
                        answers.push((point, data));
                        continue 'candidates;
                    }
                    BfClass::NeedsIntegration => {}
                }
            }
            to_integrate.push((point, data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Quadrature2dEvaluator;
    use gprq_linalg::Matrix;
    use gprq_rtree::{RStarParams, RTree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_tree() -> RTree<2, usize> {
        // A 60 × 60 grid over [0, 1000]².
        let mut points = Vec::new();
        for i in 0..60 {
            for j in 0..60 {
                points.push((
                    Vector::from([i as f64 * 1000.0 / 59.0, j as f64 * 1000.0 / 59.0]),
                    i * 60 + j,
                ));
            }
        }
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn random_tree(n: usize, seed: u64) -> RTree<2, usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                    i,
                )
            })
            .collect();
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn paper_query(gamma: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    fn answers_sorted(outcome: &PrqOutcome<'_, 2, usize>) -> Vec<usize> {
        let mut ids: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn all_strategy_sets_agree() {
        // With a deterministic evaluator, all six combinations must
        // return the identical answer set — the *filter safety*
        // invariant.
        let tree = random_tree(4_000, 11);
        let query = paper_query(10.0);
        let mut reference: Option<Vec<usize>> = None;
        for (name, set) in StrategySet::PAPER_COMBINATIONS {
            let mut eval = Quadrature2dEvaluator::default();
            let outcome = PrqExecutor::new(set)
                .execute(&tree, &query, &mut eval)
                .unwrap();
            let ids = answers_sorted(&outcome);
            match &reference {
                None => reference = Some(ids),
                Some(r) => assert_eq!(&ids, r, "strategy {name} disagrees"),
            }
        }
        assert!(!reference.unwrap().is_empty(), "query should match objects");
    }

    #[test]
    fn combinations_reduce_integrations() {
        // Table II's qualitative claim: ALL ≤ every pairwise combo ≤ the
        // better single strategy.
        let tree = random_tree(6_000, 3);
        let query = paper_query(10.0);
        let run = |set: StrategySet| {
            let mut eval = Quadrature2dEvaluator::default();
            PrqExecutor::new(set)
                .execute(&tree, &query, &mut eval)
                .unwrap()
                .stats
        };
        let rr = run(StrategySet::RR);
        let bf = run(StrategySet::BF);
        let rr_bf = run(StrategySet::RR_BF);
        let rr_or = run(StrategySet::RR_OR);
        let bf_or = run(StrategySet::BF_OR);
        let all = run(StrategySet::ALL);
        assert!(rr_bf.integrations <= rr.integrations.min(bf.integrations));
        assert!(rr_or.integrations <= rr.integrations);
        assert!(bf_or.integrations <= bf.integrations);
        assert!(all.integrations <= rr_bf.integrations);
        assert!(all.integrations <= rr_or.integrations);
        assert!(all.integrations <= bf_or.integrations);
        // Answers count is identical everywhere.
        for s in [&rr, &bf, &rr_bf, &rr_or, &bf_or, &all] {
            assert_eq!(s.answers, rr.answers);
        }
    }

    #[test]
    fn bf_accepts_without_integration() {
        // Dense grid near the query center: some objects sit within α⊥.
        let tree = grid_tree();
        let query = paper_query(1.0);
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::BF)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert!(
            outcome.stats.accepted_without_integration > 0,
            "expected sure-accepts inside α⊥: {:?}",
            outcome.stats
        );
        // Sure-accepts + integrations cover all non-pruned candidates.
        assert_eq!(
            outcome.stats.phase1_candidates,
            outcome.stats.pruned_by_bf
                + outcome.stats.accepted_without_integration
                + outcome.stats.integrations
        );
    }

    #[test]
    fn or_only_is_rejected() {
        let tree = grid_tree();
        let query = paper_query(10.0);
        let mut eval = Quadrature2dEvaluator::default();
        let set = StrategySet {
            rr: false,
            or: true,
            bf: false,
        };
        assert!(matches!(
            PrqExecutor::new(set).execute(&tree, &query, &mut eval),
            Err(PrqError::NoPrimaryStrategy)
        ));
    }

    #[test]
    fn rr_with_large_theta_is_rejected_bf_still_works() {
        let tree = grid_tree();
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]);
        let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 50.0, 0.6).unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        assert!(matches!(
            PrqExecutor::new(StrategySet::RR).execute(&tree, &query, &mut eval),
            Err(PrqError::ThetaRegionUndefined(_))
        ));
        let outcome = PrqExecutor::new(StrategySet::BF)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        // Objects very close to the center qualify with θ = 0.6 and
        // δ = 50 for the small covariance.
        assert!(outcome.stats.answers > 0);
    }

    #[test]
    fn provably_empty_query_short_circuits() {
        let tree = grid_tree();
        // δ far too small for θ: BF proves emptiness with zero work.
        let query = PrqQuery::new(
            Vector::from([500.0, 500.0]),
            Matrix::identity().scale(100.0),
            0.5,
            0.9,
        )
        .unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::BF)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert_eq!(outcome.stats.answers, 0);
        assert_eq!(outcome.stats.phase1_candidates, 0);
        assert_eq!(outcome.stats.integrations, 0);
        assert_eq!(outcome.stats.node_accesses, 0);
    }

    #[test]
    fn catalogs_preserve_answers() {
        let tree = random_tree(3_000, 21);
        let query = paper_query(10.0);
        let mut eval = Quadrature2dEvaluator::default();
        let exact = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        let rr_cat = RrCatalog::new(2);
        let bf_cat = BfCatalog::new(2);
        let approx = PrqExecutor::new(StrategySet::ALL)
            .with_rr_catalog(&rr_cat)
            .with_bf_catalog(&bf_cat)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert_eq!(answers_sorted(&exact), answers_sorted(&approx));
        // Catalog radii are conservative → never fewer candidates.
        assert!(
            approx.stats.integrations + approx.stats.accepted_without_integration
                >= exact.stats.integrations + exact.stats.accepted_without_integration
        );
    }

    #[test]
    fn stats_are_consistent() {
        let tree = random_tree(5_000, 8);
        let query = paper_query(100.0);
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        let s = outcome.stats;
        assert_eq!(
            s.phase1_candidates,
            s.pruned_by_fringe
                + s.pruned_by_or
                + s.pruned_by_bf
                + s.accepted_without_integration
                + s.integrations
        );
        assert!(s.answers >= s.accepted_without_integration);
        assert!(s.answers <= s.accepted_without_integration + s.integrations);
        assert!(s.node_accesses > 0);
        assert_eq!(s.answers, outcome.answers.len());
        assert!(s.total_time() >= s.phase3_time);
    }

    #[test]
    fn matches_brute_force_oracle() {
        // Ground truth: quadrature over every object in the database.
        let tree = random_tree(1_500, 30);
        let query = paper_query(10.0);
        let mut oracle = Quadrature2dEvaluator::default();
        let mut expect: Vec<usize> = tree
            .iter()
            .filter(|(p, _)| {
                oracle.probability(query.gaussian(), p, query.delta()) >= query.theta()
            })
            .map(|(_, d)| *d)
            .collect();
        expect.sort_unstable();
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();
        assert_eq!(answers_sorted(&outcome), expect);
    }
}
