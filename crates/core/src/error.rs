//! Error types for query construction and execution.

use gprq_linalg::LinalgError;
use std::fmt;

/// Errors surfaced while building or running a probabilistic range query.
#[derive(Debug, Clone, PartialEq)]
pub enum PrqError {
    /// The probability threshold must satisfy `0 < θ < 1` (paper
    /// Definition 2: with `θ = 0` every object qualifies because the
    /// Gaussian has infinite spread; with `θ = 1` none can).
    InvalidTheta(f64),
    /// The distance threshold must satisfy `δ > 0` and be finite.
    InvalidDelta(f64),
    /// The query center contained a NaN or infinite coordinate. No
    /// repair is possible: there is no principled finite location to
    /// substitute, so admission rejects instead of degrading.
    InvalidCenter {
        /// Index of the first non-finite coordinate.
        axis: usize,
        /// The offending coordinate value.
        value: f64,
    },
    /// The θ-region (paper Definition 3) is only defined for `θ < 1/2`;
    /// the RR and OR strategies cannot run above that. (BF still can.)
    ThetaRegionUndefined(f64),
    /// A strategy set must include at least one region-producing strategy
    /// (RR or BF); OR is a pure Phase-2 filter (paper §V-A: "OR is only
    /// useful as a filtering method").
    NoPrimaryStrategy,
    /// A Monte-Carlo sample budget of zero was requested: no estimator
    /// can produce a probability from zero draws, and silently returning
    /// 0.0 would masquerade as a confident rejection.
    InvalidSampleBudget,
    /// The covariance matrix was rejected by the linear-algebra layer.
    BadCovariance(LinalgError),
    /// A U-catalog built for one dimension was used with a query of
    /// another: its tabulated radii would be silently wrong, not merely
    /// conservative.
    CatalogDimensionMismatch {
        /// Dimension the catalog was built for.
        catalog: usize,
        /// Dimension of the query.
        query: usize,
    },
}

impl fmt::Display for PrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrqError::InvalidTheta(t) => {
                write!(f, "probability threshold must satisfy 0 < θ < 1, got {t}")
            }
            PrqError::InvalidDelta(d) => {
                write!(f, "distance threshold must be positive and finite, got {d}")
            }
            PrqError::InvalidCenter { axis, value } => write!(
                f,
                "query center must be finite, got {value} at coordinate {axis}"
            ),
            PrqError::ThetaRegionUndefined(t) => write!(
                f,
                "θ-region requires θ < 1/2 (got θ = {t}); use a BF-only strategy set"
            ),
            PrqError::NoPrimaryStrategy => {
                write!(
                    f,
                    "strategy set needs RR or BF; OR alone cannot produce a search region"
                )
            }
            PrqError::InvalidSampleBudget => {
                write!(f, "Monte-Carlo sample budget must be positive")
            }
            PrqError::BadCovariance(e) => write!(f, "invalid covariance matrix: {e}"),
            PrqError::CatalogDimensionMismatch { catalog, query } => write!(
                f,
                "catalog dimension {catalog} does not match query dimension {query}"
            ),
        }
    }
}

impl std::error::Error for PrqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrqError::BadCovariance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PrqError {
    fn from(e: LinalgError) -> Self {
        PrqError::BadCovariance(e)
    }
}

impl From<gprq_gaussian::InvalidSampleBudget> for PrqError {
    fn from(_: gprq_gaussian::InvalidSampleBudget) -> Self {
        PrqError::InvalidSampleBudget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PrqError::InvalidTheta(1.5)
            .to_string()
            .contains("0 < θ < 1"));
        assert!(PrqError::InvalidDelta(-2.0)
            .to_string()
            .contains("positive"));
        assert!(PrqError::ThetaRegionUndefined(0.6)
            .to_string()
            .contains("1/2"));
        assert!(PrqError::NoPrimaryStrategy.to_string().contains("RR or BF"));
        assert!(PrqError::InvalidSampleBudget
            .to_string()
            .contains("positive"));
    }

    #[test]
    fn wraps_gaussian_budget_errors() {
        let e: PrqError = gprq_gaussian::InvalidSampleBudget.into();
        assert_eq!(e, PrqError::InvalidSampleBudget);
    }

    #[test]
    fn wraps_linalg_errors() {
        let e: PrqError = LinalgError::NonFinite.into();
        assert!(matches!(e, PrqError::BadCovariance(_)));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }
}
