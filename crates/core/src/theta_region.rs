//! The θ-region (paper §IV-A.1, Definitions 3–5, Property 1).
//!
//! For a query with threshold `θ < 1/2`, the θ-region is the ellipsoid
//!
//! ```text
//! (x − q)ᵗ Σ⁻¹ (x − q) ≤ r_θ²
//! ```
//!
//! chosen so the query object lies inside it with probability `1 − 2θ`.
//! Property 1 reduces finding `r_θ` to the *normalized* Gaussian: `r_θ`
//! is the radius of the centered ball holding mass `1 − 2θ` under
//! `N(0, I)` — i.e. the chi-distribution quantile
//! `chi_inverse(d, 1 − 2θ)`.
//!
//! Why `1 − 2θ` and not `1 − θ`: the pruning argument of paper Fig. 3
//! spends probability `2θ` outside the region and uses the point symmetry
//! of the Gaussian to show each of an excluded object `a` and its
//! reflection `a′` captures *less than half* of that, i.e. `< θ`.

use crate::error::PrqError;
use crate::query::PrqQuery;
use gprq_gaussian::chi::chi_inverse;
use gprq_linalg::Vector;
use gprq_rtree::Rect;

/// The θ-region of a query, with its derived bounding geometry.
#[derive(Debug, Clone)]
pub struct ThetaRegion<const D: usize> {
    center: Vector<D>,
    r_theta: f64,
    /// `wᵢ = σᵢ·r_θ` — half-widths of the tight bounding box
    /// (paper Property 2 / Fig. 2).
    box_half_widths: Vector<D>,
    /// Precision matrix for the ellipsoid membership test.
    precision: gprq_linalg::Matrix<D>,
}

impl<const D: usize> ThetaRegion<D> {
    /// Derives the θ-region for a query, computing `r_θ` exactly from the
    /// chi distribution (the paper's U-catalog is the table-based variant
    /// of this inverse; see `crate::ucatalog`).
    ///
    /// # Errors
    ///
    /// [`PrqError::ThetaRegionUndefined`] when `θ ≥ 1/2` (Definition 3
    /// requires `0 < θ < 1/2`).
    pub fn for_query(query: &PrqQuery<D>) -> Result<Self, PrqError> {
        Self::with_r_theta(query, r_theta_exact::<D>(query.theta())?)
    }

    /// Builds the region from an externally supplied `r_θ` (e.g. a
    /// conservative U-catalog lookup). The radius must over-cover:
    /// `r ≥ chi_inverse(d, 1 − 2θ)` keeps filtering safe.
    ///
    /// # Errors
    ///
    /// Returns [`PrqError::ThetaRegionUndefined`] when `θ ≥ 1/2` (or θ
    /// is NaN): Definition 3 only defines the region for `θ < 1/2`.
    // INVARIANT: the caller's r_θ must satisfy r_θ ≥ chi_inverse(D, 1−2θ)
    // (catalog lookups guarantee this by rounding θ down); the resulting
    // ellipsoid then contains ≥ 1−2θ of the query mass, which Property 1
    // needs for RR/OR pruning to be lossless.
    pub fn with_r_theta(query: &PrqQuery<D>, r_theta: f64) -> Result<Self, PrqError> {
        // Negated form on purpose: a NaN θ must take the error branch.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(query.theta() < 0.5) {
            return Err(PrqError::ThetaRegionUndefined(query.theta()));
        }
        let g = query.gaussian();
        let sigmas = g.axis_std_devs();
        Ok(ThetaRegion {
            center: *g.mean(),
            r_theta,
            box_half_widths: Vector::from_fn(|i| sigmas[i] * r_theta),
            precision: *g.precision(),
        })
    }

    /// The radius `r_θ` in normalized (whitened) space.
    pub fn r_theta(&self) -> f64 {
        self.r_theta
    }

    /// Half-widths `wᵢ = σᵢ·r_θ` of the tight bounding box (Property 2).
    pub fn box_half_widths(&self) -> &Vector<D> {
        &self.box_half_widths
    }

    /// The tight axis-aligned bounding box of the ellipsoid.
    pub fn bounding_box(&self) -> Rect<D> {
        Rect::centered(&self.center, &self.box_half_widths)
    }

    /// `true` if `p` lies inside the ellipsoid
    /// `(p − q)ᵗ Σ⁻¹ (p − q) ≤ r_θ²`.
    // HOT-PATH: θ-region ellipsoid membership (Phase 2 predicate)
    pub fn contains(&self, p: &Vector<D>) -> bool {
        let diff = *p - self.center;
        self.precision.quadratic_form(&diff) <= self.r_theta * self.r_theta
    }

    /// Euclidean distance from `p` to the *bounding box* (0 inside) —
    /// the geometric kernel of the RR fringe filter (paper Fig. 4: a
    /// candidate survives iff it lies within `δ` of the box).
    pub fn distance_to_box(&self, p: &Vector<D>) -> f64 {
        self.bounding_box().min_dist_squared(p).sqrt()
    }
}

/// Exact `r_θ = chi_inverse(d, 1 − 2θ)` (Definition 5 + Property 1).
///
/// # Errors
///
/// [`PrqError::ThetaRegionUndefined`] when `θ ≥ 1/2`.
// INVARIANT: chi_inverse is evaluated at exactly 1 − 2θ (never rounded
// up), so the radius is the tightest value for which the θ-region
// argument (Definition 5) holds — any smaller radius would under-cover.
pub fn r_theta_exact<const D: usize>(theta: f64) -> Result<f64, PrqError> {
    if !(theta > 0.0 && theta < 0.5) {
        return Err(PrqError::ThetaRegionUndefined(theta));
    }
    Ok(chi_inverse(D, 1.0 - 2.0 * theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_gaussian::integrate::quadrature_probability_2d;
    use gprq_gaussian::Gaussian;
    use gprq_linalg::Matrix;

    fn paper_query(gamma: f64, theta: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, theta).unwrap()
    }

    #[test]
    fn r_theta_paper_anchor() {
        // d = 2, θ = 0.01 → r_θ ≈ 2.797 (paper §VI-B).
        let r = r_theta_exact::<2>(0.01).unwrap();
        assert!((r - 2.797).abs() < 1e-3, "got {r}");
    }

    #[test]
    fn r_theta_rejects_half_and_above() {
        assert!(r_theta_exact::<2>(0.5).is_err());
        assert!(r_theta_exact::<2>(0.7).is_err());
        assert!(r_theta_exact::<2>(0.499).is_ok());
    }

    #[test]
    fn region_holds_one_minus_two_theta_mass() {
        // Verify Definition 3 directly: Monte-Carlo the ellipsoid mass.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let theta = 0.05;
        let query = paper_query(10.0, theta);
        let region = ThetaRegion::for_query(&query).unwrap();
        let g = query.gaussian();
        let mut rng = StdRng::seed_from_u64(42);
        let mut sampler = gprq_gaussian::GaussianSampler::new(g);
        let n = 200_000;
        let inside = (0..n)
            .filter(|_| region.contains(&sampler.sample(&mut rng)))
            .count() as f64
            / n as f64;
        assert!(
            (inside - (1.0 - 2.0 * theta)).abs() < 0.005,
            "ellipsoid mass {inside}, want {}",
            1.0 - 2.0 * theta
        );
    }

    #[test]
    fn box_half_widths_follow_property_2() {
        let query = paper_query(10.0, 0.01);
        let region = ThetaRegion::for_query(&query).unwrap();
        let r = region.r_theta();
        let w = region.box_half_widths();
        assert!((w[0] - (70.0f64).sqrt() * r).abs() < 1e-10);
        assert!((w[1] - (30.0f64).sqrt() * r).abs() < 1e-10);
    }

    #[test]
    fn bounding_box_contains_ellipsoid() {
        // Sample ellipsoid boundary points; all must be inside the box,
        // and the box must be tight (touched along each axis direction).
        let query = paper_query(10.0, 0.05);
        let region = ThetaRegion::for_query(&query).unwrap();
        let bbox = region.bounding_box();
        let g = query.gaussian();
        let eig = g.eigen();
        let r = region.r_theta();
        for k in 0..64 {
            let angle = k as f64 / 64.0 * std::f64::consts::TAU;
            // Boundary point: q + r·(√λ₁ cos·v₁ + √λ₂ sin·v₂) in Σ eigen terms.
            let dir = eig.eigenvector(0) * (eig.eigenvalues[0].sqrt() * angle.cos())
                + eig.eigenvector(1) * (eig.eigenvalues[1].sqrt() * angle.sin());
            let p = *g.mean() + dir * r;
            let diff = p - *g.mean();
            // Confirm it is on the ellipsoid boundary.
            assert!((g.precision().quadratic_form(&diff) - r * r).abs() < 1e-8);
            assert!(bbox.contains_point(&p), "boundary point escapes box");
        }
    }

    #[test]
    fn pruning_safety_of_fringe_rule() {
        // Paper Fig. 3's claim, checked numerically: any object farther
        // than δ from the θ-region *bounding box* has qualification
        // probability < θ.
        let theta = 0.05;
        let query = paper_query(10.0, theta);
        let region = ThetaRegion::for_query(&query).unwrap();
        let g = query.gaussian();
        let delta = query.delta();
        // Probe points just outside the pruning boundary in several
        // directions.
        for k in 0..16 {
            let angle = k as f64 / 16.0 * std::f64::consts::TAU;
            let dir = Vector::from([angle.cos(), angle.sin()]);
            // Walk outward until distance to box exceeds δ by a hair.
            let mut t = delta;
            let bbox = region.bounding_box();
            loop {
                let p = *g.mean() + dir * t;
                if bbox.min_dist_squared(&p).sqrt() > delta * 1.001 {
                    let prob = quadrature_probability_2d(g, &p, delta, 48, 96);
                    assert!(
                        prob < theta,
                        "object at angle {angle:.2} dist-to-box {:.2} has prob {prob} ≥ θ",
                        bbox.min_dist_squared(&p).sqrt()
                    );
                    break;
                }
                t += delta * 0.1;
            }
        }
    }

    #[test]
    fn contains_and_distance_to_box() {
        let query = paper_query(1.0, 0.1);
        let region = ThetaRegion::for_query(&query).unwrap();
        assert!(region.contains(query.center()));
        assert_eq!(region.distance_to_box(query.center()), 0.0);
        let far = *query.center() + Vector::from([1000.0, 0.0]);
        assert!(!region.contains(&far));
        assert!(region.distance_to_box(&far) > 900.0);
    }

    #[test]
    fn catalog_style_radius_must_over_cover() {
        let query = paper_query(1.0, 0.01);
        let exact = ThetaRegion::for_query(&query).unwrap();
        let padded = ThetaRegion::with_r_theta(&query, exact.r_theta() * 1.1).unwrap();
        // A padded region contains the exact one.
        assert!(padded.bounding_box().contains_rect(&exact.bounding_box()));
    }

    #[test]
    fn isotropic_region_is_spherical_box() {
        let q = PrqQuery::from_gaussian(Gaussian::<2>::standard(), 1.0, 0.1).unwrap();
        let region = ThetaRegion::for_query(&q).unwrap();
        let w = region.box_half_widths();
        assert!((w[0] - w[1]).abs() < 1e-12);
        assert!((w[0] - region.r_theta()).abs() < 1e-12);
    }
}
