//! The resilient query pipeline: admission/sanitization, budgeted
//! evaluation with graceful degradation, and strategy fallback.
//!
//! The plain [`PrqExecutor`] is faithful to the paper and therefore
//! brittle by design: its strategies have hard preconditions (the
//! θ-region needs `θ < 1/2`, catalogs must match the query dimension, Σ
//! must be well-conditioned SPD) and its Phase 3 spends a fixed sample
//! budget per candidate. A serving path cannot afford either property —
//! one degenerate query must neither error out nor hog the integrator.
//!
//! [`ResilientExecutor`] wraps the same three-phase pipeline with:
//!
//! 1. **Admission** ([`AdmissionPolicy::admit`]) — rejects what cannot
//!    be repaired (NaN/∞ centers and thresholds), repairs what can
//!    (θ clamping, covariance symmetrization, Tikhonov regularization
//!    of near-singular Σ), and records every repair in a
//!    [`DegradationReport`].
//! 2. **Strategy fallback** — catalog mismatch or `θ ≥ 1/2` degrades
//!    the strategy set toward one that can run ([`StrategySet::BF`]
//!    works at any θ), and execution failure degrades to the naive
//!    full scan; each hop is a [`DegradationReason::StrategySwitched`]
//!    or [`DegradationReason::NaiveFallback`] entry.
//! 3. **Budgeted Phase 3** ([`EvalBudget`]) — per-object and total
//!    sample caps with confidence-interval early termination (see
//!    [`SequentialMonteCarloEvaluator`]); objects the budget cannot
//!    settle come back as explicit [`Verdict::Uncertain`] entries, never
//!    as unlabeled guesses.
//!
//! The result always carries the full report, so a caller can
//! distinguish "exact answer" from "best effort under degradation" and
//! decide per application whether uncertain objects count.
//!
//! [`SequentialMonteCarloEvaluator`]: crate::evaluator::SequentialMonteCarloEvaluator

use crate::error::PrqError;
use crate::evaluator::{BudgetedEvaluator, EvalFailure};
use crate::executor::{PrqExecutor, QueryScratch, QueryStats};
use crate::metrics::{Phase, PipelineMetrics};
use crate::query::PrqQuery;
use crate::strategy::rr::FringeMode;
use crate::strategy::StrategySet;
use crate::ucatalog::{BfCatalog, RrCatalog};
use gprq_gaussian::integrate::PAPER_MC_SAMPLES;
use gprq_linalg::{LinalgError, Matrix, Vector};
use gprq_rtree::RTree;
use std::fmt;
use std::time::Instant;

#[cfg(feature = "fault-inject")]
use crate::fault::{FaultPlan, FaultSite};
#[cfg(feature = "fault-inject")]
use gprq_rtree::{Rect, SearchStats};

/// Classification of one object against `θ`, with uncertainty explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `Pr ≥ θ` holds (exactly, or with the configured confidence).
    Accept,
    /// `Pr < θ` holds (exactly, or with the configured confidence).
    Reject,
    /// The sample budget ran out with the confidence interval still
    /// straddling `θ` — the honest "don't know".
    Uncertain,
}

/// Which U-catalog a [`DegradationReason::CatalogDropped`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogKind {
    /// The θ-region radius catalog (paper Algorithm 1, line 4).
    Rr,
    /// The bounding-function radii catalog (paper Eqs. 32–33).
    Bf,
}

impl fmt::Display for CatalogKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogKind::Rr => write!(f, "RR"),
            CatalogKind::Bf => write!(f, "BF"),
        }
    }
}

/// Why the executor switched away from the requested strategy set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCause {
    /// The θ-region is undefined for `θ ≥ 1/2` (paper Definition 3), so
    /// RR and OR cannot run; BF still can.
    ThetaAboveHalf(f64),
    /// The requested set had no region-producing strategy.
    NoPrimaryStrategy,
    /// The filtered pipeline returned an error at execution time.
    ExecutionFailed,
    /// The index could not complete a Phase-1 traversal.
    IndexUnavailable,
}

impl fmt::Display for SwitchCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchCause::ThetaAboveHalf(t) => write!(f, "θ = {t} ≥ 1/2"),
            SwitchCause::NoPrimaryStrategy => write!(f, "no primary strategy"),
            SwitchCause::ExecutionFailed => write!(f, "filtered execution failed"),
            SwitchCause::IndexUnavailable => write!(f, "index unavailable"),
        }
    }
}

/// Which budget dimension a [`DegradationReason::BudgetExhausted`]
/// entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetScope {
    /// [`EvalBudget::max_total_samples`] ran out mid-query.
    TotalSamples,
    /// [`EvalBudget::max_candidates`] capped the Phase-3 work list.
    Candidates,
}

impl fmt::Display for BudgetScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetScope::TotalSamples => write!(f, "total samples"),
            BudgetScope::Candidates => write!(f, "candidates"),
        }
    }
}

/// One repair or fallback applied by the resilient pipeline.
///
/// Every variant is informational, not an error: the query still
/// produced an answer, and the report says exactly how its semantics
/// were weakened to get there.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationReason {
    /// `θ` was outside `(0, 1)` and was clamped into range.
    ThetaClamped {
        /// The requested threshold.
        from: f64,
        /// The clamped value actually used.
        to: f64,
    },
    /// Σ was asymmetric beyond tolerance and was replaced by its
    /// symmetric part `(Σ + Σᵗ)/2`.
    CovarianceSymmetrized {
        /// Largest `|σ_ij − σ_ji|` observed before the repair.
        asymmetry: f64,
    },
    /// Σ was singular, indefinite, or ill-conditioned and received a
    /// Tikhonov ridge `Σ + ε·I`.
    CovarianceRegularized {
        /// Spectral condition number before the repair (∞ when the
        /// eigensolve itself failed).
        condition: f64,
        /// The ridge `ε` actually added to the diagonal.
        ridge: f64,
    },
    /// A configured U-catalog could not be used and radii fall back to
    /// exact computation.
    CatalogDropped {
        /// Which catalog was dropped.
        which: CatalogKind,
        /// Dimension the catalog was built for.
        catalog_dim: usize,
        /// Dimension of the query.
        query_dim: usize,
    },
    /// The strategy set was replaced by a runnable one.
    StrategySwitched {
        /// The requested set.
        from: StrategySet,
        /// The set actually executed.
        to: StrategySet,
        /// Why the switch happened.
        cause: SwitchCause,
    },
    /// The filtered pipeline was abandoned for the naive full scan —
    /// the terminal fallback that always works.
    NaiveFallback {
        /// Why filtering was abandoned.
        cause: SwitchCause,
    },
    /// Some Phase-3 evaluations failed outright; the affected objects
    /// are reported as uncertain.
    EvaluatorFaults {
        /// How many objects were affected.
        objects: usize,
    },
    /// A budget cap was hit before every candidate was classified.
    BudgetExhausted {
        /// Which cap was hit.
        scope: BudgetScope,
        /// Objects left unclassified because of it.
        unresolved: usize,
    },
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::ThetaClamped { from, to } => {
                write!(f, "θ clamped from {from} to {to}")
            }
            DegradationReason::CovarianceSymmetrized { asymmetry } => {
                write!(f, "Σ symmetrized (max asymmetry {asymmetry:.3e})")
            }
            DegradationReason::CovarianceRegularized { condition, ridge } => {
                write!(
                    f,
                    "Σ regularized with ridge {ridge:.3e} (condition {condition:.3e})"
                )
            }
            DegradationReason::CatalogDropped {
                which,
                catalog_dim,
                query_dim,
            } => write!(
                f,
                "{which} catalog dropped (built for d = {catalog_dim}, query d = {query_dim})"
            ),
            DegradationReason::StrategySwitched { from, to, cause } => {
                write!(f, "strategy {} → {}: {cause}", from.name(), to.name())
            }
            DegradationReason::NaiveFallback { cause } => {
                write!(f, "fell back to naive full scan: {cause}")
            }
            DegradationReason::EvaluatorFaults { objects } => {
                write!(f, "evaluator failed on {objects} object(s)")
            }
            DegradationReason::BudgetExhausted { scope, unresolved } => {
                write!(
                    f,
                    "budget exhausted ({scope}), {unresolved} object(s) unresolved"
                )
            }
        }
    }
}

/// Ordered log of every repair and fallback one execution applied.
///
/// Empty means the query ran exactly as requested; a non-empty report
/// is the contract that *no repair is ever silent*.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    events: Vec<DegradationReason>,
}

impl DegradationReport {
    /// A fresh, empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any repair or fallback was applied.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the report is empty (the query ran as requested).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in the order they were applied.
    pub fn iter(&self) -> impl Iterator<Item = &DegradationReason> {
        self.events.iter()
    }

    pub(crate) fn record(&mut self, reason: DegradationReason) {
        self.events.push(reason);
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no degradation");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Knobs for the admission/sanitization stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Smallest θ a clamp may produce (repairs `θ ≤ 0`).
    pub theta_floor: f64,
    /// Largest θ a clamp may produce (repairs `θ ≥ 1`).
    pub theta_ceiling: f64,
    /// Spectral condition number above which Σ is ridge-regularized.
    pub max_condition: f64,
    /// Initial ridge as a fraction of the mean diagonal entry; escalated
    /// ×10 per attempt until Σ is acceptable.
    pub ridge_scale: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            theta_floor: 1e-9,
            theta_ceiling: 1.0 - 1e-9,
            max_condition: 1e12,
            ridge_scale: 1e-12,
        }
    }
}

/// Upper bound on ridge-escalation attempts. The ridge grows ×10 per
/// attempt from `ridge_scale × scale`, where `scale` bounds `|λ_min|`
/// via Gershgorin, so any finite symmetric Σ is repaired well before
/// this limit; it exists to make the loop obviously terminating.
const MAX_RIDGE_ATTEMPTS: usize = 24;

impl AdmissionPolicy {
    /// Validates and repairs raw query parameters into a well-formed
    /// [`PrqQuery`], recording every repair in `report`.
    ///
    /// Repairs (recorded, never silent): finite `θ` outside `(0, 1)` is
    /// clamped; asymmetric Σ is symmetrized; singular / indefinite /
    /// ill-conditioned Σ receives an escalating Tikhonov ridge.
    /// Rejections (no principled repair exists): non-finite or
    /// non-positive `δ`, non-finite `θ`, non-finite centers, non-finite
    /// Σ entries.
    ///
    /// # Errors
    ///
    /// * [`PrqError::InvalidDelta`] unless `δ > 0` and finite,
    /// * [`PrqError::InvalidTheta`] for NaN or infinite `θ`,
    /// * [`PrqError::InvalidCenter`] for a NaN/∞ center coordinate,
    /// * [`PrqError::BadCovariance`] for non-finite Σ entries, or when
    ///   ridge escalation cannot produce an acceptable matrix.
    pub fn admit<const D: usize>(
        &self,
        center: Vector<D>,
        covariance: Matrix<D>,
        delta: f64,
        theta: f64,
        report: &mut DegradationReport,
    ) -> Result<PrqQuery<D>, PrqError> {
        // δ: reject. A non-positive or non-finite radius has no
        // repairable intent.
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(PrqError::InvalidDelta(delta));
        }
        // θ: NaN/∞ is garbage (reject); finite out-of-range is a
        // plausible "always"/"never" intent (clamp and record).
        if !theta.is_finite() {
            return Err(PrqError::InvalidTheta(theta));
        }
        let theta = if theta < self.theta_floor {
            report.record(DegradationReason::ThetaClamped {
                from: theta,
                to: self.theta_floor,
            });
            self.theta_floor
        } else if theta > self.theta_ceiling {
            report.record(DegradationReason::ThetaClamped {
                from: theta,
                to: self.theta_ceiling,
            });
            self.theta_ceiling
        } else {
            theta
        };
        // Center: reject on the first non-finite coordinate.
        for (axis, &value) in center.as_slice().iter().enumerate() {
            if !value.is_finite() {
                return Err(PrqError::InvalidCenter { axis, value });
            }
        }
        // Σ: non-finite entries are unrepairable.
        if !covariance.is_finite() {
            return Err(PrqError::BadCovariance(LinalgError::NonFinite));
        }
        // Asymmetry is repairable: replace by the symmetric part.
        let sigma = match covariance.check_symmetric(1e-9) {
            Ok(()) => covariance,
            Err(_) => {
                report.record(DegradationReason::CovarianceSymmetrized {
                    asymmetry: covariance.max_asymmetry(),
                });
                Matrix::from_fn(|i, j| 0.5 * (covariance[(i, j)] + covariance[(j, i)]))
            }
        };
        // Conditioning gate: accept Σ as-is only when the spectral
        // condition number is positive (so Σ ≻ 0) and below the policy
        // bound, and the Gaussian actually constructs.
        let condition = sigma.condition_number().unwrap_or(f64::INFINITY);
        if condition > 0.0 && condition <= self.max_condition {
            if let Ok(query) = PrqQuery::new(center, sigma, delta, theta) {
                return Ok(query);
            }
        }
        // Tikhonov repair: Σ + ε·I with ε escalating ×10. `scale`
        // dominates |λ_min| (Gershgorin: |λ| ≤ D · max |σ_ij|), so some
        // attempt is guaranteed to reach positive definiteness and a
        // condition number ≤ (λ_max + ε)/ε well under the bound.
        let mut max_abs = 0.0f64;
        for i in 0..D {
            for j in 0..D {
                max_abs = max_abs.max(sigma[(i, j)].abs());
            }
        }
        let scale = (sigma.trace().abs() / D.max(1) as f64)
            .max(max_abs * D as f64)
            .max(f64::MIN_POSITIVE);
        let mut ridge = scale * self.ridge_scale;
        for _ in 0..MAX_RIDGE_ATTEMPTS {
            let candidate = sigma.add_scaled_identity(ridge);
            let cond_ok = match candidate.condition_number() {
                Ok(c) => c > 0.0 && c <= self.max_condition,
                Err(_) => false,
            };
            if cond_ok {
                if let Ok(query) = PrqQuery::new(center, candidate, delta, theta) {
                    report.record(DegradationReason::CovarianceRegularized { condition, ridge });
                    return Ok(query);
                }
            }
            ridge *= 10.0;
        }
        // Unrepairable within bounds: surface the underlying rejection.
        match PrqQuery::new(center, sigma, delta, theta) {
            Ok(_) => Err(PrqError::BadCovariance(LinalgError::EigenNoConvergence {
                off_diagonal: condition,
            })),
            Err(e) => Err(e),
        }
    }
}

/// Resource caps for budgeted Phase-3 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalBudget {
    /// Most samples any single object's integration may draw.
    pub max_samples_per_object: usize,
    /// Most samples the whole query may draw across all objects.
    pub max_total_samples: usize,
    /// Most candidates Phase 3 will evaluate; the rest are reported
    /// uncertain rather than silently dropped.
    pub max_candidates: usize,
}

impl EvalBudget {
    /// No caps at all (every limit at `usize::MAX`).
    pub const UNLIMITED: Self = EvalBudget {
        max_samples_per_object: usize::MAX,
        max_total_samples: usize::MAX,
        max_candidates: usize::MAX,
    };

    /// The paper's configuration: 100 000 samples per object, no total
    /// or candidate cap.
    pub fn paper_default() -> Self {
        EvalBudget {
            max_samples_per_object: PAPER_MC_SAMPLES,
            max_total_samples: usize::MAX,
            max_candidates: usize::MAX,
        }
    }
}

impl Default for EvalBudget {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why an object ended up in [`ResilientOutcome::uncertain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncertainCause {
    /// The per-object budget ran out with the confidence interval still
    /// straddling `θ`.
    IntervalStraddlesTheta,
    /// The evaluator failed on this object.
    EvaluatorFault,
    /// A budget cap was hit before this object was evaluated at all.
    NotEvaluated,
}

/// An object the pipeline could not classify, with the best estimate it
/// has (if any).
#[derive(Debug, Clone, Copy)]
pub struct UncertainObject<'t, const D: usize, T> {
    /// The object's location.
    pub point: &'t Vector<D>,
    /// The object's payload.
    pub data: &'t T,
    /// The running probability estimate when evaluation stopped, or
    /// `None` when the object was never evaluated.
    pub estimate: Option<f64>,
    /// Why the object is uncertain.
    pub cause: UncertainCause,
}

/// The pipeline stage that ultimately produced the answer set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TerminalStrategy {
    /// The three-phase filtered pipeline ran with this strategy set.
    Filtered(StrategySet),
    /// The naive full scan ran (the last-resort fallback).
    NaiveScan,
}

/// Result of a resilient execution: answers, explicitly-uncertain
/// objects, the degradation report, and statistics.
#[derive(Debug)]
pub struct ResilientOutcome<'t, const D: usize, T> {
    /// Objects classified `Pr ≥ θ` (exactly or with the evaluator's
    /// configured confidence).
    pub answers: Vec<(&'t Vector<D>, &'t T)>,
    /// Objects the pipeline could not classify, each with its cause.
    pub uncertain: Vec<UncertainObject<'t, D, T>>,
    /// Every repair and fallback applied, in order.
    pub report: DegradationReport,
    /// Execution statistics (including `phase3_samples`,
    /// `early_terminations`, and `uncertain` counters).
    pub stats: QueryStats,
    /// Which pipeline ultimately produced the answers.
    pub terminal: TerminalStrategy,
}

/// The hardened executor: admission, strategy fallback, budgeted
/// Phase 3, and (behind the `fault-inject` feature) deterministic
/// fault injection.
///
/// ```
/// use gprq_core::resilience::{EvalBudget, ResilientExecutor, TerminalStrategy};
/// use gprq_core::{DeterministicBudgeted, Quadrature2dEvaluator, StrategySet};
/// use gprq_linalg::{Matrix, Vector};
/// use gprq_rtree::{RStarParams, RTree};
///
/// let points: Vec<(Vector<2>, u32)> = (0..400)
///     .map(|i| (Vector::from([(i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0]), i))
///     .collect();
/// let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
/// let mut exec = ResilientExecutor::new(StrategySet::ALL);
/// let mut eval = DeterministicBudgeted::new(Quadrature2dEvaluator::default());
/// // θ = 0.7 would be a hard error for RR/OR; here it degrades to BF.
/// let outcome = exec
///     .execute(&tree, Vector::from([50.0, 50.0]), Matrix::identity().scale(30.0), 20.0, 0.7, &mut eval)
///     .unwrap();
/// assert!(outcome.report.is_degraded());
/// assert_eq!(outcome.terminal, TerminalStrategy::Filtered(StrategySet::BF));
/// ```
#[derive(Debug, Clone)]
pub struct ResilientExecutor<'c> {
    strategies: StrategySet,
    fringe_mode: FringeMode,
    rr_catalog: Option<&'c RrCatalog>,
    bf_catalog: Option<&'c BfCatalog>,
    budget: EvalBudget,
    policy: AdmissionPolicy,
    metrics: Option<&'c PipelineMetrics>,
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultPlan>,
}

impl<'c> ResilientExecutor<'c> {
    /// Creates a resilient executor with the paper-default budget and
    /// default admission policy.
    pub fn new(strategies: StrategySet) -> Self {
        ResilientExecutor {
            strategies,
            fringe_mode: FringeMode::PaperFaithful,
            rr_catalog: None,
            bf_catalog: None,
            budget: EvalBudget::paper_default(),
            policy: AdmissionPolicy::default(),
            metrics: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Attaches a [`PipelineMetrics`] handle: phase spans, per-query
    /// counters, per-object sample histograms, and the repair/fallback
    /// counters all record into it.
    pub fn with_metrics(mut self, metrics: &'c PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Overrides the fringe-filter mode (see [`FringeMode`]).
    pub fn with_fringe_mode(mut self, mode: FringeMode) -> Self {
        self.fringe_mode = mode;
        self
    }

    /// Uses an RR U-catalog (dropped with a report entry on dimension
    /// mismatch instead of erroring).
    pub fn with_rr_catalog(mut self, catalog: &'c RrCatalog) -> Self {
        self.rr_catalog = Some(catalog);
        self
    }

    /// Uses a BF U-catalog (dropped with a report entry on dimension
    /// mismatch instead of erroring).
    pub fn with_bf_catalog(mut self, catalog: &'c BfCatalog) -> Self {
        self.bf_catalog = Some(catalog);
        self
    }

    /// Overrides the Phase-3 budget.
    pub fn with_budget(mut self, budget: EvalBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> EvalBudget {
        self.budget
    }

    /// Arms a deterministic fault plan; every subsequent execution
    /// consults it at each fault site.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    #[cfg(feature = "fault-inject")]
    fn fault_trips(&mut self, site: FaultSite) -> bool {
        match &mut self.faults {
            Some(plan) => plan.trip(site),
            None => false,
        }
    }

    /// Runs the full resilient pipeline on raw query parameters.
    ///
    /// Unlike [`PrqExecutor::execute`], this takes the raw `(q, Σ, δ,
    /// θ)` because admission may repair them before a [`PrqQuery`] can
    /// exist. Strategy preconditions never surface as errors — they
    /// degrade with a report entry; the only errors are unrepairable
    /// inputs.
    ///
    /// # Errors
    ///
    /// Admission rejections only: [`PrqError::InvalidDelta`],
    /// [`PrqError::InvalidTheta`] (non-finite θ),
    /// [`PrqError::InvalidCenter`], [`PrqError::BadCovariance`].
    pub fn execute<'t, const D: usize, T, E>(
        &mut self,
        tree: &'t RTree<D, T>,
        center: Vector<D>,
        covariance: Matrix<D>,
        delta: f64,
        theta: f64,
        evaluator: &mut E,
    ) -> Result<ResilientOutcome<'t, D, T>, PrqError>
    where
        E: BudgetedEvaluator<D>,
    {
        let mut report = DegradationReport::new();

        // Fault: degrade Σ to a rank-1 (singular) matrix before
        // admission, forcing the ridge-repair path.
        #[cfg(feature = "fault-inject")]
        let covariance = if self.fault_trips(FaultSite::SigmaDegeneracy) {
            let fill = covariance.trace().abs().max(1.0) / D.max(1) as f64;
            Matrix::from_fn(|_, _| fill)
        } else {
            covariance
        };

        let query = self
            .policy
            .admit(center, covariance, delta, theta, &mut report)?;

        // --- Preflight strategy fallback chain. ------------------------
        let mut rr_cat = self.rr_catalog;
        if let Some(cat) = rr_cat {
            if cat.dim() != D {
                report.record(DegradationReason::CatalogDropped {
                    which: CatalogKind::Rr,
                    catalog_dim: cat.dim(),
                    query_dim: D,
                });
                rr_cat = None;
            }
        }
        let mut bf_cat = self.bf_catalog;
        if let Some(cat) = bf_cat {
            if cat.dim() != D {
                report.record(DegradationReason::CatalogDropped {
                    which: CatalogKind::Bf,
                    catalog_dim: cat.dim(),
                    query_dim: D,
                });
                bf_cat = None;
            }
        }
        // Fault: catalogs vanish (e.g. a cache eviction mid-flight).
        #[cfg(feature = "fault-inject")]
        if self.fault_trips(FaultSite::CatalogLookup) {
            if let Some(cat) = rr_cat.take() {
                report.record(DegradationReason::CatalogDropped {
                    which: CatalogKind::Rr,
                    catalog_dim: cat.dim(),
                    query_dim: D,
                });
            }
            if let Some(cat) = bf_cat.take() {
                report.record(DegradationReason::CatalogDropped {
                    which: CatalogKind::Bf,
                    catalog_dim: cat.dim(),
                    query_dim: D,
                });
            }
        }

        let mut strategies = self.strategies;
        // θ ≥ 1/2: the θ-region does not exist, so any set using RR or
        // OR degrades to BF-only (which works at any θ).
        if query.theta() >= 0.5 && (strategies.rr || strategies.or) {
            let from = strategies;
            strategies = StrategySet::BF;
            report.record(DegradationReason::StrategySwitched {
                from,
                to: strategies,
                cause: SwitchCause::ThetaAboveHalf(query.theta()),
            });
        }
        // OR-only (θ < 1/2 here): OR cannot produce a Phase-1 region;
        // pair it with RR. A fully-empty set has nothing to salvage and
        // goes straight to the naive scan.
        let mut naive_cause: Option<SwitchCause> = None;
        if strategies.validate().is_err() {
            if strategies.or {
                let from = strategies;
                strategies = StrategySet::RR_OR;
                report.record(DegradationReason::StrategySwitched {
                    from,
                    to: strategies,
                    cause: SwitchCause::NoPrimaryStrategy,
                });
            } else {
                naive_cause = Some(SwitchCause::NoPrimaryStrategy);
            }
        }

        // --- Filtered attempt (Phases 1–2). ----------------------------
        let mut stats = QueryStats::default();
        let mut answers: Vec<(&'t Vector<D>, &'t T)> = Vec::new();
        let mut scratch = QueryScratch::new();

        // Fault: the index cannot complete a traversal. Exercise the
        // fallible hook (so the abort path is genuinely taken), discard
        // partial output, and fall back to the scan.
        #[cfg(feature = "fault-inject")]
        if naive_cause.is_none() && self.fault_trips(FaultSite::Phase1Traversal) {
            let mut search_stats = SearchStats::default();
            let aborted: Result<(), ()> =
                tree.try_query_rect_visit(&Rect::everything(), &mut search_stats, |_, _| Err(()));
            debug_assert!(aborted.is_err() || tree.is_empty());
            naive_cause = Some(SwitchCause::IndexUnavailable);
        }

        if naive_cause.is_none() {
            let mut exec = PrqExecutor::new(strategies).with_fringe_mode(self.fringe_mode);
            if let Some(metrics) = self.metrics {
                exec = exec.with_metrics(metrics);
            }
            if let Some(cat) = rr_cat {
                exec = exec.with_rr_catalog(cat);
            }
            if let Some(cat) = bf_cat {
                exec = exec.with_bf_catalog(cat);
            }
            if exec
                .collect_candidates(tree, &query, &mut scratch, &mut stats, &mut answers)
                .is_err()
            {
                // Unreachable after preflight for today's strategies, but
                // resilience means catching tomorrow's failure modes too.
                naive_cause = Some(SwitchCause::ExecutionFailed);
            }
        }

        let terminal = match naive_cause {
            None => TerminalStrategy::Filtered(strategies),
            Some(cause) => {
                report.record(DegradationReason::NaiveFallback { cause });
                // Discard any partial filtered state and rebuild the
                // Phase-3 work list as the whole database.
                stats = QueryStats::default();
                answers.clear();
                scratch = QueryScratch::new();
                let span1 = self.metrics.map(|m| m.phase_span(Phase::Search));
                let t0 = Instant::now();
                let work = scratch.naive_work_list();
                work.extend(tree.iter());
                stats.phase1_candidates = work.len();
                stats.phase1_time = t0.elapsed();
                if let Some(span) = span1 {
                    span.finish();
                }
                TerminalStrategy::NaiveScan
            }
        };

        // --- Phase 3: budgeted evaluation. -----------------------------
        let mut uncertain: Vec<UncertainObject<'t, D, T>> = Vec::new();
        self.phase3(
            &query,
            &scratch,
            evaluator,
            &mut stats,
            &mut report,
            &mut answers,
            &mut uncertain,
        );
        stats.answers = answers.len();
        if let Some(metrics) = self.metrics {
            metrics.record_query(&stats);
            metrics.record_report(&report);
        }

        Ok(ResilientOutcome {
            answers,
            uncertain,
            report,
            stats,
            terminal,
        })
    }

    /// The budgeted Phase-3 loop over `scratch.to_integrate`.
    #[allow(clippy::too_many_arguments)]
    fn phase3<'t, const D: usize, T, E>(
        &mut self,
        query: &PrqQuery<D>,
        scratch: &QueryScratch<'t, D, T>,
        evaluator: &mut E,
        stats: &mut QueryStats,
        report: &mut DegradationReport,
        answers: &mut Vec<(&'t Vector<D>, &'t T)>,
        uncertain: &mut Vec<UncertainObject<'t, D, T>>,
    ) where
        E: BudgetedEvaluator<D>,
    {
        let items = scratch.work_list();
        let span3 = self.metrics.map(|m| m.phase_span(Phase::Integrate));
        let t2 = Instant::now();
        evaluator.begin_query(query.gaussian());
        let mut faulted = 0usize;
        let mut starved = 0usize;
        for (idx, &(point, data)) in items.iter().enumerate() {
            // Candidate cap: everything past it is reported, not dropped.
            if idx >= self.budget.max_candidates {
                let skipped = items.len() - idx;
                for &(p, d) in &items[idx..] {
                    uncertain.push(UncertainObject {
                        point: p,
                        data: d,
                        estimate: None,
                        cause: UncertainCause::NotEvaluated,
                    });
                }
                stats.uncertain += skipped;
                report.record(DegradationReason::BudgetExhausted {
                    scope: BudgetScope::Candidates,
                    unresolved: skipped,
                });
                break;
            }
            // Per-object budget, capped by what's left of the total.
            let remaining_total = self.budget.max_total_samples - stats.phase3_samples;
            #[allow(unused_mut)]
            let mut per_object = self.budget.max_samples_per_object.min(remaining_total);
            // Fault: this object's sample budget is starved away.
            #[cfg(feature = "fault-inject")]
            if self.fault_trips(FaultSite::SampleStarvation) {
                per_object = 0;
            }
            let result = {
                #[cfg(feature = "fault-inject")]
                {
                    if self.fault_trips(FaultSite::Evaluator) {
                        Err(EvalFailure::Injected)
                    } else {
                        evaluator.evaluate(
                            query.gaussian(),
                            point,
                            query.delta(),
                            query.theta(),
                            per_object,
                        )
                    }
                }
                #[cfg(not(feature = "fault-inject"))]
                {
                    evaluator.evaluate(
                        query.gaussian(),
                        point,
                        query.delta(),
                        query.theta(),
                        per_object,
                    )
                }
            };
            match result {
                Ok(rep) => {
                    stats.integrations += 1;
                    stats.phase3_samples += rep.samples;
                    if let Some(metrics) = self.metrics {
                        metrics.record_phase3_object(rep.samples);
                    }
                    if rep.early {
                        stats.early_terminations += 1;
                    }
                    match rep.verdict {
                        Verdict::Accept => answers.push((point, data)),
                        Verdict::Reject => {}
                        Verdict::Uncertain => {
                            stats.uncertain += 1;
                            uncertain.push(UncertainObject {
                                point,
                                data,
                                estimate: Some(rep.estimate),
                                cause: UncertainCause::IntervalStraddlesTheta,
                            });
                        }
                    }
                }
                Err(EvalFailure::NoBudget) => {
                    starved += 1;
                    stats.uncertain += 1;
                    uncertain.push(UncertainObject {
                        point,
                        data,
                        estimate: None,
                        cause: UncertainCause::NotEvaluated,
                    });
                }
                Err(EvalFailure::Injected) => {
                    faulted += 1;
                    stats.uncertain += 1;
                    uncertain.push(UncertainObject {
                        point,
                        data,
                        estimate: None,
                        cause: UncertainCause::EvaluatorFault,
                    });
                }
            }
        }
        if faulted > 0 {
            report.record(DegradationReason::EvaluatorFaults { objects: faulted });
        }
        if starved > 0 {
            report.record(DegradationReason::BudgetExhausted {
                scope: BudgetScope::TotalSamples,
                unresolved: starved,
            });
        }
        stats.phase3_time = t2.elapsed();
        stats.absorb_cloud(&evaluator.take_cloud_stats());
        if let Some(span) = span3 {
            span.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{DeterministicBudgeted, Quadrature2dEvaluator};
    use gprq_rtree::RStarParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sigma_paper() -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
    }

    fn admit2(
        center: [f64; 2],
        sigma: Matrix<2>,
        delta: f64,
        theta: f64,
    ) -> (Result<PrqQuery<2>, PrqError>, DegradationReport) {
        let mut report = DegradationReport::new();
        let q = AdmissionPolicy::default().admit(
            Vector::from(center),
            sigma,
            delta,
            theta,
            &mut report,
        );
        (q, report)
    }

    #[test]
    fn clean_query_admits_with_empty_report() {
        let (q, report) = admit2([500.0, 500.0], sigma_paper(), 25.0, 0.01);
        let q = q.unwrap();
        assert!(!report.is_degraded());
        assert_eq!(report.len(), 0);
        assert_eq!(q.theta(), 0.01);
        assert_eq!(q.gaussian().covariance(), &sigma_paper());
    }

    #[test]
    fn unrepairable_inputs_are_rejected() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let (q, report) = admit2([0.0, 0.0], sigma_paper(), bad, 0.1);
            assert!(matches!(q, Err(PrqError::InvalidDelta(_))), "δ = {bad}");
            assert!(report.is_empty());
        }
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let (q, _) = admit2([0.0, 0.0], sigma_paper(), 1.0, bad);
            assert!(matches!(q, Err(PrqError::InvalidTheta(_))), "θ = {bad}");
        }
        let (q, _) = admit2([1.0, f64::NAN], sigma_paper(), 1.0, 0.1);
        assert!(
            matches!(q, Err(PrqError::InvalidCenter { axis: 1, .. })),
            "{q:?}"
        );
        let nonfinite = Matrix::from_rows([[1.0, 0.0], [0.0, f64::INFINITY]]);
        let (q, _) = admit2([0.0, 0.0], nonfinite, 1.0, 0.1);
        assert!(matches!(
            q,
            Err(PrqError::BadCovariance(LinalgError::NonFinite))
        ));
    }

    #[test]
    fn theta_extremes_are_clamped_and_reported() {
        let policy = AdmissionPolicy::default();
        for (raw, expect) in [
            (0.0, policy.theta_floor),
            (-5.0, policy.theta_floor),
            (1.0, policy.theta_ceiling),
            (7.5, policy.theta_ceiling),
        ] {
            let (q, report) = admit2([0.0, 0.0], sigma_paper(), 1.0, raw);
            let q = q.unwrap();
            assert_eq!(q.theta(), expect, "θ = {raw}");
            assert_eq!(report.len(), 1);
            assert!(matches!(
                report.iter().next(),
                Some(DegradationReason::ThetaClamped { from, .. }) if *from == raw
            ));
        }
    }

    #[test]
    fn asymmetric_covariance_is_symmetrized() {
        // Asymmetry large enough to fail the 1e-9 relative check.
        let lopsided = Matrix::from_rows([[70.0, 40.0], [30.0, 30.0]]);
        let (q, report) = admit2([0.0, 0.0], lopsided, 1.0, 0.1);
        let q = q.unwrap();
        assert!(report
            .iter()
            .any(|r| matches!(r, DegradationReason::CovarianceSymmetrized { asymmetry } if (asymmetry - 10.0).abs() < 1e-12)));
        // The admitted covariance is the symmetric part.
        assert!((q.gaussian().covariance()[(0, 1)] - 35.0).abs() < 1e-12);
        assert!((q.gaussian().covariance()[(1, 0)] - 35.0).abs() < 1e-12);
    }

    #[test]
    fn singular_covariance_gets_a_ridge() {
        // Rank 1: [[4, 2], [2, 1]] has eigenvalues {5, 0}.
        let singular = Matrix::from_rows([[4.0, 2.0], [2.0, 1.0]]);
        let (q, report) = admit2([0.0, 0.0], singular, 1.0, 0.1);
        let q = q.unwrap();
        let ridge = report.iter().find_map(|r| match r {
            DegradationReason::CovarianceRegularized { ridge, .. } => Some(*ridge),
            _ => None,
        });
        let ridge = ridge.expect("ridge repair must be reported");
        assert!(ridge > 0.0);
        // The repaired matrix is the original plus the reported ridge.
        let cov = q.gaussian().covariance();
        assert!((cov[(0, 0)] - (4.0 + ridge)).abs() < 1e-9 * (4.0 + ridge));
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        // And it is genuinely well-conditioned now.
        let cond = cov.condition_number().unwrap();
        assert!(cond <= AdmissionPolicy::default().max_condition);
    }

    #[test]
    fn indefinite_covariance_is_repaired_or_rejected_never_panics() {
        // λ = {3, −1}: needs a ridge > 1 to become PD.
        let indefinite = Matrix::from_rows([[1.0, 2.0], [2.0, 1.0]]);
        let (q, report) = admit2([0.0, 0.0], indefinite, 1.0, 0.1);
        let q = q.unwrap();
        assert!(report
            .iter()
            .any(|r| matches!(r, DegradationReason::CovarianceRegularized { .. })));
        assert!(q.gaussian().covariance().cholesky().is_ok());
    }

    fn random_tree(n: usize, seed: u64) -> RTree<2, usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                    i,
                )
            })
            .collect();
        RTree::bulk_load(points, RStarParams::paper_default(2))
    }

    fn oracle() -> DeterministicBudgeted<Quadrature2dEvaluator> {
        DeterministicBudgeted::new(Quadrature2dEvaluator::default())
    }

    #[test]
    fn resilient_matches_plain_executor_on_clean_input() {
        let tree = random_tree(3_000, 5);
        let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma_paper(), 25.0, 0.01).unwrap();
        let mut plain_eval = Quadrature2dEvaluator::default();
        let plain = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut plain_eval)
            .unwrap();
        let mut res = ResilientExecutor::new(StrategySet::ALL);
        let outcome = res
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                25.0,
                0.01,
                &mut oracle(),
            )
            .unwrap();
        assert!(!outcome.report.is_degraded(), "{}", outcome.report);
        assert!(outcome.uncertain.is_empty());
        assert_eq!(
            outcome.terminal,
            TerminalStrategy::Filtered(StrategySet::ALL)
        );
        let mut a: Vec<usize> = plain.answers.iter().map(|(_, d)| **d).collect();
        let mut b: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(
            outcome.stats.phase1_candidates,
            plain.stats.phase1_candidates
        );
    }

    #[test]
    fn empty_strategy_set_falls_back_to_naive_scan() {
        let tree = random_tree(400, 9);
        let none = StrategySet {
            rr: false,
            or: false,
            bf: false,
        };
        let mut res = ResilientExecutor::new(none);
        let outcome = res
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                25.0,
                0.01,
                &mut oracle(),
            )
            .unwrap();
        assert_eq!(outcome.terminal, TerminalStrategy::NaiveScan);
        assert!(outcome.report.iter().any(|r| matches!(
            r,
            DegradationReason::NaiveFallback {
                cause: SwitchCause::NoPrimaryStrategy
            }
        )));
        // The scan still produces the true answer set.
        let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma_paper(), 25.0, 0.01).unwrap();
        let mut quad = Quadrature2dEvaluator::default();
        let naive = crate::naive::execute_naive(&tree, &query, &mut quad);
        let mut a: Vec<usize> = naive.answers.iter().map(|(_, d)| **d).collect();
        let mut b: Vec<usize> = outcome.answers.iter().map(|(_, d)| **d).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(outcome.stats.phase1_candidates, tree.len());
    }

    #[test]
    fn mismatched_catalogs_are_dropped_not_fatal() {
        let tree = random_tree(1_000, 13);
        let rr_cat = RrCatalog::new(3);
        let bf_cat = BfCatalog::new(5);
        let mut res = ResilientExecutor::new(StrategySet::ALL)
            .with_rr_catalog(&rr_cat)
            .with_bf_catalog(&bf_cat);
        let outcome = res
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                25.0,
                0.01,
                &mut oracle(),
            )
            .unwrap();
        let dropped: Vec<CatalogKind> = outcome
            .report
            .iter()
            .filter_map(|r| match r {
                DegradationReason::CatalogDropped { which, .. } => Some(*which),
                _ => None,
            })
            .collect();
        assert_eq!(dropped, [CatalogKind::Rr, CatalogKind::Bf]);
        assert_eq!(
            outcome.terminal,
            TerminalStrategy::Filtered(StrategySet::ALL)
        );
    }

    #[test]
    fn candidate_cap_reports_the_tail_as_uncertain() {
        let tree = random_tree(3_000, 17);
        let mut res = ResilientExecutor::new(StrategySet::ALL).with_budget(EvalBudget {
            max_candidates: 3,
            ..EvalBudget::paper_default()
        });
        let outcome = res
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                25.0,
                0.01,
                &mut oracle(),
            )
            .unwrap();
        let capped = outcome.report.iter().find_map(|r| match r {
            DegradationReason::BudgetExhausted {
                scope: BudgetScope::Candidates,
                unresolved,
            } => Some(*unresolved),
            _ => None,
        });
        let unresolved = capped.expect("cap must be reported");
        assert!(unresolved > 0);
        assert_eq!(outcome.stats.uncertain, unresolved);
        assert_eq!(
            outcome
                .uncertain
                .iter()
                .filter(|u| u.cause == UncertainCause::NotEvaluated)
                .count(),
            unresolved
        );
        assert_eq!(outcome.stats.integrations, 3);
        // Accounting: every Phase-1 survivor is answered, rejected, or
        // explicitly uncertain.
        let s = outcome.stats;
        assert_eq!(
            s.phase1_candidates,
            s.pruned_by_fringe
                + s.pruned_by_or
                + s.pruned_by_bf
                + s.accepted_without_integration
                + s.integrations
                + s.uncertain
        );
    }

    #[test]
    fn total_sample_budget_starves_the_tail() {
        use crate::evaluator::SequentialMonteCarloEvaluator;
        let tree = random_tree(3_000, 19);
        // RR alone never sure-accepts, so every Phase-2 survivor needs
        // integration; a 600-sample total budget dries up after at most
        // two objects and starves the rest.
        let mut res = ResilientExecutor::new(StrategySet::RR).with_budget(EvalBudget {
            max_samples_per_object: 512,
            max_total_samples: 600,
            max_candidates: usize::MAX,
        });
        let mut eval =
            SequentialMonteCarloEvaluator::with_defaults(3).with_early_termination(false);
        let outcome = res
            .execute(
                &tree,
                Vector::from([500.0, 500.0]),
                sigma_paper(),
                25.0,
                0.01,
                &mut eval,
            )
            .unwrap();
        assert!(outcome.stats.phase3_samples <= 600);
        assert!(
            outcome.stats.integrations >= 1,
            "budget admits at least the first object"
        );
        let starved = outcome
            .uncertain
            .iter()
            .filter(|u| u.cause == UncertainCause::NotEvaluated)
            .count();
        assert!(starved > 0, "tail must be starved: {:?}", outcome.stats);
        assert!(outcome.report.iter().any(|r| matches!(
            r,
            DegradationReason::BudgetExhausted {
                scope: BudgetScope::TotalSamples,
                unresolved,
            } if *unresolved == starved
        )));
    }

    #[test]
    fn report_display_is_readable() {
        let mut report = DegradationReport::new();
        assert_eq!(report.to_string(), "no degradation");
        report.record(DegradationReason::ThetaClamped {
            from: 0.0,
            to: 1e-9,
        });
        report.record(DegradationReason::StrategySwitched {
            from: StrategySet::ALL,
            to: StrategySet::BF,
            cause: SwitchCause::ThetaAboveHalf(0.6),
        });
        let s = report.to_string();
        assert!(s.contains("θ clamped"), "{s}");
        assert!(s.contains("ALL → BF"), "{s}");
    }
}
