//! Analytic cost model for probabilistic range queries.
//!
//! The paper's Figs. 13–16 argue geometrically: "if we assume the target
//! objects are uniformly distributed, their areas correspond to the query
//! processing costs". This module turns that argument into an API — the
//! expected number of Phase-3 integrations for each strategy, computed
//! from region volumes and a data-density estimate, *before* running the
//! query. Useful for query optimizers choosing a strategy set, and used
//! by the `fig13_16` experiment binary.

use crate::query::PrqQuery;
use crate::strategy::bf::{BfBounds, RejectBound};
use crate::strategy::or::OrFilter;
use crate::strategy::rr::{FringeMode, RrFilter};
use crate::strategy::StrategySet;
use crate::theta_region::ThetaRegion;
use crate::PrqError;
use gprq_gaussian::specfun::ball_volume;
use gprq_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples used by the Monte-Carlo volume fallbacks.
const VOLUME_SAMPLES: usize = 200_000;

/// Per-strategy integration-region volumes for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionVolumes {
    /// RR: the rounded Minkowski sum (θ-box ⊕ δ-ball).
    pub rr: f64,
    /// OR: the oblique box (exact — rotation preserves volume).
    pub or: f64,
    /// BF: the annulus between `α⊥` and `α∥` (0 when the answer is
    /// provably empty).
    pub bf: f64,
    /// Intersection of all three (Monte-Carlo estimate).
    pub all: f64,
}

/// Computes the integration-region volumes of a query.
///
/// `rr` and `all` use seeded Monte-Carlo over the covering box (exact
/// closed forms exist for `rr` only at `d = 2`); `or` and `bf` are exact.
///
/// # Errors
///
/// Propagates [`PrqError::ThetaRegionUndefined`] for `θ ≥ 1/2`.
pub fn region_volumes<const D: usize>(
    query: &PrqQuery<D>,
    seed: u64,
) -> Result<RegionVolumes, PrqError> {
    let region = ThetaRegion::for_query(query)?;
    let rr = RrFilter::new(query, &region, FringeMode::AllDimensions);
    let or = OrFilter::new(query, &region);
    let bf = BfBounds::exact(query);

    // Exact pieces.
    let or_volume: f64 = or
        .half_widths()
        .as_slice()
        .iter()
        .map(|w| 2.0 * w)
        .product();
    let (alpha_par, bf_volume) = match bf.reject {
        RejectBound::RejectAll => (0.0, 0.0),
        RejectBound::Radius(par) => {
            let inner = bf.accept.map_or(0.0, |a| ball_volume(D, a));
            (par, ball_volume(D, par) - inner)
        }
    };

    // Monte-Carlo for RR (rounded box) and the triple intersection, over
    // a box covering every region.
    let search = rr.search_rect();
    let mut cover_half = Vector::<D>::from_fn(|i| (search.hi[i] - search.lo[i]) * 0.5);
    for i in 0..D {
        cover_half[i] = cover_half[i].max(alpha_par) * 1.0000001;
    }
    let center = *query.center();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rr_hits = 0usize;
    let mut all_hits = 0usize;
    for _ in 0..VOLUME_SAMPLES {
        let p =
            Vector::<D>::from_fn(|i| center[i] + (rng.gen::<f64>() * 2.0 - 1.0) * cover_half[i]);
        let in_rr = search.contains_point(&p) && rr.passes(&p);
        if in_rr {
            rr_hits += 1;
        }
        if in_rr && or.passes(&p) {
            let dist = p.distance(&center);
            let in_bf = match bf.reject {
                RejectBound::RejectAll => false,
                RejectBound::Radius(par) => dist <= par && bf.accept.map_or(true, |a| dist > a),
            };
            if in_bf {
                all_hits += 1;
            }
        }
    }
    let cover_volume: f64 = cover_half
        .as_slice()
        .iter()
        .map(|h| 2.0 * h)
        .product::<f64>();
    Ok(RegionVolumes {
        rr: rr_hits as f64 / VOLUME_SAMPLES as f64 * cover_volume,
        or: or_volume,
        bf: bf_volume,
        all: all_hits as f64 / VOLUME_SAMPLES as f64 * cover_volume,
    })
}

/// A data-density estimate (objects per unit volume).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityEstimate {
    /// Objects per unit volume near the query.
    pub density: f64,
}

impl DensityEstimate {
    /// Uniform density: `n` objects over `volume`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn uniform(n: usize, volume: f64) -> Self {
        assert!(n > 0 && volume > 0.0);
        DensityEstimate {
            density: n as f64 / volume,
        }
    }

    /// Local density from a probe count: `count` objects found within a
    /// ball of radius `radius` (in `D` dimensions).
    ///
    /// # Panics
    ///
    /// Panics unless `radius > 0`.
    pub fn from_probe<const D: usize>(count: usize, radius: f64) -> Self {
        assert!(radius > 0.0);
        DensityEstimate {
            density: count as f64 / ball_volume(D, radius),
        }
    }

    /// Expected candidates in a region of the given volume.
    pub fn expected_candidates(&self, volume: f64) -> f64 {
        self.density * volume
    }
}

/// Expected number of Phase-3 integrations for a strategy set, from the
/// query's region volumes and a density estimate.
pub fn expected_integrations(
    volumes: &RegionVolumes,
    density: &DensityEstimate,
    strategies: StrategySet,
) -> f64 {
    // The integration region of a combination is the intersection of the
    // enabled strategies' regions; we have exact volumes for singles and
    // the MC triple intersection. Pairwise combinations are bounded by
    // the minimum of their members (a tight proxy in practice since the
    // regions share the same center and scale).
    let v = match (strategies.rr, strategies.or, strategies.bf) {
        (true, false, false) => volumes.rr,
        (false, false, true) => volumes.bf,
        (true, false, true) => volumes.rr.min(volumes.bf),
        (true, true, false) => volumes.rr.min(volumes.or),
        (false, true, true) => volumes.bf.min(volumes.or),
        (true, true, true) => volumes.all,
        // OR alone / empty set have no defined Phase-1 region; report the
        // OR box volume (the only constraint present).
        _ => volumes.or,
    };
    density.expected_candidates(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;

    fn paper_query(gamma: f64) -> PrqQuery<2> {
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma);
        PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap()
    }

    #[test]
    fn rr_volume_matches_closed_form_2d() {
        // d = 2 closed form for the rounded box:
        // 4·w₀·w₁ + 2δ·(2w₀ + 2w₁) + πδ².
        let q = paper_query(10.0);
        let region = ThetaRegion::for_query(&q).unwrap();
        let w = region.box_half_widths();
        let delta = q.delta();
        let exact = 4.0 * w[0] * w[1]
            + 2.0 * delta * (2.0 * w[0] + 2.0 * w[1])
            + std::f64::consts::PI * delta * delta;
        let v = region_volumes(&q, 1).unwrap();
        assert!(
            (v.rr - exact).abs() < 0.02 * exact,
            "MC {} vs closed form {exact}",
            v.rr
        );
    }

    #[test]
    fn intersection_is_smallest() {
        let q = paper_query(100.0);
        let v = region_volumes(&q, 2).unwrap();
        assert!(v.all <= v.rr * 1.01);
        assert!(v.all <= v.or * 1.01);
        assert!(v.all <= v.bf * 1.01);
        assert!(v.all > 0.0);
    }

    #[test]
    fn volumes_grow_with_gamma() {
        let small = region_volumes(&paper_query(1.0), 3).unwrap();
        let large = region_volumes(&paper_query(100.0), 3).unwrap();
        assert!(large.rr > small.rr);
        assert!(large.or > small.or);
        assert!(large.all > small.all);
    }

    #[test]
    fn expected_integrations_track_measured_counts() {
        // Build a uniform dataset, run the real executor, and require the
        // model's prediction within ~25 % for RR and ALL.
        use crate::evaluator::Quadrature2dEvaluator;
        use crate::executor::PrqExecutor;
        use gprq_rtree::{RStarParams, RTree};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 40_000;
        let extent = 1000.0;
        let mut rng = StdRng::seed_from_u64(7);
        let points: Vec<(Vector<2>, usize)> = (0..n)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * extent, rng.gen::<f64>() * extent]),
                    i,
                )
            })
            .collect();
        let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
        let q = paper_query(10.0);
        let volumes = region_volumes(&q, 5).unwrap();
        let density = DensityEstimate::uniform(n, extent * extent);

        for set in [StrategySet::RR, StrategySet::ALL] {
            let mut eval = Quadrature2dEvaluator::default();
            let outcome = PrqExecutor::new(set).execute(&tree, &q, &mut eval).unwrap();
            // The model predicts the region needing integration only
            // (BF sure-accepts sit inside α⊥, outside the annulus), so
            // compare against the integration count.
            let measured = outcome.stats.integrations as f64;
            let predicted = expected_integrations(&volumes, &density, set);
            let ratio = measured.max(1.0) / predicted.max(1.0);
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: measured {measured}, predicted {predicted}",
                set.name()
            );
        }
    }

    #[test]
    fn bf_annulus_volume_exact() {
        let q = paper_query(10.0);
        let v = region_volumes(&q, 9).unwrap();
        let b = BfBounds::exact(&q);
        let RejectBound::Radius(par) = b.reject else {
            panic!()
        };
        let perp = b.accept.unwrap();
        let exact = std::f64::consts::PI * (par * par - perp * perp);
        assert!((v.bf - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn reject_all_query_has_zero_bf_volume() {
        let q = PrqQuery::new(
            Vector::from([0.0, 0.0]),
            Matrix::identity().scale(100.0),
            0.5,
            0.49,
        )
        .unwrap();
        let v = region_volumes(&q, 4).unwrap();
        assert_eq!(v.bf, 0.0);
        assert_eq!(v.all, 0.0);
    }

    #[test]
    fn density_estimators() {
        let d = DensityEstimate::uniform(1000, 100.0);
        assert_eq!(d.density, 10.0);
        assert_eq!(d.expected_candidates(2.5), 25.0);
        let p = DensityEstimate::from_probe::<2>(314, 10.0);
        // 314 points in a radius-10 disc (area ≈ 314.16) → density ≈ 1.
        assert!((p.density - 1.0).abs() < 0.01);
    }
}
