//! U-catalogs: precomputed lookup tables for θ-region radii and BF bound
//! radii (paper §IV-A.3 and §IV-C.2c).
//!
//! The paper cannot invert its Gaussian integrals analytically, so it
//! tabulates them offline ("we construct a table that contains θ and its
//! corresponding r_θ", "entries with the form (δ, θ, α)") and uses
//! *conservative* lookup rules at query time (Algorithm 1 line 4,
//! Eqs. 32–33): a slightly-off entry is acceptable as long as it errs
//! toward retrieving more candidates, never fewer.
//!
//! This crate also has exact inverses (`gprq_gaussian::chi::chi_inverse`,
//! `gprq_gaussian::noncentral::inverse_center_distance`), so the catalogs
//! here are (a) a faithful reproduction of the paper's machinery and (b)
//! the fast path when many queries share a dimension — the `ablation`
//! bench compares the two.

use gprq_gaussian::chi::{chi_ball_probability, chi_inverse};
use gprq_gaussian::noncentral::inverse_center_distance;

/// Result of a BF catalog lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CatalogLookup {
    /// A safe radius was found.
    Alpha(f64),
    /// The catalog proves no radius exists: even a centered ball of the
    /// (conservatively enlarged) radius cannot hold the target mass.
    /// For a reject bound this means *no object can qualify*.
    NoSolution,
    /// The query parameters fall outside the tabulated grid; the caller
    /// should fall back to the exact inverse.
    OutOfGrid,
}

/// The RR strategy's catalog: `θ → r_θ` for a fixed dimension
/// (paper §IV-A.3).
#[derive(Debug, Clone)]
pub struct RrCatalog {
    dim: usize,
    /// `(θ*, r_θ*)` entries, ascending in `θ*`.
    entries: Vec<(f64, f64)>,
}

impl RrCatalog {
    /// Builds a catalog over an explicit grid of θ values (each must be
    /// in `(0, 1/2)`).
    ///
    /// # Panics
    ///
    /// Panics on an empty grid or out-of-range values.
    pub fn with_thetas(dim: usize, mut thetas: Vec<f64>) -> Self {
        assert!(!thetas.is_empty(), "catalog grid must be non-empty");
        assert!(
            thetas.iter().all(|t| *t > 0.0 && *t < 0.5),
            "θ grid values must lie in (0, 1/2)"
        );
        thetas.sort_by(f64::total_cmp);
        thetas.dedup();
        let entries = thetas
            .into_iter()
            .map(|t| (t, chi_inverse(dim, 1.0 - 2.0 * t)))
            .collect();
        RrCatalog { dim, entries }
    }

    /// A default grid: 256 log-spaced values covering `θ ∈ [10⁻⁶, 0.499]`.
    pub fn new(dim: usize) -> Self {
        let n = 256;
        let (lo, hi) = (1e-6f64, 0.499f64);
        let thetas = (0..n)
            .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
            .collect();
        Self::with_thetas(dim, thetas)
    }

    /// The dimension this catalog was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the catalog is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Conservative lookup (Algorithm 1, line 4): returns `r_θ*` for the
    /// **largest tabulated `θ* ≤ θ`**. Because `r` decreases in `θ`, the
    /// returned radius over-covers the exact θ-region, keeping filtering
    /// safe at the cost of a few extra candidates.
    ///
    /// Returns `None` when `θ` is below the smallest grid value (every
    /// tabulated radius would *under*-cover — unsafe); callers fall back
    /// to the exact inverse.
    // INVARIANT: rounds θ *down* to a tabulated θ* ≤ θ; r(θ) is
    // decreasing, so the returned r_θ* ≥ r_θ always over-covers the exact
    // θ-region — RR pruning against it never drops a true answer.
    pub fn lookup(&self, theta: f64) -> Option<f64> {
        let idx = self.entries.partition_point(|(t, _)| *t <= theta);
        if idx == 0 {
            None
        } else {
            Some(self.entries[idx - 1].1)
        }
    }
}

/// The BF strategy's catalog: `(δ, θ) → α` over a 2-D grid, for a fixed
/// dimension (paper §IV-C.1: "entries with the form (δ, θ, α)").
///
/// The tabulated function is `α(δ, θ)` = the center distance at which a
/// ball of radius `δ` holds mass exactly `θ` under the *standard*
/// Gaussian. It is increasing in `δ` and decreasing in `θ`, which the
/// conservative lookups exploit.
#[derive(Debug, Clone)]
pub struct BfCatalog {
    dim: usize,
    /// Ball radii, ascending.
    deltas: Vec<f64>,
    /// Mass targets, ascending.
    thetas: Vec<f64>,
    /// `alphas[i * thetas.len() + j]` for `(deltas[i], thetas[j])`;
    /// `None` where no solution exists (ball too small for the mass).
    alphas: Vec<Option<f64>>,
}

impl BfCatalog {
    /// Builds the catalog over explicit grids.
    ///
    /// # Panics
    ///
    /// Panics on empty grids, non-positive radii, or mass targets outside
    /// `(0, 1)`.
    pub fn with_grids(dim: usize, mut deltas: Vec<f64>, mut thetas: Vec<f64>) -> Self {
        assert!(!deltas.is_empty() && !thetas.is_empty());
        assert!(deltas.iter().all(|d| *d > 0.0));
        assert!(thetas.iter().all(|t| *t > 0.0 && *t < 1.0));
        deltas.sort_by(f64::total_cmp);
        deltas.dedup();
        thetas.sort_by(f64::total_cmp);
        thetas.dedup();
        let mut alphas = Vec::with_capacity(deltas.len() * thetas.len());
        for &d in &deltas {
            for &t in &thetas {
                alphas.push(inverse_center_distance(dim, d, t));
            }
        }
        BfCatalog {
            dim,
            deltas,
            thetas,
            alphas,
        }
    }

    /// A default 64 × 64 log-spaced grid: radii in `[10⁻³, 10²]`, masses
    /// in `[10⁻⁶, 0.99]`.
    ///
    /// The grid is in *normalized* units (`δ̂ = √λ·δ`), so `10²` already
    /// covers balls a hundred standard deviations wide; queries outside
    /// the grid make [`BfCatalog::lookup_reject`]/[`BfCatalog::lookup_accept`]
    /// return [`CatalogLookup::OutOfGrid`] and the executor falls back to
    /// the exact inverse. Keeping the radius range modest also keeps
    /// construction fast: the noncentral-χ² series needs `O(β)` terms,
    /// and the extreme corner entries dominate build time.
    pub fn new(dim: usize) -> Self {
        let n = 64;
        let deltas = (0..n)
            .map(|i| 1e-3f64 * (1e5f64).powf(i as f64 / (n - 1) as f64))
            .collect();
        let thetas = (0..n)
            .map(|i| 1e-6f64 * (0.99f64 / 1e-6).powf(i as f64 / (n - 1) as f64))
            .collect();
        Self::with_grids(dim, deltas, thetas)
    }

    /// The dimension this catalog was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn entry(&self, i: usize, j: usize) -> Option<f64> {
        self.alphas[i * self.thetas.len() + j]
    }

    /// Conservative lookup for the **reject** radius `β∥` (paper Eq. 32):
    /// the entry at the smallest tabulated `δ* ≥ δ` and largest `θ* ≤ θ`.
    /// Both adjustments only increase `α`, so the returned radius rejects
    /// no object the exact bound would keep.
    // INVARIANT: snaps to δ* ≥ δ and θ* ≤ θ; α is increasing in δ and
    // decreasing in θ, so the returned α(δ*, θ*) ≥ α(δ, θ) — objects
    // beyond it provably have Pr < θ, and rejection is always safe.
    pub fn lookup_reject(&self, delta: f64, theta: f64) -> CatalogLookup {
        let i = self.deltas.partition_point(|d| *d < delta);
        if i == self.deltas.len() {
            return CatalogLookup::OutOfGrid; // δ above grid
        }
        let j = self.thetas.partition_point(|t| *t <= theta);
        if j == 0 {
            return CatalogLookup::OutOfGrid; // θ below grid
        }
        match self.entry(i, j - 1) {
            Some(a) => CatalogLookup::Alpha(a),
            // Even the *enlarged* ball cannot hold the *reduced* mass at
            // its best position ⇒ the exact problem has no solution either
            // ⇒ no object can reach probability θ.
            None => CatalogLookup::NoSolution,
        }
    }

    /// Conservative lookup for the **accept** radius `β⊥` (paper Eq. 33):
    /// the entry at the largest tabulated `δ* ≤ δ` and smallest `θ* ≥ θ`.
    /// Both adjustments only decrease `α`, so every object accepted via
    /// the returned radius is a true answer.
    // INVARIANT: snaps to δ* ≤ δ and θ* ≥ θ; the returned α(δ*, θ*) ≤
    // α(δ, θ), so any object within it provably has Pr ≥ θ — acceptance
    // without integration is always sound.
    pub fn lookup_accept(&self, delta: f64, theta: f64) -> CatalogLookup {
        let i = self.deltas.partition_point(|d| *d <= delta);
        if i == 0 {
            return CatalogLookup::OutOfGrid; // δ below grid
        }
        let j = self.thetas.partition_point(|t| *t < theta);
        if j == self.thetas.len() {
            return CatalogLookup::OutOfGrid; // θ above grid
        }
        match self.entry(i - 1, j) {
            Some(a) => CatalogLookup::Alpha(a),
            // The shrunken ball cannot hold the enlarged mass anywhere;
            // that proves nothing about the exact problem — just skip
            // sure-accepts (conservative).
            None => CatalogLookup::NoSolution,
        }
    }
}

/// Sanity helper shared by tests and benches: whether a centered ball of
/// radius `rho` can hold mass `theta` at all in `dim` dimensions.
pub fn ball_can_hold(dim: usize, rho: f64, theta: f64) -> bool {
    chi_ball_probability(dim, rho) >= theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_gaussian::noncentral::ball_probability;

    #[test]
    fn rr_lookup_is_conservative() {
        let cat = RrCatalog::new(2);
        for &theta in &[0.01, 0.05, 0.2, 0.4] {
            let table_r = cat.lookup(theta).unwrap();
            let exact_r = chi_inverse(2, 1.0 - 2.0 * theta);
            assert!(
                table_r >= exact_r - 1e-12,
                "θ = {theta}: table {table_r} < exact {exact_r}"
            );
            // And not wildly larger (within one grid step).
            assert!(table_r < exact_r * 1.25, "θ = {theta}: table too loose");
        }
    }

    #[test]
    fn rr_lookup_exact_on_grid_point() {
        let cat = RrCatalog::with_thetas(2, vec![0.01, 0.1, 0.3]);
        let r = cat.lookup(0.1).unwrap();
        assert!((r - chi_inverse(2, 0.8)).abs() < 1e-12);
    }

    #[test]
    fn rr_lookup_below_grid_is_none() {
        let cat = RrCatalog::with_thetas(2, vec![0.01, 0.1]);
        assert!(cat.lookup(0.005).is_none());
        assert!(cat.lookup(0.01).is_some());
        // Above grid max: uses the largest θ* (smallest safe radius).
        let r = cat.lookup(0.45).unwrap();
        assert!((r - chi_inverse(2, 0.8)).abs() < 1e-12);
    }

    #[test]
    fn rr_catalog_metadata() {
        let cat = RrCatalog::new(9);
        assert_eq!(cat.dim(), 9);
        assert_eq!(cat.len(), 256);
        assert!(!cat.is_empty());
    }

    #[test]
    #[should_panic(expected = "(0, 1/2)")]
    fn rr_rejects_out_of_range_grid() {
        RrCatalog::with_thetas(2, vec![0.6]);
    }

    #[test]
    fn bf_reject_lookup_is_conservative() {
        let cat = BfCatalog::new(2);
        for &(delta, theta) in &[(1.0, 0.01), (2.5, 0.1), (0.5, 0.05), (10.0, 0.3)] {
            let exact = inverse_center_distance(2, delta, theta);
            match (cat.lookup_reject(delta, theta), exact) {
                (CatalogLookup::Alpha(a), Some(e)) => {
                    assert!(a >= e - 1e-9, "δ={delta}, θ={theta}: {a} < exact {e}");
                    // An object just inside the catalog radius could
                    // qualify under the *catalog's* entry; verify safety:
                    // probability at distance a (of the enlarged setup)
                    // is ≥ probability at a of the exact setup.
                    let p = ball_probability(2, a, delta);
                    assert!(p <= theta + 1e-9);
                }
                (CatalogLookup::NoSolution, None) => {}
                (got, exact) => panic!("δ={delta}, θ={theta}: {got:?} vs exact {exact:?}"),
            }
        }
    }

    #[test]
    fn bf_accept_lookup_is_conservative() {
        let cat = BfCatalog::new(2);
        for &(delta, theta) in &[(1.0, 0.1), (2.5, 0.3), (4.0, 0.6)] {
            if let CatalogLookup::Alpha(a) = cat.lookup_accept(delta, theta) {
                let exact = inverse_center_distance(2, delta, theta)
                    .expect("exact must exist when catalog found one under stricter params");
                assert!(
                    a <= exact + 1e-9,
                    "δ={delta}, θ={theta}: {a} > exact {exact}"
                );
                // Safety: an object at distance a truly qualifies.
                let p = ball_probability(2, a, delta);
                assert!(p >= theta - 1e-9);
            }
        }
    }

    #[test]
    fn bf_no_solution_in_high_dim_small_ball() {
        // 9-D, small ball, large mass: the "no hole" regime (Eq. 37).
        let cat = BfCatalog::new(9);
        match cat.lookup_accept(0.5, 0.4) {
            CatalogLookup::NoSolution | CatalogLookup::OutOfGrid => {}
            CatalogLookup::Alpha(a) => panic!("expected no hole, got α = {a}"),
        }
    }

    #[test]
    fn bf_out_of_grid_detection() {
        let cat = BfCatalog::with_grids(2, vec![1.0, 2.0], vec![0.1, 0.2]);
        assert_eq!(cat.lookup_reject(5.0, 0.15), CatalogLookup::OutOfGrid);
        assert_eq!(cat.lookup_reject(1.5, 0.05), CatalogLookup::OutOfGrid);
        assert_eq!(cat.lookup_accept(0.5, 0.15), CatalogLookup::OutOfGrid);
        assert_eq!(cat.lookup_accept(1.5, 0.25), CatalogLookup::OutOfGrid);
        assert_eq!(cat.dim(), 2);
    }

    #[test]
    fn ball_can_hold_matches_chi() {
        assert!(ball_can_hold(2, 3.0, 0.9));
        assert!(!ball_can_hold(9, 1.0, 0.5));
    }
}
