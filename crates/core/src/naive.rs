//! The naive baseline: integrate every object in the database.
//!
//! This is what the paper's filtering strategies are measured against —
//! without Phases 1–2, every one of the 50 747 (or 68 040) objects pays
//! the Monte-Carlo integration cost. Used by the correctness tests as the
//! definition of the true answer set and by the benches as the
//! worst-case bar.

use crate::evaluator::ProbabilityEvaluator;
use crate::executor::{PrqOutcome, QueryStats};
use crate::query::PrqQuery;
use gprq_linalg::Vector;
use gprq_rtree::RTree;
use std::time::Instant;

/// Evaluates the query by a full scan with per-object integration.
pub fn execute_naive<'t, const D: usize, T, E>(
    tree: &'t RTree<D, T>,
    query: &PrqQuery<D>,
    evaluator: &mut E,
) -> PrqOutcome<'t, D, T>
where
    E: ProbabilityEvaluator<D>,
{
    let mut stats = QueryStats::default();
    let t = Instant::now();
    evaluator.begin_query(query.gaussian());
    let mut answers: Vec<(&'t Vector<D>, &'t T)> = Vec::new();
    for (point, data) in tree.iter() {
        stats.integrations += 1;
        let p = evaluator.probability(query.gaussian(), point, query.delta());
        if p >= query.theta() {
            answers.push((point, data));
        }
    }
    stats.phase1_candidates = stats.integrations;
    stats.phase3_time = t.elapsed();
    stats.answers = answers.len();
    PrqOutcome { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Quadrature2dEvaluator;
    use crate::executor::PrqExecutor;
    use crate::strategy::StrategySet;
    use gprq_linalg::Matrix;
    use gprq_rtree::RStarParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn naive_matches_filtered_execution() {
        let mut rng = StdRng::seed_from_u64(77);
        let points: Vec<(Vector<2>, usize)> = (0..2_000)
            .map(|i| {
                (
                    Vector::from([rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0]),
                    i,
                )
            })
            .collect();
        let tree = RTree::bulk_load(points, RStarParams::paper_default(2));
        let s3 = 3.0f64.sqrt();
        let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0);
        let query = PrqQuery::new(Vector::from([500.0, 500.0]), sigma, 25.0, 0.01).unwrap();

        let mut eval = Quadrature2dEvaluator::default();
        let naive = execute_naive(&tree, &query, &mut eval);
        let filtered = PrqExecutor::new(StrategySet::ALL)
            .execute(&tree, &query, &mut eval)
            .unwrap();

        let mut a: Vec<usize> = naive.answers.iter().map(|(_, d)| **d).collect();
        let mut b: Vec<usize> = filtered.answers.iter().map(|(_, d)| **d).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // The whole point of the paper: filtering integrates far less.
        assert_eq!(naive.stats.integrations, 2_000);
        assert!(filtered.stats.integrations < naive.stats.integrations / 10);
    }

    #[test]
    fn naive_on_empty_tree() {
        let tree: RTree<2, usize> = RTree::new();
        let query = PrqQuery::new(Vector::ZERO, Matrix::identity(), 1.0, 0.1).unwrap();
        let mut eval = Quadrature2dEvaluator::default();
        let outcome = execute_naive(&tree, &query, &mut eval);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.stats.integrations, 0);
    }
}
