//! Exact-equality and round-trip guarantees of the shared-sample
//! Phase-3 engine: the grid index must count *precisely* the hits a
//! linear scan of the same cloud counts (the two paths share one SoA
//! kernel, so this is bitwise, not statistical), and the SoA layout must
//! store the `sample_batch` draws bitwise.

use gprq_gaussian::cloud::{CloudGrid, SampleCloud};
use gprq_gaussian::{Gaussian, GaussianSampler};
use gprq_linalg::{Matrix, Vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

fn correlated_2d() -> Gaussian<2> {
    let s3 = 3.0f64.sqrt();
    Gaussian::new(
        Vector::from([100.0, -50.0]),
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0),
    )
    .unwrap()
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("positive sample count")
}

/// Grid and linear scan agree exactly for random (center, δ) pairs —
/// including δ = 0, δ spanning the whole cloud, and centers far outside
/// the grid's bounding box.
#[test]
fn grid_matches_linear_scan_exactly() {
    let g = correlated_2d();
    let mut rng = StdRng::seed_from_u64(0xC10D);
    let cloud = SampleCloud::draw(&g, nz(50_000), &mut rng);
    let grid = CloudGrid::build(&cloud);

    let mut probe = StdRng::seed_from_u64(7);
    for case in 0..400 {
        let (center, delta) = match case % 5 {
            // Random center near the distribution, random radius.
            0 | 1 => (
                Vector::from([
                    100.0 + (probe.gen::<f64>() - 0.5) * 60.0,
                    -50.0 + (probe.gen::<f64>() - 0.5) * 40.0,
                ]),
                probe.gen::<f64>() * 30.0,
            ),
            // δ = 0: only samples exactly at the center may count.
            2 => (
                Vector::from([100.0 + probe.gen::<f64>(), -50.0 + probe.gen::<f64>()]),
                0.0,
            ),
            // δ spanning the whole cloud: every sample must count.
            3 => (Vector::from([100.0, -50.0]), 1.0e6),
            // Center far outside the grid (all axis ranges empty).
            _ => (
                Vector::from([
                    100.0 + (probe.gen::<f64>() - 0.5) * 1.0e5,
                    -50.0 + (probe.gen::<f64>() - 0.5) * 1.0e5,
                ]),
                probe.gen::<f64>() * 20.0,
            ),
        };
        let linear = cloud.count_within(&center, delta);
        let via_grid = grid.count_within(&center, delta);
        assert_eq!(
            via_grid, linear,
            "case {case}: center {center:?}, delta {delta}"
        );
        if case % 5 == 3 {
            assert_eq!(linear, cloud.len(), "whole-cloud δ must count everything");
        }
    }
}

/// The same exact parity in 3-D, where the odometer walks a cube of
/// cells instead of a rectangle.
#[test]
fn grid_matches_linear_scan_exactly_3d() {
    let mut m = Matrix::<3>::identity();
    m[(0, 0)] = 4.0;
    m[(1, 1)] = 0.5;
    m[(2, 2)] = 2.5;
    let g = Gaussian::new(Vector::from([0.0, 5.0, -5.0]), m).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let cloud = SampleCloud::draw(&g, nz(20_000), &mut rng);
    let grid = CloudGrid::build(&cloud);
    let mut probe = StdRng::seed_from_u64(3);
    for _ in 0..100 {
        let center = Vector::from([
            (probe.gen::<f64>() - 0.5) * 10.0,
            5.0 + (probe.gen::<f64>() - 0.5) * 4.0,
            -5.0 + (probe.gen::<f64>() - 0.5) * 8.0,
        ]);
        let delta = probe.gen::<f64>() * 5.0;
        assert_eq!(
            grid.count_within(&center, delta),
            cloud.count_within(&center, delta)
        );
    }
}

/// Degenerate cloud: every sample identical (zero covariance is not
/// representable, so collapse one axis numerically instead via a tiny
/// variance) — the grid must still agree with the linear scan.
#[test]
fn grid_handles_near_degenerate_axes() {
    let mut m = Matrix::<2>::identity();
    m[(0, 0)] = 1.0e-6;
    m[(1, 1)] = 9.0;
    let g = Gaussian::new(Vector::from([1.0, 2.0]), m).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let cloud = SampleCloud::draw(&g, nz(4_096), &mut rng);
    let grid = CloudGrid::build(&cloud);
    let mut probe = StdRng::seed_from_u64(11);
    for _ in 0..50 {
        let center = Vector::from([1.0, 2.0 + (probe.gen::<f64>() - 0.5) * 12.0]);
        let delta = probe.gen::<f64>() * 6.0;
        assert_eq!(
            grid.count_within(&center, delta),
            cloud.count_within(&center, delta)
        );
    }
}

proptest! {
    /// The SoA cloud stores exactly the vectors `sample_batch` produces
    /// from the same seed — bitwise, coordinate by coordinate.
    #[test]
    fn soa_roundtrips_sample_batch_bitwise(seed in 0u64..1_000, n in 1usize..300) {
        let g = correlated_2d();
        let mut rng = StdRng::seed_from_u64(seed);
        let cloud = SampleCloud::draw(&g, nz(n), &mut rng);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = vec![Vector::<2>::ZERO; n];
        GaussianSampler::new(&g).sample_batch(&mut rng, &mut batch);

        prop_assert_eq!(cloud.len(), n);
        for (i, expect) in batch.iter().enumerate() {
            let got = cloud.get(i).expect("index in range");
            for d in 0..2 {
                prop_assert_eq!(
                    got.as_slice()[d].to_bits(),
                    expect.as_slice()[d].to_bits(),
                    "sample {} coordinate {} drifted", i, d
                );
            }
        }
        prop_assert!(cloud.get(n).is_none());
    }

    /// `extend` leaves the existing prefix bitwise intact and the grid
    /// rebuilt over the longer cloud still matches its linear scan.
    #[test]
    fn extend_preserves_prefix_and_parity(seed in 0u64..500, n in 8usize..200, extra in 1usize..200) {
        let g = correlated_2d();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cloud = SampleCloud::draw(&g, nz(n), &mut rng);
        let before: Vec<Vector<2>> = (0..n).map(|i| cloud.get(i).expect("in range")).collect();
        cloud.extend(&g, extra, &mut rng);
        prop_assert_eq!(cloud.len(), n + extra);
        for (i, b) in before.iter().enumerate() {
            let a = cloud.get(i).expect("in range");
            prop_assert_eq!(a.as_slice()[0].to_bits(), b.as_slice()[0].to_bits());
            prop_assert_eq!(a.as_slice()[1].to_bits(), b.as_slice()[1].to_bits());
        }
        let grid = CloudGrid::build(&cloud);
        let center = Vector::from([100.0, -50.0]);
        prop_assert_eq!(
            grid.count_within(&center, 15.0),
            cloud.count_within(&center, 15.0)
        );
    }
}

/// `CloudGrid::build_recentered` folds the mean-add into the build
/// passes; it must agree with materializing the re-centered cloud and
/// building from it — same structure, and bitwise-equal probabilities
/// at every probe.
#[test]
fn build_recentered_matches_materialized_cloud_bitwise() {
    let g = correlated_2d();
    let mut rng = StdRng::seed_from_u64(0x0FF5);
    let offsets = SampleCloud::draw_offsets(g.cholesky(), nz(20_000), &mut rng);

    for (mx, my) in [(100.0, -50.0), (0.0, 0.0), (-3.5e3, 1.0e-3)] {
        let mean = Vector::from([mx, my]);
        let materialized = CloudGrid::build(&SampleCloud::from_offsets(&mean, &offsets));
        let fused = CloudGrid::build_recentered(&mean, &offsets);

        assert_eq!(fused.len(), materialized.len());
        assert_eq!(fused.cells(), materialized.cells());
        assert_eq!(fused.resolution(), materialized.resolution());

        let mut probe = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let center = Vector::from([
                mx + (probe.gen::<f64>() - 0.5) * 80.0,
                my + (probe.gen::<f64>() - 0.5) * 80.0,
            ]);
            let delta = probe.gen::<f64>() * 25.0;
            assert_eq!(
                fused.probability(&center, delta).to_bits(),
                materialized.probability(&center, delta).to_bits(),
                "re-centered build diverged at {center:?}, δ = {delta}"
            );
        }
    }
}
