//! Statistical validation of the sampling and integration machinery:
//! goodness-of-fit of the Box–Muller generator, distributional checks of
//! the Cholesky-transformed sampler, and unbiasedness / convergence-rate
//! checks of the Monte-Carlo integrators.
//!
//! All tests are seeded and use generous significance margins so they are
//! deterministic in CI.

use gprq_gaussian::chi::chi_squared_cdf;
use gprq_gaussian::integrate::{
    importance_sampling_probability, quadrature_probability_2d, uniform_ball_probability,
};
use gprq_gaussian::specfun::std_normal_cdf;
use gprq_gaussian::{Gaussian, GaussianSampler, StandardNormal};
use gprq_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pearson chi-square statistic over equiprobable normal buckets.
fn chi_square_normal_fit(samples: &[f64], buckets: usize) -> f64 {
    // Bucket boundaries at normal quantiles.
    let mut counts = vec![0usize; buckets];
    for &x in samples {
        let u = std_normal_cdf(x);
        let b = ((u * buckets as f64) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let expected = samples.len() as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn box_muller_goodness_of_fit() {
    let mut rng = StdRng::seed_from_u64(20260706);
    let mut sn = StandardNormal::new();
    let n = 100_000;
    let samples: Vec<f64> = (0..n).map(|_| sn.sample(&mut rng)).collect();
    let buckets = 64;
    let stat = chi_square_normal_fit(&samples, buckets);
    // χ²(63) has mean 63, std ≈ 11.2; 5σ margin keeps this deterministic
    // while still catching any real distributional defect.
    let dof = (buckets - 1) as f64;
    assert!(
        stat < dof + 5.0 * (2.0 * dof).sqrt(),
        "chi-square statistic {stat} too large for {dof} dof"
    );
    // And it should not be suspiciously *small* either (over-uniformity
    // would indicate a broken bucket mapping).
    assert!(stat > dof - 5.0 * (2.0 * dof).sqrt());
}

#[test]
fn box_muller_higher_moments() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sn = StandardNormal::new();
    let n = 400_000usize;
    let (mut m3, mut m4) = (0.0, 0.0);
    for _ in 0..n {
        let z = sn.sample(&mut rng);
        m3 += z * z * z;
        m4 += z * z * z * z;
    }
    let skew = m3 / n as f64;
    let kurt = m4 / n as f64;
    // Skewness 0 (se ≈ √(6/n) ≈ 0.004), kurtosis 3 (se ≈ √(24/n) ≈ 0.008).
    assert!(skew.abs() < 0.02, "skewness {skew}");
    assert!((kurt - 3.0).abs() < 0.05, "kurtosis {kurt}");
}

#[test]
fn transformed_sampler_mahalanobis_is_chi_squared() {
    // For x ~ N(q, Σ), the Mahalanobis form (x−q)ᵗΣ⁻¹(x−q) follows a
    // χ²_d distribution — a complete end-to-end check of the Cholesky
    // transform against the analytic CDF.
    let s3 = 3.0f64.sqrt();
    let sigma = Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0);
    let g = Gaussian::new(Vector::from([100.0, -50.0]), sigma).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut sampler = GaussianSampler::new(&g);
    let n = 100_000;
    // Empirical CDF vs analytic at several probe points.
    let probes = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut counts = [0usize; 5];
    for _ in 0..n {
        let x = sampler.sample(&mut rng);
        let m = g.mahalanobis_squared(&x);
        for (i, &p) in probes.iter().enumerate() {
            if m <= p {
                counts[i] += 1;
            }
        }
    }
    for (i, &p) in probes.iter().enumerate() {
        let empirical = counts[i] as f64 / n as f64;
        let analytic = chi_squared_cdf(2, p);
        assert!(
            (empirical - analytic).abs() < 0.006,
            "CDF at {p}: empirical {empirical} vs χ²₂ {analytic}"
        );
    }
}

#[test]
fn importance_sampling_is_unbiased() {
    // Mean of repeated estimates must converge to the oracle much faster
    // than the single-run standard error.
    let g = Gaussian::<2>::standard();
    let center = Vector::from([1.0, 0.5]);
    let delta = 1.2;
    let oracle = quadrature_probability_2d(&g, &center, delta, 64, 128);
    let reps = 200;
    let n = 2_000;
    let mut mean = 0.0;
    for r in 0..reps {
        let mut rng = StdRng::seed_from_u64(1000 + r);
        mean += importance_sampling_probability(&g, &center, delta, n, &mut rng).unwrap();
    }
    mean /= reps as f64;
    // se of the mean ≈ √(p(1−p)/(n·reps)) ≈ 0.0007; allow 5σ.
    assert!(
        (mean - oracle).abs() < 0.004,
        "bias detected: mean {mean} vs oracle {oracle}"
    );
}

#[test]
fn monte_carlo_error_shrinks_with_sqrt_n() {
    let g = Gaussian::<2>::standard();
    let center = Vector::from([0.8, 0.0]);
    let delta = 1.0;
    let oracle = quadrature_probability_2d(&g, &center, delta, 64, 128);
    let rmse = |n: usize, base: u64| {
        let reps = 40;
        let mut acc = 0.0;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(base + r);
            let e =
                importance_sampling_probability(&g, &center, delta, n, &mut rng).unwrap() - oracle;
            acc += e * e;
        }
        (acc / reps as f64).sqrt()
    };
    let e_small = rmse(1_000, 10);
    let e_large = rmse(16_000, 20);
    // 16× samples → 4× smaller error; allow slack factor 2.
    assert!(
        e_large < e_small / 2.0,
        "no √n convergence: {e_small} → {e_large}"
    );
}

/// RMSE of both estimators against a reference over seeded repetitions.
fn estimator_rmse_9d(
    g: &Gaussian<9>,
    center: &Vector<9>,
    delta: f64,
    reference: f64,
) -> (f64, f64) {
    let reps = 15;
    let n = 20_000;
    let (mut is_sq, mut ub_sq) = (0.0, 0.0);
    for r in 0..reps {
        let mut rng = StdRng::seed_from_u64(100 + r);
        let e1 =
            importance_sampling_probability(g, center, delta, n, &mut rng).unwrap() - reference;
        let e2 = uniform_ball_probability(g, center, delta, n, &mut rng) - reference;
        is_sq += e1 * e1;
        ub_sq += e2 * e2;
    }
    ((is_sq / reps as f64).sqrt(), (ub_sq / reps as f64).sqrt())
}

#[test]
fn uniform_ball_estimator_is_consistent_but_noisier_in_9d() {
    // The paper's §V-A claim behind choosing importance sampling holds
    // wherever the query ball captures substantial probability mass —
    // the regime that decides actual answers. (Reproduction finding: for
    // *tiny tail balls* the density is nearly constant across the ball
    // and the pdf-averaging estimator is actually quieter — see the
    // companion assertion below and the `ablation` bench.)
    let mut m = Matrix::<9>::identity();
    for i in 0..9 {
        m[(i, i)] = 0.4 + 0.15 * i as f64;
    }
    let g = Gaussian::new(Vector::<9>::splat(0.0), m).unwrap();

    // High-mass ball: importance sampling must win clearly.
    let center = Vector::<9>::splat(0.5);
    let delta = 4.0;
    let mut rng = StdRng::seed_from_u64(5);
    let reference =
        importance_sampling_probability(&g, &center, delta, 2_000_000, &mut rng).unwrap();
    assert!(
        reference > 0.5,
        "setup check: high-mass ball, got {reference}"
    );
    let (is_rmse, ub_rmse) = estimator_rmse_9d(&g, &center, delta, reference);
    assert!(
        ub_rmse > 2.0 * is_rmse,
        "high-mass: uniform-ball ({ub_rmse}) should be ≫ noisier than IS ({is_rmse})"
    );

    // Tail ball: the comparison flips (documented behaviour).
    let center = Vector::<9>::splat(0.5);
    let delta = 1.2;
    let mut rng = StdRng::seed_from_u64(6);
    let reference =
        importance_sampling_probability(&g, &center, delta, 2_000_000, &mut rng).unwrap();
    assert!(reference < 0.01, "setup check: tail ball, got {reference}");
    let (is_rmse, ub_rmse) = estimator_rmse_9d(&g, &center, delta, reference);
    assert!(
        ub_rmse < is_rmse,
        "tail: pdf-averaging ({ub_rmse}) should beat Bernoulli counting ({is_rmse})"
    );
}
