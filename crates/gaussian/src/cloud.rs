//! Shared-sample Phase-3 engine: one sample cloud per query, spatially
//! indexed for grid-accelerated hit counting.
//!
//! The paper's integrator (§V-A) draws a fresh batch of `N(q, Σ)`
//! samples *per candidate*, even though the proposal distribution never
//! depends on the candidate. This module does the expensive
//! probabilistic work once and answers many membership tests cheaply:
//!
//! * [`SampleCloud`] draws the query's batch once into a
//!   structure-of-arrays layout (one `Vec<f64>` per dimension) so the
//!   distance kernel streams each coordinate column sequentially —
//!   cache-friendly and auto-vectorizable, with a branch-free
//!   hit-count inner loop.
//! * [`CloudGrid`] overlays a uniform grid on the cloud and reorders
//!   the samples cell by cell. A probe for `Pr(‖x − center‖ ≤ δ)`
//!   visits only cells intersecting `B(center, δ)`: cells whose tight
//!   sample bounding box lies fully inside the ball contribute their
//!   counts without a single distance test; boundary cells run the SoA
//!   kernel over their contiguous sample range. Per-candidate cost
//!   drops from `O(samples)` to `O(samples near the candidate)`.
//!
//! **Estimator caveat** (why conformance, not bit-parity, is the
//! correctness gate): sharing one cloud across every candidate of a
//! query makes the per-candidate estimation errors *positively
//! correlated across candidates*. Each individual estimate is still
//! unbiased with the same variance as a fresh batch of equal size —
//! only the joint distribution changes — so closed-form conformance
//! suites hold unchanged, while bit-parity with the per-candidate
//! estimator is neither expected nor meaningful.
//!
//! Grid and linear scans over the *same* cloud, however, agree
//! **exactly** (same hit count, bit for bit): both paths compute each
//! sample's squared distance with the identical summation order, and
//! the fully-inside shortcut only fires when the cell's farthest
//! corner — evaluated with that same ordering — already clears `δ²`.
//! Rounding is monotone, so no counted sample can escape and no
//! uncounted one can sneak in. The `cloud_grid` test suite pins this.

use crate::mvn::Gaussian;
use crate::sampler::{GaussianSampler, StandardNormal};
use gprq_linalg::{Cholesky, Vector};
use rand::Rng;
use std::num::NonZeroUsize;

/// Aim for this many samples per occupied grid cell (sizing heuristic;
/// see [`CloudGrid::build`]).
const TARGET_PER_CELL: usize = 16;

/// Upper bound on the per-axis grid resolution, so cell bookkeeping
/// stays small next to the sample storage itself.
const MAX_RES: usize = 128;

/// Block width of the SoA distance kernel: small enough for the
/// accumulator to live on the stack, wide enough to amortize the
/// per-block column setup.
const KERNEL_BLOCK: usize = 256;

/// Counters describing the work a cloud-backed probe performed.
///
/// Evaluators accumulate these and the executors flush them into
/// `QueryStats` once per query (see `PipelineMetrics` in `gprq-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloudStats {
    /// Sample clouds drawn (one per query on the shared-sample path).
    pub builds: usize,
    /// Grid cells visited across all probes.
    pub cells_scanned: usize,
    /// Visited cells classified fully-inside (counted without distance
    /// tests).
    pub cells_inside: usize,
    /// Samples that went through the distance kernel (boundary cells on
    /// the grid path, every sample on the linear path).
    pub samples_tested: usize,
}

impl CloudStats {
    /// Accumulates `other` into `self`, field by field.
    pub fn merge(&mut self, other: &CloudStats) {
        self.builds += other.builds;
        self.cells_scanned += other.cells_scanned;
        self.cells_inside += other.cells_inside;
        self.samples_tested += other.samples_tested;
    }
}

/// One query's Monte-Carlo sample batch in structure-of-arrays layout:
/// coordinate `d` of sample `i` lives at `coords[d][i]`.
///
/// Samples are stored in draw order, so the first `k` columns entries
/// are exactly the first `k` draws — the prefix property the budgeted
/// evaluator's blockwise early termination relies on. The draw order
/// itself matches [`GaussianSampler::sample_batch`] bit for bit (pinned
/// by a proptest).
#[derive(Debug, Clone)]
pub struct SampleCloud<const D: usize> {
    coords: [Vec<f64>; D],
}

impl<const D: usize> SampleCloud<D> {
    /// Draws `n_samples` from `gaussian` once, in the same order as
    /// [`GaussianSampler::sample_batch`].
    ///
    /// The count is a [`NonZeroUsize`], so an empty cloud — which would
    /// turn `0/0` into a silent rejection — is unrepresentable and this
    /// constructor cannot fail or panic.
    pub fn draw<R: Rng + ?Sized>(
        gaussian: &Gaussian<D>,
        n_samples: NonZeroUsize,
        rng: &mut R,
    ) -> Self {
        let n = n_samples.get();
        let mut coords: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(n));
        let mut sampler = GaussianSampler::new(gaussian);
        for _ in 0..n {
            let x = sampler.sample(rng);
            for (col, &v) in coords.iter_mut().zip(x.as_slice()) {
                col.push(v);
            }
        }
        SampleCloud { coords }
    }

    /// Draws `n_samples` *mean-free offsets* `w_j = L·z_j` for a
    /// Cholesky factor `L`, in SoA layout (`offsets[d][j]` is coordinate
    /// `d` of offset `j`). The `z_j` stream comes from one fresh
    /// [`StandardNormal`] whose Box–Muller spare persists across draws —
    /// exactly the stream a fresh [`GaussianSampler`] would consume.
    ///
    /// This is the batch executor's Σ-group cache primitive: queries
    /// sharing a covariance (hence, bitwise, a factor `L`) share one
    /// offset table and re-center it per query with
    /// [`SampleCloud::from_offsets`]. Because [`GaussianSampler::sample`]
    /// materializes `L·z` as a vector *before* the single component-wise
    /// add of the mean, `from_offsets(mean, draw_offsets(L, n, rng))` is
    /// bitwise identical to [`SampleCloud::draw`] from the same `rng`
    /// state — the parity tests below pin this.
    pub fn draw_offsets<R: Rng + ?Sized>(
        chol: &Cholesky<D>,
        n_samples: NonZeroUsize,
        rng: &mut R,
    ) -> [Vec<f64>; D] {
        let n = n_samples.get();
        let mut offsets: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(n));
        let mut standard = StandardNormal::new();
        for _ in 0..n {
            let z: Vector<D> = standard.sample_vector(rng);
            let w = chol.apply(&z);
            for (col, &v) in offsets.iter_mut().zip(w.as_slice()) {
                col.push(v);
            }
        }
        offsets
    }

    /// Builds a cloud by re-centering an offset table from
    /// [`SampleCloud::draw_offsets`]: sample `j` is `mean + w_j`,
    /// computed with the same component-wise add as the sampler, so the
    /// result is bitwise identical to drawing fresh from the same `rng`
    /// state with a [`Gaussian`] carrying that mean and factor.
    pub fn from_offsets(mean: &Vector<D>, offsets: &[Vec<f64>; D]) -> Self {
        let coords: [Vec<f64>; D] = std::array::from_fn(|d| {
            let m = mean[d];
            offsets[d].iter().map(|&w| m + w).collect()
        });
        SampleCloud { coords }
    }

    /// Appends `additional` fresh draws from `gaussian`, preserving draw
    /// order — extending to `n` total samples leaves the first ones
    /// bitwise unchanged, so running prefixes stay valid estimates.
    pub fn extend<R: Rng + ?Sized>(
        &mut self,
        gaussian: &Gaussian<D>,
        additional: usize,
        rng: &mut R,
    ) {
        let mut sampler = GaussianSampler::new(gaussian);
        for _ in 0..additional {
            let x = sampler.sample(rng);
            for (col, &v) in self.coords.iter_mut().zip(x.as_slice()) {
                col.push(v);
            }
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.coords.first().map_or(0, Vec::len)
    }

    /// `true` only for `D == 0` degenerate instantiations; every cloud
    /// built by [`SampleCloud::draw`] holds at least one sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sample `i` reassembled as a vector (`None` past the end).
    pub fn get(&self, i: usize) -> Option<Vector<D>> {
        if i < self.len() {
            Some(Vector::from_fn(|d| {
                self.coords
                    .get(d)
                    .and_then(|col| col.get(i))
                    .map_or(0.0, |v| *v)
            }))
        } else {
            None
        }
    }

    /// The raw coordinate columns (column `d` holds coordinate `d` of
    /// every sample, in draw order).
    pub fn columns(&self) -> &[Vec<f64>; D] {
        &self.coords
    }

    /// Counts samples with `‖x − center‖ ≤ delta` by a linear scan of
    /// the whole cloud. Debug-asserts `delta ≥ 0`.
    // HOT-PATH: shared-cloud linear hit count (Phase 3 inner loop)
    pub fn count_within(&self, center: &Vector<D>, delta: f64) -> usize {
        debug_assert!(delta >= 0.0);
        count_hits(&self.coords, 0, self.len(), center, delta * delta)
    }

    /// Counts hits among samples `start..end` (draw order, end-clamped)
    /// — the blockwise prefix primitive behind budgeted early
    /// termination: disjoint ranges sum to the full-scan count exactly.
    // HOT-PATH: shared-cloud prefix hit count (budgeted Phase 3)
    pub fn count_in_range(
        &self,
        center: &Vector<D>,
        delta: f64,
        start: usize,
        end: usize,
    ) -> usize {
        debug_assert!(delta >= 0.0);
        count_hits(
            &self.coords,
            start,
            end.min(self.len()),
            center,
            delta * delta,
        )
    }

    /// Estimates `Pr(‖x − center‖ ≤ delta)` as the hit fraction of the
    /// full cloud.
    pub fn probability(&self, center: &Vector<D>, delta: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_within(center, delta) as f64 / self.len() as f64
    }
}

/// The SoA distance kernel shared by the linear scan and the grid's
/// boundary cells, so both paths round identically per sample.
///
/// Processes `start..end` in blocks of [`KERNEL_BLOCK`]: per block, each
/// coordinate column streams once into a stack accumulator of squared
/// per-dimension differences (summed in ascending dimension order), then
/// a branch-free pass counts `dsq ≤ delta_sq`.
// HOT-PATH: SoA distance kernel (Phase 3 innermost loop)
fn count_hits<const D: usize>(
    cols: &[Vec<f64>; D],
    start: usize,
    end: usize,
    center: &Vector<D>,
    delta_sq: f64,
) -> usize {
    // `std::iter::zip` (not the `.iter()` adaptor) keeps this hot root
    // free of method names the workspace call-graph auditor would
    // over-approximate onto unrelated impls.
    let mut hits = 0usize;
    let mut at = start;
    while at < end {
        let take = KERNEL_BLOCK.min(end - at);
        let mut acc = [0.0f64; KERNEL_BLOCK];
        for (col, &c) in std::iter::zip(cols, center.as_slice()) {
            let Some(seg) = col.get(at..at + take) else {
                return hits;
            };
            for (a, &x) in std::iter::zip(&mut acc, seg) {
                let diff = x - c;
                *a += diff * diff;
            }
        }
        if let Some(head) = acc.get(..take) {
            for &dsq in head {
                hits += usize::from(dsq <= delta_sq);
            }
        }
        at += take;
    }
    hits
}

/// Clamped float→index conversion for grid coordinates: `t` is floored,
/// then clamped to `[0, max_index]`, so the cast is total (NaN and both
/// infinities land on a valid index).
///
/// Implemented as a saturating cast, which computes the same value
/// without the libm `floor` call: `as usize` maps NaN and negatives to
/// 0, truncates non-negative values (truncation = floor there), and
/// saturates +∞/overflow at `usize::MAX`, which the `min` then clamps —
/// case for case what floor-max-min-cast produced.
fn grid_slot(t: f64, max_index: usize) -> usize {
    (t as usize).min(max_index)
}

/// A uniform grid over a [`SampleCloud`], with samples reordered cell by
/// cell (CSR layout) and a tight per-cell bounding box of the samples it
/// actually holds.
///
/// Cell sizing: the per-axis resolution is the largest `r ≤ 128` with
/// `r^D ≤ n / 16` — about `TARGET_PER_CELL` samples per cell if the
/// cloud were uniform; axes with zero extent collapse to one cell. A
/// probe enumerates the cells whose index range overlaps
/// `[center − δ, center + δ]` per axis (widened by one cell against
/// rounding slop), then classifies each: fully-inside cells contribute
/// `count` hits with no distance test, boundary cells run the SoA
/// kernel on their contiguous range. See the module docs for why this
/// matches the linear scan exactly.
#[derive(Debug, Clone)]
pub struct CloudGrid<const D: usize> {
    /// Cell-reordered copy of the cloud's coordinate columns.
    cols: [Vec<f64>; D],
    /// CSR ranges: cell `c` owns samples `cell_start[c]..cell_start[c+1]`.
    cell_start: Vec<usize>,
    /// Tight per-cell sample minima, `cells × D`, cell-major.
    cell_min: Vec<f64>,
    /// Tight per-cell sample maxima, `cells × D`, cell-major.
    cell_max: Vec<f64>,
    res: [usize; D],
    origin: [f64; D],
    inv_width: [f64; D],
    len: usize,
}

impl<const D: usize> CloudGrid<D> {
    /// Indexes `cloud` (copying its samples into cell order). Infallible
    /// and panic-free for every cloud [`SampleCloud::draw`] can build.
    pub fn build(cloud: &SampleCloud<D>) -> Self {
        Self::build_grid::<false>(cloud.columns(), &[0.0; D])
    }

    /// Indexes the re-centering of an offset table from
    /// [`SampleCloud::draw_offsets`] without materializing the
    /// intermediate cloud: every pass adds `mean` on the fly, with the
    /// same component-wise `mean + offset` add as
    /// [`SampleCloud::from_offsets`], so the grid — layout, bounds, and
    /// every downstream probability — is bitwise identical to
    /// `build(&SampleCloud::from_offsets(mean, offsets))`. The batch
    /// executor's Σ-cache hit path uses this to skip one full
    /// `n × D` allocate-write-read round trip per query.
    pub fn build_recentered(mean: &Vector<D>, offsets: &[Vec<f64>; D]) -> Self {
        let mut shift = [0.0f64; D];
        for (s, &m) in shift.iter_mut().zip(mean.as_slice()) {
            *s = m;
        }
        Self::build_grid::<true>(offsets, &shift)
    }

    /// The shared build body. With `SHIFT` false the shift is all
    /// zeros and every element is used as stored; with `SHIFT` true
    /// each element of column `d` is read as `shift[d] + x` in every
    /// pass — the same float add producing the same value each time,
    /// so the two modes agree whenever the shifted input equals the
    /// unshifted one.
    fn build_grid<const SHIFT: bool>(source: &[Vec<f64>; D], shift: &[f64; D]) -> Self {
        let n = source.first().map_or(0, Vec::len);

        // Tight bounding box of the cloud, per axis.
        let mut origin = [0.0f64; D];
        let mut upper = [0.0f64; D];
        for (d, col) in source.iter().enumerate() {
            let m = shift[d];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &raw in col {
                let x = if SHIFT { m + raw } else { raw };
                lo = lo.min(x);
                hi = hi.max(x);
            }
            origin[d] = lo;
            upper[d] = hi;
        }

        // Largest uniform per-axis resolution with res^D ≤ n / TARGET,
        // capped at MAX_RES — integer arithmetic only.
        let cells_target = (n / TARGET_PER_CELL).max(1);
        let dim_exp = u32::try_from(D).unwrap_or(u32::MAX);
        let mut uniform_res = 1usize;
        while uniform_res < MAX_RES {
            let next = uniform_res + 1;
            match next.checked_pow(dim_exp) {
                Some(total) if total <= cells_target => uniform_res = next,
                _ => break,
            }
        }

        let mut res = [1usize; D];
        let mut inv_width = [0.0f64; D];
        let mut cells = 1usize;
        for d in 0..D {
            let extent = upper[d] - origin[d];
            if extent.is_finite() && extent > 0.0 {
                res[d] = uniform_res;
                let width = extent / uniform_res as f64;
                if width > f64::MIN_POSITIVE {
                    inv_width[d] = 1.0 / width;
                }
            }
            cells = cells.saturating_mul(res[d]);
        }

        // Counting sort into cell order, organized dimension-major for
        // cache residency in high dimensions. Cell indexing runs the
        // `cell = cell·res_d + slot_d` fold one axis at a time over all
        // samples — the same indices a per-sample fold produces, but
        // the inner loop's iterations are independent, so the float
        // chain (sub, mul, saturating cast) pipelines across samples
        // instead of serializing across axes. The destination slot
        // (`pos`) is then fixed per sample and the scatter runs one
        // column at a time, its random writes confined to a single
        // `n`-float column; each column's per-cell bounds are reduced
        // immediately after its scatter, while the column is still
        // cache-hot. The permutation is the same stable cursor order as
        // a fused per-sample scatter, and min/max over the same sample
        // set is order-independent, so the layout, the bounds, and
        // every downstream probability are unchanged.
        let mut cell_idx = vec![0usize; n];
        for d in 0..D {
            let (o, iw, r, m) = (origin[d], inv_width[d], res[d], shift[d]);
            let max_index = r - 1;
            if d == 0 {
                for (slot, &raw) in cell_idx.iter_mut().zip(&source[d]) {
                    let x = if SHIFT { m + raw } else { raw };
                    *slot = grid_slot((x - o) * iw, max_index);
                }
            } else {
                for (slot, &raw) in cell_idx.iter_mut().zip(&source[d]) {
                    let x = if SHIFT { m + raw } else { raw };
                    *slot = *slot * r + grid_slot((x - o) * iw, max_index);
                }
            }
        }
        let mut cell_start = vec![0usize; cells + 1];
        for &c in &cell_idx {
            if let Some(count) = cell_start.get_mut(c + 1) {
                *count += 1;
            }
        }
        for c in 1..cell_start.len() {
            cell_start[c] += cell_start[c - 1];
        }
        let mut cursor = cell_start.clone();
        let mut pos = vec![0usize; n];
        for (slot, &c) in pos.iter_mut().zip(&cell_idx) {
            let Some(next) = cursor.get_mut(c) else {
                continue;
            };
            *slot = *next;
            *next += 1;
        }
        let mut cols: [Vec<f64>; D] = std::array::from_fn(|_| vec![0.0f64; n]);
        let mut cell_min = vec![f64::INFINITY; cells * D];
        let mut cell_max = vec![f64::NEG_INFINITY; cells * D];
        for (d, (col, src)) in cols.iter_mut().zip(source).enumerate() {
            let m = shift[d];
            for (&p, &raw) in pos.iter().zip(src) {
                let v = if SHIFT { m + raw } else { raw };
                if let Some(out) = col.get_mut(p) {
                    *out = v;
                }
            }
            for c in 0..cells {
                let (Some(&start), Some(&end)) = (cell_start.get(c), cell_start.get(c + 1)) else {
                    continue;
                };
                let Some(seg) = col.get(start..end) else {
                    continue;
                };
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &v in seg {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let at = c * D + d;
                cell_min[at] = lo;
                cell_max[at] = hi;
            }
        }

        CloudGrid {
            cols,
            cell_start,
            cell_min,
            cell_max,
            res,
            origin,
            inv_width,
            len: n,
        }
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the grid indexes no samples (unreachable via
    /// [`CloudGrid::build`] over a drawn cloud).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total grid cells (`∏ res`).
    pub fn cells(&self) -> usize {
        self.cell_start.len().saturating_sub(1)
    }

    /// Per-axis cell resolution.
    pub fn resolution(&self) -> [usize; D] {
        self.res
    }

    /// Counts samples with `‖x − center‖ ≤ delta`, visiting only cells
    /// that can intersect the ball. Exactly equals
    /// [`SampleCloud::count_within`] over the source cloud.
    // HOT-PATH: grid-indexed hit count (Phase 3 inner loop)
    pub fn count_within(&self, center: &Vector<D>, delta: f64) -> usize {
        let mut stats = CloudStats::default();
        self.count_within_stats(center, delta, &mut stats)
    }

    /// [`CloudGrid::count_within`] accumulating probe counters into
    /// `stats`. Debug-asserts `delta ≥ 0`.
    // HOT-PATH: grid-indexed hit count with probe counters (Phase 3)
    pub fn count_within_stats(
        &self,
        center: &Vector<D>,
        delta: f64,
        stats: &mut CloudStats,
    ) -> usize {
        debug_assert!(delta >= 0.0);
        let delta_sq = delta * delta;
        let mut lo = [0usize; D];
        let mut hi = [0usize; D];
        for (d, &c) in std::iter::zip(0..D, center.as_slice()) {
            match self.lookup_axis_range(d, c, delta) {
                Some((l, h)) => {
                    lo[d] = l;
                    hi[d] = h;
                }
                None => return 0,
            }
        }

        let mut idx = lo;
        let mut hits = 0usize;
        loop {
            let mut cell = 0usize;
            for (&r, &i) in std::iter::zip(&self.res, &idx) {
                cell = cell * r + i;
            }
            stats.cells_scanned += 1;
            let start = self.cell_start.get(cell).copied().unwrap_or(0);
            let end = self.cell_start.get(cell + 1).copied().unwrap_or(start);
            if end > start {
                // Farthest corner of the cell's *tight sample box*,
                // summed in the same dimension order as the kernel:
                // per-sample dsq ≤ this bound under monotone rounding,
                // so "corner inside ⇒ every sample inside" is exact.
                let base = cell * D;
                let mut corner = 0.0f64;
                for (d, &c) in std::iter::zip(0..D, center.as_slice()) {
                    let lo_diff = self.cell_min.get(base + d).copied().unwrap_or(0.0) - c;
                    let hi_diff = self.cell_max.get(base + d).copied().unwrap_or(0.0) - c;
                    let m = lo_diff.abs().max(hi_diff.abs());
                    corner += m * m;
                }
                if corner <= delta_sq {
                    stats.cells_inside += 1;
                    hits += end - start;
                } else {
                    stats.samples_tested += end - start;
                    hits += count_hits(&self.cols, start, end, center, delta_sq);
                }
            }
            // Odometer over the cell box, last axis fastest.
            let mut d = D;
            loop {
                if d == 0 {
                    return hits;
                }
                d -= 1;
                if idx[d] < hi[d] {
                    idx[d] += 1;
                    break;
                }
                idx[d] = lo[d];
            }
        }
    }

    /// Estimates `Pr(‖x − center‖ ≤ delta)` as the grid-counted hit
    /// fraction, accumulating probe counters into `stats`.
    // HOT-PATH: grid-indexed qualification probability (Phase 3)
    pub fn probability_with_stats(
        &self,
        center: &Vector<D>,
        delta: f64,
        stats: &mut CloudStats,
    ) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count_within_stats(center, delta, stats) as f64 / self.len as f64
    }

    /// Estimates `Pr(‖x − center‖ ≤ delta)` as the grid-counted hit
    /// fraction of the cloud.
    pub fn probability(&self, center: &Vector<D>, delta: f64) -> f64 {
        let mut stats = CloudStats::default();
        self.probability_with_stats(center, delta, &mut stats)
    }

    // INVARIANT: the returned index range must cover every cell holding
    // a sample the linear kernel would count for (center, δ). The range
    // comes from the same floor((t − origin) · inv_width) transform that
    // assigned samples to cells — monotone in t — widened by one whole
    // cell on each side, which dwarfs the ≤ few-ulp slop between a
    // boundary sample's rounded distance and its rounded cell
    // coordinate. Over-covering only costs empty probes; under-covering
    // would drop hits, so the widening is never skipped.
    fn lookup_axis_range(&self, d: usize, center: f64, delta: f64) -> Option<(usize, usize)> {
        let max_index = self.res.get(d).copied().unwrap_or(1) - 1;
        let origin = self.origin.get(d).copied().unwrap_or(0.0);
        let inv_width = self.inv_width.get(d).copied().unwrap_or(0.0);
        let t_lo = ((center - delta) - origin) * inv_width;
        let t_hi = ((center + delta) - origin) * inv_width;
        if t_hi.floor() + 1.0 < 0.0 || t_lo.floor() - 1.0 > max_index as f64 {
            return None;
        }
        Some((
            grid_slot(t_lo - 1.0, max_index),
            grid_slot(t_hi + 1.0, max_index),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn sigma_paper(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    #[test]
    fn cloud_matches_quadrature_oracle() {
        let g = Gaussian::new(Vector::from([100.0, 100.0]), sigma_paper(10.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let cloud = SampleCloud::draw(&g, nz(200_000), &mut rng);
        assert_eq!(cloud.len(), 200_000);
        assert!(!cloud.is_empty());
        let center = Vector::from([110.0, 95.0]);
        let delta = 25.0;
        let exact = crate::integrate::quadrature_probability_2d(&g, &center, delta, 64, 128);
        let linear = cloud.probability(&center, delta);
        assert!(
            (linear - exact).abs() < 0.006,
            "cloud {linear} vs exact {exact}"
        );
        let grid = CloudGrid::build(&cloud);
        assert_eq!(grid.probability(&center, delta), linear);
    }

    #[test]
    fn cloud_monotone_in_delta() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(8);
        let cloud = SampleCloud::draw(&g, nz(50_000), &mut rng);
        let grid = CloudGrid::build(&cloud);
        let center = Vector::from([0.5, 0.5]);
        let mut prev = 0.0;
        for delta in [0.1, 0.5, 1.0, 2.0, 4.0] {
            let p = grid.probability(&center, delta);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn prefix_ranges_sum_to_full_scan() {
        let g = Gaussian::new(Vector::from([5.0, -3.0]), sigma_paper(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let cloud = SampleCloud::draw(&g, nz(10_000), &mut rng);
        let center = Vector::from([6.0, -2.0]);
        let delta = 10.0;
        let full = cloud.count_within(&center, delta);
        for split in [0, 1, 255, 256, 257, 5_000, 9_999, 10_000] {
            let head = cloud.count_in_range(&center, delta, 0, split);
            let tail = cloud.count_in_range(&center, delta, split, 10_000);
            assert_eq!(head + tail, full, "split {split}");
        }
        // End clamping past the cloud is a no-op.
        assert_eq!(cloud.count_in_range(&center, delta, 0, usize::MAX), full);
    }

    #[test]
    fn extend_preserves_prefix_bitwise() {
        let g = Gaussian::new(Vector::from([1.0, 2.0]), sigma_paper(2.0)).unwrap();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let big = SampleCloud::draw(&g, nz(2_000), &mut rng_a);
        let mut grown = SampleCloud::draw(&g, nz(512), &mut rng_b);
        grown.extend(&g, 1_488, &mut rng_b);
        assert_eq!(grown.len(), 2_000);
        for d in 0..2 {
            for i in 0..512 {
                assert_eq!(
                    big.columns()[d][i].to_bits(),
                    grown.columns()[d][i].to_bits(),
                    "draw-order prefix must be bitwise stable (d={d}, i={i})"
                );
            }
        }
    }

    #[test]
    fn offset_cloud_is_bitwise_identical_to_fresh_draw() {
        // The Σ-group cache contract: re-centering a shared offset table
        // reproduces a fresh per-query draw bit for bit, because the
        // sampler materializes L·z before the single mean add.
        let sigma = sigma_paper(3.0);
        let g_a = Gaussian::new(Vector::from([10.0, -4.0]), sigma).unwrap();
        let g_b = Gaussian::new(Vector::from([-250.0, 97.5]), sigma).unwrap();

        let offsets = {
            let mut rng = StdRng::seed_from_u64(77);
            SampleCloud::draw_offsets(g_a.cholesky(), nz(3_000), &mut rng)
        };
        for g in [&g_a, &g_b] {
            let mut rng = StdRng::seed_from_u64(77);
            let fresh = SampleCloud::draw(g, nz(3_000), &mut rng);
            let recentered = SampleCloud::from_offsets(g.mean(), &offsets);
            assert_eq!(recentered.len(), 3_000);
            for d in 0..2 {
                for i in 0..3_000 {
                    assert_eq!(
                        fresh.columns()[d][i].to_bits(),
                        recentered.columns()[d][i].to_bits(),
                        "offset cloud diverges from fresh draw (d={d}, i={i})"
                    );
                }
            }
        }
    }

    #[test]
    fn offset_stream_matches_sampler_spare_caching() {
        // The Box–Muller spare must persist across sample_vector calls
        // inside draw_offsets exactly as it does inside GaussianSampler;
        // an odd dimension (D = 3) exercises the carry-over.
        let mut cov = Matrix::<3>::identity();
        cov = cov.scale(2.5);
        let g = Gaussian::new(Vector::from([1.0, 2.0, 3.0]), cov).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5150);
        let mut rng_b = StdRng::seed_from_u64(5150);
        let fresh = SampleCloud::draw(&g, nz(257), &mut rng_a);
        let offsets = SampleCloud::draw_offsets(g.cholesky(), nz(257), &mut rng_b);
        let recentered = SampleCloud::from_offsets(g.mean(), &offsets);
        for d in 0..3 {
            for i in 0..257 {
                assert_eq!(
                    fresh.columns()[d][i].to_bits(),
                    recentered.columns()[d][i].to_bits(),
                    "spare carry-over diverges (d={d}, i={i})"
                );
            }
        }
    }

    #[test]
    fn get_roundtrips_samples() {
        let g = Gaussian::new(Vector::from([3.0, -1.0]), sigma_paper(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let cloud = SampleCloud::draw(&g, nz(64), &mut rng);
        for i in 0..64 {
            let v = cloud.get(i).unwrap();
            for d in 0..2 {
                assert_eq!(v[d].to_bits(), cloud.columns()[d][i].to_bits());
            }
        }
        assert!(cloud.get(64).is_none());
    }

    #[test]
    fn grid_sizing_rule() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(5);
        // 100 000 samples / 16 per cell = 6 250 cells → res 79 in 2-D.
        let cloud = SampleCloud::draw(&g, nz(100_000), &mut rng);
        let grid = CloudGrid::build(&cloud);
        let res = grid.resolution();
        assert_eq!(res[0], res[1]);
        assert!(res[0] * res[0] <= 6_250);
        assert!((res[0] + 1) * (res[0] + 1) > 6_250);
        assert_eq!(grid.cells(), res[0] * res[1]);
        assert_eq!(grid.len(), 100_000);
        // Tiny clouds collapse to a single cell.
        let tiny = SampleCloud::draw(&g, nz(3), &mut rng);
        assert_eq!(CloudGrid::build(&tiny).resolution(), [1, 1]);
    }

    #[test]
    fn inside_cells_skip_distance_tests_on_huge_delta() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(11);
        let cloud = SampleCloud::draw(&g, nz(20_000), &mut rng);
        let grid = CloudGrid::build(&cloud);
        let mut stats = CloudStats::default();
        let hits = grid.count_within_stats(&Vector::ZERO, 1e6, &mut stats);
        assert_eq!(hits, 20_000);
        assert!(stats.cells_inside > 0);
        assert_eq!(stats.samples_tested, 0, "no boundary cells at δ = 10⁶");
    }

    #[test]
    fn three_dimensional_grid_agrees_with_linear() {
        let g = Gaussian::new(
            Vector::from([1.0, -2.0, 0.5]),
            Matrix::<3>::identity().scale(4.0),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let cloud = SampleCloud::draw(&g, nz(30_000), &mut rng);
        let grid = CloudGrid::build(&cloud);
        for (center, delta) in [
            (Vector::from([1.0, -2.0, 0.5]), 2.0),
            (Vector::from([0.0, 0.0, 0.0]), 4.5),
            (Vector::from([8.0, 3.0, -7.0]), 6.0),
        ] {
            assert_eq!(
                grid.count_within(&center, delta),
                cloud.count_within(&center, delta)
            );
        }
    }
}
