//! Quasi-Monte-Carlo integration: Halton low-discrepancy sequences mapped
//! through the inverse normal CDF.
//!
//! An *extension* of the paper's §V-A integrator menu: where pseudo-random
//! importance sampling converges as `O(n^{−1/2})`, a low-discrepancy
//! sequence converges close to `O(n^{−1})` in low dimension for smooth
//! integrands — the `ablation` bench measures the crossover. Each Halton
//! coordinate stream (one prime base per dimension) is warped to `N(0, 1)`
//! by `Φ⁻¹` and then through the query's Cholesky factor, so the indicator
//! of the query ball is averaged under exactly the same measure as the
//! paper's estimator.

use crate::mvn::Gaussian;
use crate::specfun::std_normal_quantile;
use gprq_linalg::Vector;

/// The first 16 primes — Halton bases for up to 16 dimensions.
const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The radical-inverse function in base `b` of integer `i` — the `i`-th
/// element of the van der Corput sequence.
pub fn radical_inverse(base: u64, mut i: u64) -> f64 {
    let b = base as f64;
    let mut inv_base = 1.0 / b;
    let mut result = 0.0;
    while i > 0 {
        result += (i % base) as f64 * inv_base;
        i /= base;
        inv_base /= b;
    }
    result
}

/// A `D`-dimensional Halton sequence iterator (skipping index 0, whose
/// all-zero point maps to `Φ⁻¹(0) = −∞`).
#[derive(Debug, Clone)]
pub struct Halton<const D: usize> {
    index: u64,
}

impl<const D: usize> Halton<D> {
    /// Creates the sequence.
    ///
    /// # Panics
    ///
    /// Panics when `D` exceeds the 16 supported prime bases.
    pub fn new() -> Self {
        assert!(
            D <= PRIMES.len(),
            "Halton sequence supports up to {} dimensions",
            PRIMES.len()
        );
        Halton { index: 0 }
    }

    /// Next point in the unit cube `(0, 1)^D`.
    pub fn next_point(&mut self) -> Vector<D> {
        self.index += 1;
        let i = self.index;
        Vector::from_fn(|d| {
            // Clamp away from {0, 1} so Φ⁻¹ stays finite.
            radical_inverse(PRIMES[d], i).clamp(1e-15, 1.0 - 1e-15)
        })
    }
}

impl<const D: usize> Default for Halton<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// Estimates `Pr(‖x − center‖ ≤ delta)` for `x ~ gaussian` using `n`
/// Halton points warped to the Gaussian measure.
///
/// Deterministic (no RNG): repeated calls give identical results, and
/// increasing `n` refines the same point set.
///
/// # Panics
///
/// Panics if `n_samples == 0`.
pub fn quasi_monte_carlo_probability<const D: usize>(
    gaussian: &Gaussian<D>,
    center: &Vector<D>,
    delta: f64,
    n_samples: usize,
) -> f64 {
    assert!(n_samples > 0, "need at least one sample");
    debug_assert!(delta >= 0.0);
    let delta_sq = delta * delta;
    let mut halton = Halton::<D>::new();
    let mut hits = 0usize;
    for _ in 0..n_samples {
        let u = halton.next_point();
        let z = Vector::<D>::from_fn(|d| std_normal_quantile(u[d]));
        let x = *gaussian.mean() + gaussian.cholesky().apply(&z);
        if x.distance_squared(center) <= delta_sq {
            hits += 1;
        }
    }
    hits as f64 / n_samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::quadrature_probability_2d;
    use gprq_linalg::Matrix;

    #[test]
    fn radical_inverse_base2() {
        // 1 → 0.5, 2 → 0.25, 3 → 0.75, 4 → 0.125 …
        assert_eq!(radical_inverse(2, 0), 0.0);
        assert_eq!(radical_inverse(2, 1), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(2, 3), 0.75);
        assert_eq!(radical_inverse(2, 4), 0.125);
    }

    #[test]
    fn radical_inverse_base3() {
        assert!((radical_inverse(3, 1) - 1.0 / 3.0).abs() < 1e-15);
        assert!((radical_inverse(3, 2) - 2.0 / 3.0).abs() < 1e-15);
        assert!((radical_inverse(3, 3) - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn halton_points_are_low_discrepancy() {
        // Star-discrepancy proxy: counts in dyadic boxes should be close
        // to their volumes, much closer than √n noise for random points.
        let mut h = Halton::<2>::new();
        let n = 4096;
        let mut count_quadrant = 0;
        let mut count_strip = 0;
        for _ in 0..n {
            let p = h.next_point();
            if p[0] < 0.5 && p[1] < 0.5 {
                count_quadrant += 1;
            }
            if p[0] < 0.25 {
                count_strip += 1;
            }
        }
        assert!(
            (count_quadrant as f64 / n as f64 - 0.25).abs() < 0.005,
            "quadrant fraction {}",
            count_quadrant as f64 / n as f64
        );
        assert!((count_strip as f64 / n as f64 - 0.25).abs() < 0.005);
    }

    #[test]
    fn qmc_matches_quadrature_oracle() {
        let s3 = 3.0f64.sqrt();
        let g = Gaussian::new(
            Vector::from([500.0, 500.0]),
            Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0),
        )
        .unwrap();
        let center = Vector::from([512.0, 494.0]);
        let delta = 25.0;
        let oracle = quadrature_probability_2d(&g, &center, delta, 64, 128);
        let qmc = quasi_monte_carlo_probability(&g, &center, delta, 20_000);
        assert!((qmc - oracle).abs() < 0.004, "qmc {qmc} vs oracle {oracle}");
    }

    #[test]
    fn qmc_is_deterministic_and_refines() {
        let g = Gaussian::<2>::standard();
        let center = Vector::from([0.7, 0.2]);
        let a = quasi_monte_carlo_probability(&g, &center, 1.0, 5_000);
        let b = quasi_monte_carlo_probability(&g, &center, 1.0, 5_000);
        assert_eq!(a, b, "QMC must be deterministic");
        // Finer estimate closer to the oracle than the coarse one
        // (allowing equality in case both are spot-on).
        let oracle = quadrature_probability_2d(&g, &center, 1.0, 64, 128);
        let coarse = quasi_monte_carlo_probability(&g, &center, 1.0, 500);
        let fine = quasi_monte_carlo_probability(&g, &center, 1.0, 50_000);
        assert!((fine - oracle).abs() <= (coarse - oracle).abs() + 1e-4);
    }

    #[test]
    fn nine_dimensional_qmc_reasonable() {
        let mut m = Matrix::<9>::identity();
        for i in 0..9 {
            m[(i, i)] = 0.5 + 0.1 * i as f64;
        }
        let g = Gaussian::new(Vector::<9>::splat(0.0), m).unwrap();
        let center = Vector::<9>::splat(0.2);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let reference = crate::integrate::importance_sampling_probability(
            &g, &center, 2.0, 1_000_000, &mut rng,
        )
        .unwrap();
        let qmc = quasi_monte_carlo_probability(&g, &center, 2.0, 50_000);
        assert!(
            (qmc - reference).abs() < 0.01,
            "qmc {qmc} vs reference {reference}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let g = Gaussian::<2>::standard();
        quasi_monte_carlo_probability(&g, &Vector::ZERO, 1.0, 0);
    }
}
