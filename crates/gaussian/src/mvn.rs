//! The multivariate Gaussian distribution `N(q, Σ)` of paper Eq. 1.

use gprq_linalg::{Cholesky, LinalgError, Matrix, SymmetricEigen, Vector};

/// A `d`-dimensional Gaussian distribution with mean `q` and covariance `Σ`
/// (paper Definition 1):
///
/// ```text
/// p_q(x) = (2π)^{−d/2} |Σ|^{−1/2} exp( −½ (x−q)ᵗ Σ⁻¹ (x−q) )
/// ```
///
/// Construction validates that `Σ` is symmetric positive-definite and
/// precomputes everything the query strategies need: the Cholesky factor
/// (sampling, Mahalanobis forms), the explicit inverse `Σ⁻¹`, the spectral
/// decomposition (OR/BF strategies), and the log normalization constant.
///
/// ```
/// use gprq_gaussian::Gaussian;
/// use gprq_linalg::{Matrix, Vector};
///
/// let g = Gaussian::new(Vector::from([0.0, 0.0]), Matrix::<2>::identity()).unwrap();
/// // Standard normal density at the origin is 1/(2π).
/// assert!((g.pdf(&Vector::from([0.0, 0.0])) - 1.0 / std::f64::consts::TAU).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Gaussian<const D: usize> {
    mean: Vector<D>,
    covariance: Matrix<D>,
    cholesky: Cholesky<D>,
    precision: Matrix<D>,
    eigen: SymmetricEigen<D>,
    log_norm_const: f64,
}

impl<const D: usize> Gaussian<D> {
    /// Creates a Gaussian from mean and covariance.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`LinalgError`] if `Σ` is not symmetric
    /// positive-definite or contains non-finite entries, or
    /// [`LinalgError::NonFinite`] if the mean does.
    pub fn new(mean: Vector<D>, covariance: Matrix<D>) -> Result<Self, LinalgError> {
        if !mean.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let cholesky = covariance.cholesky()?;
        let eigen = covariance.symmetric_eigen()?;
        let precision = cholesky.inverse();
        let d = D as f64;
        let log_norm_const =
            -0.5 * d * (2.0 * std::f64::consts::PI).ln() - 0.5 * cholesky.log_determinant();
        Ok(Gaussian {
            mean,
            covariance,
            cholesky,
            precision,
            eigen,
            log_norm_const,
        })
    }

    /// The standard Gaussian `N(0, I)` — paper Definition 4's
    /// `p_norm`.
    pub fn standard() -> Self {
        Self::new(Vector::ZERO, Matrix::identity()).expect("identity covariance is SPD")
    }

    /// Mean vector `q`.
    pub fn mean(&self) -> &Vector<D> {
        &self.mean
    }

    /// Covariance matrix `Σ`.
    pub fn covariance(&self) -> &Matrix<D> {
        &self.covariance
    }

    /// Precision matrix `Σ⁻¹`.
    pub fn precision(&self) -> &Matrix<D> {
        &self.precision
    }

    /// Cholesky factor of `Σ` (lower-triangular `L` with `Σ = L·Lᵗ`).
    pub fn cholesky(&self) -> &Cholesky<D> {
        &self.cholesky
    }

    /// Spectral decomposition of `Σ` (eigenvalues descending).
    ///
    /// Note the paper works with the spectrum of `Σ⁻¹` (Eq. 8); the two
    /// share eigenvectors and have reciprocal eigenvalues, which
    /// [`Gaussian::precision_eigenvalues`] exposes directly.
    pub fn eigen(&self) -> &SymmetricEigen<D> {
        &self.eigen
    }

    /// Eigenvalues of `Σ⁻¹` in **ascending** order (reciprocals of the
    /// descending `Σ` spectrum), i.e. `λ₁ … λ_d` of paper Eq. 8 with
    /// `λ∥ = first`, `λ⊥ = last` (Eqs. 9–10).
    pub fn precision_eigenvalues(&self) -> Vector<D> {
        Vector::from_fn(|i| 1.0 / self.eigen.eigenvalues[i])
    }

    /// `λ∥ = min λᵢ(Σ⁻¹)` (paper Eq. 9) — builds the *upper* bounding
    /// function `p∥` of Definition 6.
    pub fn lambda_parallel(&self) -> f64 {
        1.0 / self.eigen.max_eigenvalue()
    }

    /// `λ⊥ = max λᵢ(Σ⁻¹)` (paper Eq. 10) — builds the *lower* bounding
    /// function `p⊥` of Definition 6.
    pub fn lambda_perp(&self) -> f64 {
        1.0 / self.eigen.min_eigenvalue()
    }

    /// Determinant `|Σ|`.
    pub fn det_covariance(&self) -> f64 {
        self.cholesky.determinant()
    }

    /// `ln |Σ|`, stable for near-degenerate covariances.
    pub fn log_det_covariance(&self) -> f64 {
        self.cholesky.log_determinant()
    }

    /// Per-axis standard deviation `σᵢ = √(Σ)ᵢᵢ` (paper Eq. 17) — the
    /// half-widths of the θ-region bounding box are `wᵢ = σᵢ·r_θ`
    /// (Property 2).
    pub fn axis_std_devs(&self) -> Vector<D> {
        Vector::from_fn(|i| self.covariance[(i, i)].sqrt())
    }

    /// Squared Mahalanobis distance `(x−q)ᵗ Σ⁻¹ (x−q)`.
    pub fn mahalanobis_squared(&self, x: &Vector<D>) -> f64 {
        self.cholesky.mahalanobis_squared(&(*x - self.mean))
    }

    /// Log density `ln p_q(x)`.
    pub fn log_pdf(&self, x: &Vector<D>) -> f64 {
        self.log_norm_const - 0.5 * self.mahalanobis_squared(x)
    }

    /// Density `p_q(x)` (paper Eq. 1).
    pub fn pdf(&self, x: &Vector<D>) -> f64 {
        self.log_pdf(x).exp()
    }

    /// The value of the *upper* bounding function `p∥(x)` of paper Eq. 24:
    /// the Gaussian kernel with `Σ⁻¹` replaced by `λ∥·I`, sharing the same
    /// normalization constant as `p_q`. Satisfies `p_q(x) ≤ p∥(x)`.
    pub fn upper_bound_pdf(&self, x: &Vector<D>) -> f64 {
        (self.log_norm_const - 0.5 * self.lambda_parallel() * x.distance_squared(&self.mean)).exp()
    }

    /// The value of the *lower* bounding function `p⊥(x)` of paper Eq. 25.
    /// Satisfies `p⊥(x) ≤ p_q(x)`.
    pub fn lower_bound_pdf(&self, x: &Vector<D>) -> f64 {
        (self.log_norm_const - 0.5 * self.lambda_perp() * x.distance_squared(&self.mean)).exp()
    }

    /// Convolution with an independent Gaussian: the distribution of
    /// `x − o` when `x ~ N(q, Σ)` and `o ~ N(µ, Σ_o)` is
    /// `N(q − µ, Σ + Σ_o)`.
    ///
    /// This powers the *uncertain targets* extension (paper §VII, future
    /// work 2): a range query against an imprecise target reduces exactly
    /// to a query with the combined covariance.
    ///
    /// # Errors
    ///
    /// Returns the linear-algebra layer's error when the summed
    /// covariance `Σ + Σ_o` is not symmetric positive-definite.
    pub fn convolve(
        &self,
        other_mean: &Vector<D>,
        other_cov: &Matrix<D>,
    ) -> Result<Self, LinalgError> {
        Self::new(self.mean - *other_mean, self.covariance + *other_cov)
    }

    /// Marginal distribution of one coordinate: `xᵢ ~ N(qᵢ, Σᵢᵢ)`.
    ///
    /// Returns `(mean, std_dev)`. Useful for the 1-D analytic
    /// qualification probability and for per-axis reporting in the
    /// localization examples.
    ///
    /// # Panics
    ///
    /// Panics when `axis ≥ D`.
    pub fn marginal_1d(&self, axis: usize) -> (f64, f64) {
        assert!(axis < D, "axis {axis} out of range for dimension {D}");
        (self.mean[axis], self.covariance[(axis, axis)].sqrt())
    }

    /// Conditional distribution of coordinate `axis` given the exact
    /// values of all the *other* coordinates (the standard Gaussian
    /// conditioning formula, specialized to a scalar target):
    ///
    /// ```text
    /// xᵢ | x₋ᵢ = v  ~  N( qᵢ + Σᵢ,₋ᵢ Σ₋ᵢ,₋ᵢ⁻¹ (v − q₋ᵢ),
    ///                    Σᵢᵢ − Σᵢ,₋ᵢ Σ₋ᵢ,₋ᵢ⁻¹ Σ₋ᵢ,ᵢ )
    /// ```
    ///
    /// Implemented via the precision matrix: for a Gaussian with
    /// precision `Λ = Σ⁻¹`, the conditional of `xᵢ` given the rest is
    /// `N(qᵢ − Λᵢᵢ⁻¹·Σⱼ≠ᵢ Λᵢⱼ (vⱼ − qⱼ), Λᵢᵢ⁻¹)` — one row of a solve.
    ///
    /// Returns `(mean, std_dev)`.
    ///
    /// # Panics
    ///
    /// Panics when `axis ≥ D`.
    pub fn conditional_1d(&self, axis: usize, given: &Vector<D>) -> (f64, f64) {
        assert!(axis < D, "axis {axis} out of range for dimension {D}");
        let lambda_ii = self.precision[(axis, axis)];
        let mut shift = 0.0;
        for j in 0..D {
            if j != axis {
                shift += self.precision[(axis, j)] * (given[j] - self.mean[j]);
            }
        }
        (
            self.mean[axis] - shift / lambda_ii,
            (1.0 / lambda_ii).sqrt(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma_paper(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    fn paper_gaussian(gamma: f64) -> Gaussian<2> {
        Gaussian::new(Vector::from([500.0, 500.0]), sigma_paper(gamma)).unwrap()
    }

    #[test]
    fn standard_normal_density() {
        let g = Gaussian::<3>::standard();
        let expect = (2.0 * std::f64::consts::PI).powf(-1.5);
        assert!((g.pdf(&Vector::ZERO) - expect).abs() < 1e-14);
    }

    #[test]
    fn density_is_maximal_at_mean() {
        let g = paper_gaussian(10.0);
        let at_mean = g.pdf(g.mean());
        for &offset in &[[1.0, 0.0], [0.0, 1.0], [-5.0, 3.0], [100.0, -50.0]] {
            let x = *g.mean() + Vector::from(offset);
            assert!(g.pdf(&x) < at_mean);
        }
    }

    #[test]
    fn normalization_constant_2d() {
        // For d = 2, p(q) = 1 / (2π√|Σ|); paper Σ(γ=1) has |Σ| = 9.
        let g = paper_gaussian(1.0);
        let expect = 1.0 / (2.0 * std::f64::consts::PI * 3.0);
        assert!((g.pdf(g.mean()) - expect).abs() < 1e-12);
    }

    #[test]
    fn lambda_parallel_perp_ordering() {
        let g = paper_gaussian(1.0);
        // Σ eigenvalues are 9 and 1 → Σ⁻¹ eigenvalues 1/9 and 1.
        assert!((g.lambda_parallel() - 1.0 / 9.0).abs() < 1e-10);
        assert!((g.lambda_perp() - 1.0).abs() < 1e-10);
        assert!(g.lambda_parallel() <= g.lambda_perp());
    }

    #[test]
    fn precision_eigenvalues_ascending_and_reciprocal() {
        let g = paper_gaussian(10.0);
        let pe = g.precision_eigenvalues();
        assert!(pe[0] <= pe[1]);
        assert!((pe[0] - g.lambda_parallel()).abs() < 1e-12);
        assert!((pe[1] - g.lambda_perp()).abs() < 1e-12);
    }

    #[test]
    fn bounding_functions_sandwich_density() {
        let g = paper_gaussian(10.0);
        // Property 4: p⊥(x) ≤ p_q(x) ≤ p∥(x) for any x.
        for &offset in &[
            [0.0, 0.0],
            [5.0, 0.0],
            [0.0, 5.0],
            [-10.0, 10.0],
            [30.0, -15.0],
            [0.3, 77.0],
        ] {
            let x = *g.mean() + Vector::from(offset);
            let p = g.pdf(&x);
            assert!(
                g.lower_bound_pdf(&x) <= p + 1e-15,
                "lower bound violated at {offset:?}"
            );
            assert!(
                p <= g.upper_bound_pdf(&x) + 1e-15,
                "upper bound violated at {offset:?}"
            );
        }
    }

    #[test]
    fn bounds_tight_on_principal_axes() {
        // Along the minor axis of Σ the upper bound is *equal* to the
        // density; along the major axis the lower bound is equal.
        let g = paper_gaussian(1.0);
        let e = g.eigen();
        let major = e.eigenvector(0); // eigenvalue 9 of Σ → λ∥ direction
        let minor = e.eigenvector(1);
        let x_major = *g.mean() + major * 3.0;
        let x_minor = *g.mean() + minor * 3.0;
        assert!((g.pdf(&x_major) - g.upper_bound_pdf(&x_major)).abs() < 1e-15);
        assert!((g.pdf(&x_minor) - g.lower_bound_pdf(&x_minor)).abs() < 1e-15);
    }

    #[test]
    fn axis_std_devs_match_covariance() {
        let g = paper_gaussian(10.0);
        let s = g.axis_std_devs();
        assert!((s[0] - (70.0f64).sqrt()).abs() < 1e-12);
        assert!((s[1] - (30.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_on_unit_covariance_is_euclidean() {
        let g = Gaussian::<2>::standard();
        let x = Vector::from([3.0, 4.0]);
        assert!((g.mahalanobis_squared(&x) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        let not_spd = Matrix::from_rows([[1.0, 2.0], [2.0, 1.0]]);
        assert!(Gaussian::new(Vector::<2>::ZERO, not_spd).is_err());
        let nan_mean = Vector::from([f64::NAN, 0.0]);
        assert!(Gaussian::new(nan_mean, Matrix::<2>::identity()).is_err());
    }

    #[test]
    fn convolution_combines_covariances() {
        let g = paper_gaussian(1.0);
        let combined = g
            .convolve(
                &Vector::from([100.0, 100.0]),
                &Matrix::<2>::identity().scale(4.0),
            )
            .unwrap();
        assert_eq!(combined.mean().as_slice(), &[400.0, 400.0]);
        assert!((combined.covariance()[(0, 0)] - (7.0 + 4.0)).abs() < 1e-12);
        assert!((combined.covariance()[(1, 1)] - (3.0 + 4.0)).abs() < 1e-12);
        assert!((combined.covariance()[(0, 1)] - sigma_paper(1.0)[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_covariance_diagonal() {
        let g = paper_gaussian(10.0);
        let (m0, s0) = g.marginal_1d(0);
        assert_eq!(m0, 500.0);
        assert!((s0 - 70.0f64.sqrt()).abs() < 1e-12);
        let (m1, s1) = g.marginal_1d(1);
        assert_eq!(m1, 500.0);
        assert!((s1 - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn conditional_shrinks_variance_and_shifts_mean() {
        let g = paper_gaussian(1.0);
        // Conditioning on the correlated coordinate must reduce variance:
        // var(x₀ | x₁) = Σ₀₀ − Σ₀₁²/Σ₁₁ = 7 − 12/3 = 3.
        let given = Vector::from([0.0, 503.0]); // x₁ = q₁ + 3
        let (mean, std) = g.conditional_1d(0, &given);
        assert!(
            (std * std - 3.0).abs() < 1e-9,
            "conditional var {}",
            std * std
        );
        // Mean shift: q₀ + Σ₀₁/Σ₁₁ · (v − q₁) = 500 + (2√3/3)·3.
        let expect = 500.0 + 2.0 * 3.0f64.sqrt();
        assert!((mean - expect).abs() < 1e-9, "conditional mean {mean}");
        // Conditioning on the mean itself leaves the mean unchanged.
        let (mean_at_q, _) = g.conditional_1d(0, g.mean());
        assert!((mean_at_q - 500.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_of_independent_axes_is_marginal() {
        let g = Gaussian::new(
            Vector::from([1.0, 2.0]),
            Matrix::from_diagonal(&Vector::from([4.0, 9.0])),
        )
        .unwrap();
        let (mean, std) = g.conditional_1d(0, &Vector::from([0.0, 100.0]));
        let (m_marg, s_marg) = g.marginal_1d(0);
        assert!((mean - m_marg).abs() < 1e-12);
        assert!((std - s_marg).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marginal_rejects_bad_axis() {
        let g = Gaussian::<2>::standard();
        g.marginal_1d(2);
    }

    #[test]
    fn log_det_matches_det() {
        let g = paper_gaussian(10.0);
        assert!((g.log_det_covariance() - g.det_covariance().ln()).abs() < 1e-10);
        assert!((g.det_covariance() - 900.0).abs() < 1e-6);
    }
}
