//! Off-center ball probabilities of the standard Gaussian — the noncentral
//! chi-squared distribution.
//!
//! The BF strategy (paper §IV-C) needs, for a standard Gaussian, the
//! probability mass inside a ball of radius `ρ` whose **center is at
//! distance `β` from the origin** (paper Eqs. 21 and 27):
//!
//! ```text
//! F_d(β, ρ) = ∫_{‖u − β·e₁‖ ≤ ρ} p_norm(u) du
//! ```
//!
//! By rotational symmetry only the distance `β` matters, and `‖u‖²` with
//! `u ~ N(β·e₁, I_d)` follows a noncentral chi-squared law with `d` degrees
//! of freedom and noncentrality `λ = β²`. Hence
//!
//! ```text
//! F_d(β, ρ) = P( χ'²_d(β²) ≤ ρ² )
//! ```
//!
//! which we evaluate with the classical Poisson mixture of central
//! chi-squared CDFs, expanded outward from the Poisson mode for numerical
//! robustness at large noncentralities.
//!
//! The paper builds its BF U-catalog `(δ, θ, α)` by Monte-Carlo integrating
//! these quantities offline; [`inverse_center_distance`] is the exact
//! analogue of the paper's `ucatalog_lookup(δ, θ)` (Eq. 21 solved for the
//! center offset). `gprq-core` layers the table-based variant on top.

use crate::chi::{chi_ball_probability, chi_squared_cdf};
use crate::specfun::ln_gamma;

/// Relative series truncation tolerance.
const SERIES_EPS: f64 = 1e-14;
/// Hard cap on series terms in each direction (never reached in practice
/// for the noncentralities that arise from query processing).
const MAX_TERMS: usize = 100_000;

/// CDF of the noncentral chi-squared distribution:
/// `P(χ'²_d(λ) ≤ x)` for `d ≥ 1` degrees of freedom and noncentrality
/// `λ ≥ 0`.
///
/// Evaluated as `Σⱼ Pois(j; λ/2) · P(χ²_{d+2j} ≤ x)`, summing outward from
/// the Poisson mode `⌊λ/2⌋` so the weights never underflow, with the
/// central CDFs advanced by the stable incomplete-gamma recurrence
/// `P(a+1, y) = P(a, y) − y^a e^{−y}/Γ(a+1)`.
///
/// # Panics
///
/// Panics if `d == 0`; debug-asserts `λ ≥ 0` and `x ≥ 0`.
pub fn noncentral_chi_squared_cdf(d: usize, lambda: f64, x: f64) -> f64 {
    assert!(d > 0, "noncentral chi-squared requires d >= 1");
    debug_assert!(lambda >= 0.0, "noncentrality must be >= 0, got {lambda}");
    debug_assert!(x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if lambda < 1e-300 {
        return chi_squared_cdf(d, x);
    }

    let a = 0.5 * d as f64; // central shape parameter
    let y = 0.5 * x; // incomplete-gamma argument
    let half_lambda = 0.5 * lambda;
    let ln_y = y.ln();

    // Start at the Poisson mode.
    let j0 = half_lambda.floor() as usize;
    let ln_w0 = -half_lambda + (j0 as f64) * half_lambda.ln() - ln_gamma(j0 as f64 + 1.0);
    let w0 = ln_w0.exp();
    let c0 = crate::specfun::regularized_gamma_p(a + j0 as f64, y);
    // Incomplete-gamma increment t_j = y^{a+j} e^{−y} / Γ(a+j+1), advanced
    // by the recurrences t_{j+1} = t_j · y/(a+j+1) (up) and
    // t_{j−1} = t_j · (a+j)/y (down) — no per-term ln Γ / exp.
    let t0 = ((a + j0 as f64) * ln_y - y - ln_gamma(a + j0 as f64 + 1.0)).exp();

    let mut sum = w0 * c0;
    let mut weight_used = w0;

    // Upward sweep: j = j0+1, j0+2, …
    {
        let mut w = w0;
        let mut c = c0;
        let mut t = t0;
        let mut j = j0;
        for _ in 0..MAX_TERMS {
            // Advance central CDF: C_{j+1} = C_j − t_j.
            c -= t;
            if c < 0.0 {
                c = 0.0;
            }
            t *= y / (a + j as f64 + 1.0);
            j += 1;
            w *= half_lambda / j as f64;
            let term = w * c;
            sum += term;
            weight_used += w;
            let threshold = SERIES_EPS * sum.max(1e-300);
            if c == 0.0 {
                break;
            }
            // Two rigorous tail bounds; stop when either one is met:
            // (a) CDFs are decreasing in j, so the tail contributes at
            //     most (1 − weight_used)·c — but `weight_used` omits the
            //     below-mode half of the Poisson mass, so this alone can
            //     fail to trigger when `c` stops decaying;
            // (b) beyond the mode the weight ratio r = λ/2/(j+1) < 1 and
            //     keeps shrinking, so the remaining sum is at most
            //     term·r/(1−r) (a geometric majorant).
            if (1.0 - weight_used) * c < threshold {
                break;
            }
            let ratio = half_lambda / (j as f64 + 1.0);
            if ratio < 1.0 && term * ratio / (1.0 - ratio) < threshold {
                break;
            }
        }
    }

    // Downward sweep: j = j0−1, …, 0.
    if j0 > 0 {
        let mut w = w0;
        let mut c = c0;
        // s_j = y^{a+j−1} e^{−y} / Γ(a+j) is the downward increment:
        // C_{j−1} = C_j + s_j, and s_j = t_j · (a+j)/y.
        let mut s = t0 * (a + j0 as f64) / y;
        let mut j = j0;
        loop {
            c += s;
            if c > 1.0 {
                c = 1.0;
            }
            w *= j as f64 / half_lambda;
            j -= 1;
            s *= (a + j as f64) / y;
            let term = w * c;
            sum += term;
            if j == 0 || term < SERIES_EPS * sum.max(1e-300) {
                break;
            }
        }
    }

    sum.clamp(0.0, 1.0)
}

/// Probability that a standard `d`-dimensional Gaussian falls inside the
/// ball of radius `rho` centered at distance `beta` from the origin
/// (paper Eq. 21 / Eq. 27, the BF catalog integrand).
pub fn ball_probability(d: usize, beta: f64, rho: f64) -> f64 {
    debug_assert!(beta >= 0.0 && rho >= 0.0);
    if rho == 0.0 {
        return 0.0;
    }
    noncentral_chi_squared_cdf(d, beta * beta, rho * rho)
}

/// Closed-form qualification probability for an **isotropic** query
/// Gaussian: for `x ~ N(q, σ²I_d)` and a target object at distance
/// `dist = ‖o − q‖`, returns `Pr(‖x − o‖ ≤ δ)`.
///
/// Standardizing by σ reduces the integral to the noncentral-χ² ball
/// probability with center offset `dist/σ` and radius `δ/σ` — the exact
/// value the Monte-Carlo estimators approximate, which makes this the
/// oracle for the statistical conformance suite. Non-finite or
/// non-positive `sigma` yields `0.0` rather than a panic.
pub fn isotropic_qualification_probability(d: usize, sigma: f64, dist: f64, delta: f64) -> f64 {
    let well_posed = sigma.is_finite() && sigma > 0.0 && dist >= 0.0 && delta > 0.0;
    if !well_posed {
        return 0.0;
    }
    ball_probability(d, dist / sigma, delta / sigma)
}

/// Solves `ball_probability(d, β, rho) = target` for the center distance β.
///
/// This is the exact form of the paper's `ucatalog_lookup(δ, θ)` (§IV-C):
/// given the ball radius and a probability threshold, it returns how far
/// from the distribution center the ball's center may sit while still
/// capturing probability mass `target`.
///
/// Returns `None` when even the centered ball (`β = 0`) holds less than
/// `target` mass — the situation of paper Eq. 37 where no internal
/// "hole" exists and the BF sure-accept radius `α⊥` is undefined.
///
/// # Panics
///
/// Panics unless `0 < target < 1` and `rho > 0`.
pub fn inverse_center_distance(d: usize, rho: f64, target: f64) -> Option<f64> {
    assert!(
        target > 0.0 && target < 1.0,
        "target probability must be in (0, 1), got {target}"
    );
    assert!(rho > 0.0, "ball radius must be positive");

    let at_center = chi_ball_probability(d, rho);
    if at_center < target {
        return None;
    }
    if at_center == target {
        return Some(0.0);
    }

    // Bracket: F is continuous, strictly decreasing in β, → 0 as β → ∞.
    let mut lo = 0.0f64;
    let mut hi = rho + 1.0;
    while ball_probability(d, hi, rho) > target {
        lo = hi;
        hi *= 2.0;
        if hi > 1e8 {
            // Pathological target below attainable precision.
            return Some(hi);
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ball_probability(d, mid, rho) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 * hi.max(1.0) {
            break;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfun::std_normal_cdf;
    use proptest::prelude::*;

    #[test]
    fn zero_noncentrality_matches_central() {
        for d in [1usize, 2, 5, 9] {
            for &x in &[0.5, 1.0, 4.0, 10.0] {
                let nc = noncentral_chi_squared_cdf(d, 0.0, x);
                let c = chi_squared_cdf(d, x);
                assert!((nc - c).abs() < 1e-13, "d = {d}, x = {x}");
            }
        }
    }

    #[test]
    fn isotropic_qualification_reduces_to_standardized_ball() {
        for &sigma in &[2.0, 5.0] {
            for &dist in &[0.0, 5.0, 12.0] {
                for &delta in &[5.0, 15.0] {
                    let got = isotropic_qualification_probability(2, sigma, dist, delta);
                    let expect = ball_probability(2, dist / sigma, delta / sigma);
                    assert!(
                        (got - expect).abs() < 1e-15,
                        "σ = {sigma}, dist = {dist}, δ = {delta}"
                    );
                }
            }
        }
        // Degenerate inputs degrade to 0 instead of panicking.
        assert_eq!(isotropic_qualification_probability(2, 0.0, 1.0, 1.0), 0.0);
        assert_eq!(
            isotropic_qualification_probability(2, f64::NAN, 1.0, 1.0),
            0.0
        );
        assert_eq!(
            isotropic_qualification_probability(2, 1.0, f64::NAN, 1.0),
            0.0
        );
        assert_eq!(isotropic_qualification_probability(2, 1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn one_dimensional_closed_form() {
        // In 1-D the ball is an interval: F₁(β, ρ) = Φ(β+ρ) − Φ(β−ρ)
        // (mass of N(0,1) in [β−ρ, β+ρ], by symmetry of the Gaussian).
        for &beta in &[0.0, 0.5, 1.0, 2.5, 6.0] {
            for &rho in &[0.25, 1.0, 3.0] {
                let expect = std_normal_cdf(beta + rho) - std_normal_cdf(beta - rho);
                let got = ball_probability(1, beta, rho);
                assert!(
                    (got - expect).abs() < 1e-11,
                    "β = {beta}, ρ = {rho}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn two_dimensional_against_numeric_reference() {
        // Direct 2-D polar quadrature of the standard Gaussian over an
        // off-center disc, as an independent oracle.
        fn reference(beta: f64, rho: f64) -> f64 {
            let n = 2_000;
            let mut acc = 0.0;
            for i in 0..n {
                let r = (i as f64 + 0.5) / n as f64 * rho;
                for j in 0..n / 4 {
                    let phi = (j as f64 + 0.5) / (n / 4) as f64 * std::f64::consts::TAU;
                    let x = beta + r * phi.cos();
                    let y = r * phi.sin();
                    acc += (-0.5 * (x * x + y * y)).exp() * r;
                }
            }
            acc * (rho / n as f64) * (std::f64::consts::TAU / (n / 4) as f64)
                / std::f64::consts::TAU
                * std::f64::consts::TAU
                / (2.0 * std::f64::consts::PI)
        }
        for &(beta, rho) in &[(0.5, 1.0), (2.0, 1.5), (3.0, 0.5)] {
            let got = ball_probability(2, beta, rho);
            let expect = reference(beta, rho);
            assert!(
                (got - expect).abs() < 1e-4,
                "β = {beta}, ρ = {rho}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn large_noncentrality_terminates_quickly() {
        // Regression test for the upward-sweep termination bound: at
        // β = 106, ρ = 100 (a far-corner U-catalog entry) the old
        // `(1 − weight_used)·c` bound never fired because `weight_used`
        // omits the below-mode Poisson mass, so the loop ran to
        // MAX_TERMS. With the geometric tail bound the evaluation takes
        // microseconds; this asserts both the value and a time budget
        // generous enough for any CI machine.
        let t = std::time::Instant::now();
        let p = ball_probability(2, 106.0, 100.0);
        assert!(
            (p - 9.575e-10).abs() < 1e-12,
            "value changed: {p:e} (expected ≈ 9.575e-10)"
        );
        assert!(
            t.elapsed() < std::time::Duration::from_millis(50),
            "far-corner evaluation too slow: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn large_noncentrality_is_stable() {
        // λ/2 far past where naive j=0 series weights underflow.
        let p = noncentral_chi_squared_cdf(5, 3000.0, 3100.0);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        assert!(p > 0.5, "median of χ'² is near d + λ, got {p}");
        let far = noncentral_chi_squared_cdf(5, 3000.0, 100.0);
        assert!(far < 1e-10);
    }

    #[test]
    fn inverse_round_trips() {
        for d in [1usize, 2, 3, 9] {
            for &rho in &[0.5, 1.0, 2.5] {
                for &target in &[0.01, 0.1, 0.3] {
                    if let Some(beta) = inverse_center_distance(d, rho, target) {
                        let back = ball_probability(d, beta, rho);
                        assert!(
                            (back - target).abs() < 1e-9,
                            "d = {d}, ρ = {rho}, θ = {target}: β = {beta}, back = {back}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_none_when_ball_too_small() {
        // A tiny ball in 9-D cannot hold 40% mass anywhere (paper Eq. 37
        // regime: no internal hole → α⊥ undefined).
        assert!(inverse_center_distance(9, 0.5, 0.4).is_none());
        // But a huge ball can, even well off-center.
        assert!(inverse_center_distance(9, 10.0, 0.4).is_some());
    }

    #[test]
    fn inverse_boundary_exact_center() {
        let d = 2;
        let rho = 1.0;
        let at_center = chi_ball_probability(d, rho);
        let beta = inverse_center_distance(d, rho, at_center * 0.999_999).unwrap();
        assert!(beta < 0.01, "target just under center mass → β ≈ 0");
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn inverse_rejects_bad_target() {
        inverse_center_distance(2, 1.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_in_unit_interval(d in 1usize..12, lambda in 0.0..200.0f64, x in 0.0..400.0f64) {
            let p = noncentral_chi_squared_cdf(d, lambda, x);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_monotone_in_x(d in 1usize..10, lambda in 0.0..50.0f64, x in 0.0..50.0f64, dx in 0.01..10.0f64) {
            let a = noncentral_chi_squared_cdf(d, lambda, x);
            let b = noncentral_chi_squared_cdf(d, lambda, x + dx);
            prop_assert!(b >= a - 1e-12);
        }

        #[test]
        fn prop_decreasing_in_noncentrality(d in 1usize..10, lambda in 0.0..50.0f64, dl in 0.01..10.0f64, x in 0.1..50.0f64) {
            // Moving the ball away from the mode can only lose mass.
            let a = noncentral_chi_squared_cdf(d, lambda, x);
            let b = noncentral_chi_squared_cdf(d, lambda + dl, x);
            prop_assert!(b <= a + 1e-10);
        }

        #[test]
        fn prop_ball_prob_decreasing_in_beta(d in 1usize..10, beta in 0.0..8.0f64, db in 0.01..4.0f64, rho in 0.1..5.0f64) {
            let a = ball_probability(d, beta, rho);
            let b = ball_probability(d, beta + db, rho);
            prop_assert!(b <= a + 1e-10);
        }
    }
}
