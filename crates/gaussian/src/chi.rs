//! Centered ball probabilities of the standard Gaussian — the chi
//! distribution.
//!
//! For `x ~ N(0, I_d)`, the probability that `x` falls inside the centered
//! ball of radius `r` is
//!
//! ```text
//! P(‖x‖ ≤ r) = P(χ_d ≤ r) = P(χ²_d ≤ r²) = P(d/2, r²/2)
//! ```
//!
//! with `P(a, x)` the regularized lower incomplete gamma function. This is
//! exactly the integral of paper Eq. 7 defining `r̃_θ` (and by Property 1,
//! `r_θ = r̃_θ`), and it is the curve family plotted in the paper's Fig. 17.
//!
//! The paper computes `r_θ` by pre-tabulating Monte-Carlo integrations into
//! a *U-catalog*; we provide the exact closed form here and reproduce the
//! table-based path (plus an ablation comparing both) in `gprq-core`.

use crate::specfun::regularized_gamma_p;

/// CDF of the chi-squared distribution with `d` degrees of freedom.
///
/// # Panics
///
/// Panics if `d == 0`; debug-asserts `x ≥ 0`.
pub fn chi_squared_cdf(d: usize, x: f64) -> f64 {
    assert!(d > 0, "chi-squared requires d >= 1");
    debug_assert!(x >= 0.0);
    regularized_gamma_p(0.5 * d as f64, 0.5 * x)
}

/// Probability that a standard `d`-dimensional Gaussian falls inside the
/// centered ball of radius `r`: `P(‖x‖ ≤ r)` (paper Eq. 7, Fig. 17).
pub fn chi_ball_probability(d: usize, r: f64) -> f64 {
    debug_assert!(r >= 0.0);
    chi_squared_cdf(d, r * r)
}

/// Inverse of [`chi_ball_probability`] in `r`: the radius containing
/// probability mass `p`.
///
/// This computes the paper's `r_θ` **exactly**: for a probabilistic range
/// query with threshold `θ`, `r_θ = chi_inverse(d, 1 − 2θ)` (Definition 5 +
/// Property 1).
///
/// Solved by bracketed bisection refined with Newton steps; the CDF is
/// smooth and strictly monotone so this converges to full precision.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)` or `d == 0`.
pub fn chi_inverse(d: usize, p: f64) -> f64 {
    assert!(d > 0, "chi distribution requires d >= 1");
    assert!(
        p > 0.0 && p < 1.0,
        "chi_inverse requires 0 < p < 1, got {p}"
    );

    // Bracket: the chi mean is ~√d; expand until the CDF straddles p.
    let mut hi = (d as f64).sqrt() + 1.0;
    while chi_ball_probability(d, hi) < p {
        hi *= 2.0;
        if hi > 1e6 {
            break;
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi_ball_probability(d, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Probability density function of the chi distribution with `d` degrees of
/// freedom, `f(r) = r^{d−1} e^{−r²/2} / (2^{d/2−1} Γ(d/2))`.
///
/// Exposed for the experiment harness (it annotates Fig. 17 with the mode
/// `√(d−1)` of the radial density, which explains the "curse of
/// dimensionality" discussion in §VI-B).
///
/// # Panics
///
/// Panics when `d = 0`: the chi distribution needs at least one degree
/// of freedom.
pub fn chi_pdf(d: usize, r: f64) -> f64 {
    assert!(d > 0);
    if r < 0.0 {
        return 0.0;
    }
    if r == 0.0 {
        return if d == 1 {
            (2.0 / std::f64::consts::PI).sqrt()
        } else {
            0.0
        };
    }
    let df = d as f64;
    let ln_pdf = (df - 1.0) * r.ln()
        - 0.5 * r * r
        - (0.5 * df - 1.0) * std::f64::consts::LN_2
        - crate::specfun::ln_gamma(0.5 * df);
    ln_pdf.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_dimensional_closed_form() {
        // In 2-D, P(‖x‖ ≤ r) = 1 − e^{−r²/2} exactly.
        for &r in &[0.1, 0.5, 1.0, 2.0, 2.797, 5.0] {
            let expect = 1.0 - f64::exp(-0.5 * r * r);
            assert!(
                (chi_ball_probability(2, r) - expect).abs() < 1e-13,
                "r = {r}"
            );
        }
    }

    #[test]
    fn paper_fig17_anchor_2d() {
        // §VI-B: "if a query object obeys 2D pnorm distribution, the
        // probability that the object is located within distance one from
        // the origin is 39%".
        let p = chi_ball_probability(2, 1.0);
        assert!((p - 0.393_469_340_287_366_6).abs() < 1e-12);
    }

    #[test]
    fn paper_fig17_anchor_9d() {
        // §VI-B: "for the 9D case, the probability that a query object is
        // located within distance two from the query center is only 9%".
        let p = chi_ball_probability(9, 2.0);
        assert!((p - 0.089).abs() < 0.003, "got {p}");
    }

    #[test]
    fn paper_r_theta_anchors() {
        // §V/§VI anchors: r_θ for 1−2θ mass.
        // d = 2, θ = 0.01 → r_θ = 2.79…
        let r = chi_inverse(2, 0.98);
        assert!((r - 2.796_999).abs() < 1e-3, "got {r}");
        // d = 9, θ = 0.01 → r_θ = 4.44 (paper §VI-B).
        let r = chi_inverse(9, 0.98);
        assert!((r - 4.44).abs() < 0.01, "got {r}");
        // d = 9, θ = 0.40 → r_θ = 2.32 (paper §VI-A).
        let r = chi_inverse(9, 0.20);
        assert!((r - 2.32).abs() < 0.01, "got {r}");
    }

    #[test]
    fn inverse_round_trips() {
        for d in [1usize, 2, 3, 5, 9, 15] {
            for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                let r = chi_inverse(d, p);
                assert!(
                    (chi_ball_probability(d, r) - p).abs() < 1e-10,
                    "d = {d}, p = {p}"
                );
            }
        }
    }

    #[test]
    fn chi_squared_cdf_anchor() {
        // χ²_1: CDF(1) = erf(1/√2) = 0.682689492137086.
        assert!((chi_squared_cdf(1, 1.0) - 0.682_689_492_137_085_9).abs() < 1e-12);
        // χ²_2: CDF(x) = 1 − e^{−x/2}.
        assert!((chi_squared_cdf(2, 3.0) - (1.0 - (-1.5f64).exp())).abs() < 1e-13);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid-integrate the pdf and compare with the CDF (d = 5).
        let d = 5;
        let n = 20_000;
        let rmax = 4.0;
        let h = rmax / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let a = i as f64 * h;
            let b = a + h;
            acc += 0.5 * (chi_pdf(d, a) + chi_pdf(d, b)) * h;
        }
        assert!((acc - chi_ball_probability(d, rmax)).abs() < 1e-6);
    }

    #[test]
    fn pdf_edge_cases() {
        assert_eq!(chi_pdf(3, -1.0), 0.0);
        assert_eq!(chi_pdf(3, 0.0), 0.0);
        // d = 1 pdf at 0 is √(2/π) (half-normal).
        assert!((chi_pdf(1, 0.0) - (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn higher_dimension_needs_larger_radius() {
        // The "curse of dimensionality" effect of Fig. 17: at fixed radius,
        // the contained probability drops as d grows.
        let r = 2.0;
        let mut prev = 1.0;
        for d in [2usize, 3, 5, 9, 15] {
            let p = chi_ball_probability(d, r);
            assert!(p < prev, "d = {d}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn inverse_rejects_p_one() {
        chi_inverse(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn cdf_rejects_zero_dim() {
        chi_squared_cdf(0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_in_radius(d in 1usize..16, r in 0.0..8.0f64, dr in 0.001..2.0f64) {
            prop_assert!(chi_ball_probability(d, r + dr) > chi_ball_probability(d, r) - 1e-15);
        }

        #[test]
        fn prop_cdf_decreasing_in_dim(d in 1usize..15, r in 0.1..6.0f64) {
            prop_assert!(chi_ball_probability(d, r) >= chi_ball_probability(d + 1, r) - 1e-12);
        }

        #[test]
        fn prop_inverse_consistent(d in 1usize..16, p in 0.001..0.999f64) {
            let r = chi_inverse(d, p);
            prop_assert!((chi_ball_probability(d, r) - p).abs() < 1e-9);
        }
    }
}
