//! # gprq-gaussian
//!
//! Gaussian-distribution machinery for the `gaussian-prq` workspace
//! (reproduction of *"Spatial Range Querying for Gaussian-Based Imprecise
//! Query Objects"*, ICDE 2009):
//!
//! * [`specfun`] — ln Γ, erf/erfc, the regularized incomplete gamma
//!   function, and the standard normal CDF, implemented from scratch;
//! * [`chi`] — the CDF of the chi distribution, i.e. the probability mass
//!   of a standard `d`-dimensional Gaussian inside a centered ball
//!   (paper Eq. 7 / Fig. 17), plus its inverse used to compute `r_θ`;
//! * [`noncentral`] — off-center ball probabilities: the mass of a
//!   standard Gaussian inside a ball whose center sits at distance β from
//!   the origin (a noncentral-χ² CDF). These are exactly the entries of
//!   the paper's BF U-catalog (`ucatalog_lookup(δ, θ)`, §IV-C);
//! * [`mvn`] — the `N(q, Σ)` density of paper Eq. 1, with Mahalanobis
//!   forms and log-space normalization;
//! * [`sampler`] — Box–Muller standard-normal sampling and the Cholesky
//!   affine transform for `N(q, Σ)` (our substitute for RANDLIB, §V-A);
//! * [`integrate`] — the qualification-probability integrators: the
//!   paper's importance-sampling Monte Carlo, a uniform-ball Monte Carlo
//!   comparator, a 2-D Gauss–Legendre quadrature reference, and the
//!   analytic 1-D case;
//! * [`cloud`] — the shared-sample Phase-3 engine: one SoA sample batch
//!   per query ([`SampleCloud`]) plus a uniform-grid index
//!   ([`CloudGrid`]) so each candidate's hit count only touches samples
//!   near it. This is the default integration path in `gprq-core`.
//!
//! ```
//! use gprq_gaussian::chi;
//! // Paper §VI-B: for d = 2, θ = 0.01, the θ-region radius is r_θ ≈ 2.79.
//! let r = chi::chi_inverse(2, 0.98);
//! assert!((r - 2.797).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi;
pub mod cloud;
pub mod integrate;
pub mod mvn;
pub mod noncentral;
pub mod quasi;
pub mod sampler;
pub mod specfun;

pub use chi::{chi_ball_probability, chi_inverse, chi_squared_cdf};
pub use cloud::{CloudGrid, CloudStats, SampleCloud};
pub use integrate::{
    analytic_interval_probability_1d, importance_sampling_probability, quadrature_probability_2d,
    uniform_ball_probability, InvalidSampleBudget, RunningEstimate, StreamingProbability,
};
pub use mvn::Gaussian;
pub use noncentral::{
    ball_probability, inverse_center_distance, isotropic_qualification_probability,
    noncentral_chi_squared_cdf,
};
pub use quasi::{quasi_monte_carlo_probability, Halton};
pub use sampler::{GaussianSampler, StandardNormal};
