//! Random sampling from Gaussian distributions.
//!
//! The paper's experiments use RANDLIB to draw Gaussian variates for the
//! importance-sampling integrator (§V-A). We substitute a from-scratch
//! Box–Muller transform (with spare caching) over `rand`'s uniform source,
//! plus the Cholesky affine map `x = q + L·z` for the general `N(q, Σ)`.

use crate::mvn::Gaussian;
use gprq_linalg::Vector;
use rand::Rng;

/// A standard-normal variate generator using the Box–Muller transform.
///
/// Each transform produces two independent `N(0, 1)` values; the second is
/// cached so consecutive calls consume uniforms at the optimal rate.
///
/// ```
/// use gprq_gaussian::StandardNormal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut sn = StandardNormal::new();
/// let z = sn.sample(&mut rng);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    spare: Option<f64>,
}

impl StandardNormal {
    /// Creates a generator with an empty spare cache.
    pub fn new() -> Self {
        StandardNormal { spare: None }
    }

    /// Draws one `N(0, 1)` variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = std::f64::consts::TAU * u2;
        self.spare = Some(radius * angle.sin());
        radius * angle.cos()
    }

    /// Fills a vector with independent `N(0, 1)` coordinates.
    pub fn sample_vector<const D: usize, R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vector<D> {
        Vector::from_fn(|_| self.sample(rng))
    }
}

/// Sampler for a general Gaussian `N(q, Σ)` via `x = q + L·z`.
///
/// Borrows the [`Gaussian`] so the Cholesky factor is computed once per
/// query, matching the paper's setting where thousands of integrations
/// share a single query distribution.
#[derive(Debug, Clone)]
pub struct GaussianSampler<'a, const D: usize> {
    gaussian: &'a Gaussian<D>,
    standard: StandardNormal,
}

impl<'a, const D: usize> GaussianSampler<'a, D> {
    /// Creates a sampler bound to `gaussian`.
    pub fn new(gaussian: &'a Gaussian<D>) -> Self {
        GaussianSampler {
            gaussian,
            standard: StandardNormal::new(),
        }
    }

    /// Draws one sample `x ~ N(q, Σ)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vector<D> {
        let z = self.standard.sample_vector::<D, R>(rng);
        *self.gaussian.mean() + self.gaussian.cholesky().apply(&z)
    }

    /// Fills `out` with samples (one per slot), reusing the spare cache
    /// across the whole batch.
    pub fn sample_batch<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [Vector<D>]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

/// Samples a point uniformly from the `D`-ball of radius `radius` centered
/// at `center`.
///
/// Uses the standard construction: an isotropic Gaussian direction scaled
/// to the sphere, then a radius drawn as `r = radius · u^{1/D}`. This is
/// the sampling primitive of the *uniform-ball* Monte-Carlo comparator
/// (the "standard Monte Carlo method" the paper contrasts with importance
/// sampling in §V-A).
pub fn sample_uniform_ball<const D: usize, R: Rng + ?Sized>(
    standard: &mut StandardNormal,
    rng: &mut R,
    center: &Vector<D>,
    radius: f64,
) -> Vector<D> {
    debug_assert!(radius >= 0.0);
    // Direction: normalized Gaussian vector (retry the astronomically
    // unlikely zero vector).
    let mut dir;
    loop {
        dir = standard.sample_vector::<D, R>(rng);
        if let Some(unit) = dir.normalized() {
            dir = unit;
            break;
        }
    }
    let u: f64 = rng.gen::<f64>();
    let r = radius * u.powf(1.0 / D as f64);
    *center + dir * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprq_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sigma_paper() -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(10.0)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sn = StandardNormal::new();
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = sn.sample(&mut rng);
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn standard_normal_tail_fractions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sn = StandardNormal::new();
        let n = 100_000;
        let within_one =
            (0..n).filter(|_| sn.sample(&mut rng).abs() <= 1.0).count() as f64 / n as f64;
        // P(|Z| ≤ 1) = 0.6827.
        assert!((within_one - 0.6827).abs() < 0.01, "got {within_one}");
    }

    #[test]
    fn gaussian_sampler_matches_moments() {
        let g = Gaussian::new(Vector::from([500.0, 300.0]), sigma_paper()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = GaussianSampler::new(&g);
        let n = 200_000;
        let mut mean = Vector::<2>::ZERO;
        let mut m2 = Matrix::<2>::ZERO;
        for _ in 0..n {
            let x = sampler.sample(&mut rng) - *g.mean();
            mean += x;
            for i in 0..2 {
                for j in 0..2 {
                    m2[(i, j)] += x[i] * x[j];
                }
            }
        }
        let inv_n = 1.0 / n as f64;
        mean = mean * inv_n;
        assert!(mean.norm() < 0.1, "sample mean offset {mean}");
        for i in 0..2 {
            for j in 0..2 {
                let cov = m2[(i, j)] * inv_n;
                let expect = sigma_paper()[(i, j)];
                assert!(
                    (cov - expect).abs() < 0.03 * expect.abs().max(10.0),
                    "cov[{i}][{j}] = {cov}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn sample_batch_fills_all() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = GaussianSampler::new(&g);
        let mut buf = vec![Vector::<2>::ZERO; 64];
        sampler.sample_batch(&mut rng, &mut buf);
        // All finite and (with overwhelming probability) distinct from zero.
        assert!(buf.iter().all(|v| v.is_finite()));
        assert!(buf.iter().any(|v| v.norm() > 1e-9));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = Gaussian::<2>::standard();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = GaussianSampler::new(&g);
            s.sample(&mut rng)
        };
        assert_eq!(run(9).as_slice(), run(9).as_slice());
        assert_ne!(run(9).as_slice(), run(10).as_slice());
    }

    #[test]
    fn uniform_ball_stays_inside_and_fills() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sn = StandardNormal::new();
        let center = Vector::from([10.0, -5.0, 2.0]);
        let radius = 4.0;
        let n = 50_000;
        let mut inside_half = 0usize;
        for _ in 0..n {
            let x = sample_uniform_ball(&mut sn, &mut rng, &center, radius);
            let dist = x.distance(&center);
            assert!(dist <= radius + 1e-12);
            if dist <= radius / 2.0 {
                inside_half += 1;
            }
        }
        // Volume ratio of half-radius ball in 3-D is 1/8.
        let frac = inside_half as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn uniform_ball_radius_zero_returns_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sn = StandardNormal::new();
        let center = Vector::from([1.0, 2.0]);
        let x = sample_uniform_ball(&mut sn, &mut rng, &center, 0.0);
        assert_eq!(x.as_slice(), center.as_slice());
    }
}
