//! Numerical integration of Gaussian densities over balls — the
//! *qualification probability* `Pr(‖x − o‖ ≤ δ)` of paper Eq. 3.
//!
//! For a general covariance the integral has no closed form (after
//! whitening, the ball becomes an ellipsoid), which is the paper's core
//! cost argument: Phase 3 dominates query time. This module provides the
//! paper's estimator and three cross-checking alternatives:
//!
//! * [`importance_sampling_probability`] — the paper's method (§V-A):
//!   draw `x ~ N(q, Σ)` and count the fraction landing in the ball.
//!   Converges quickly because the proposal *is* the measure.
//! * the [`crate::cloud`] module — an optimization the paper does not
//!   apply: since the proposal does not depend on the target object, one
//!   batch of samples ([`crate::cloud::SampleCloud`]) can be reused
//!   across every candidate of a query and pruned spatially
//!   ([`crate::cloud::CloudGrid`]). This is the default Phase-3 path.
//! * [`uniform_ball_probability`] — the "standard Monte Carlo method" the
//!   paper contrasts against: sample uniformly in the ball, average the
//!   density, multiply by ball volume. Degrades in higher dimensions.
//! * [`quadrature_probability_2d`] — a deterministic polar Gauss–Legendre
//!   tensor rule for `d = 2`, used as the high-accuracy oracle in tests
//!   and experiment validation.
//! * [`analytic_interval_probability_1d`] — the trivial 1-D case the paper
//!   notes in §I (closed form via `Φ`).

use crate::mvn::Gaussian;
use crate::sampler::{sample_uniform_ball, GaussianSampler, StandardNormal};
use crate::specfun::{ball_volume, std_normal_cdf};
use gprq_linalg::Vector;
use rand::Rng;
use std::fmt;

/// Number of Monte-Carlo samples the paper uses per integration (§V-A:
/// "for each numerical integration, 100,000 random numbers were
/// generated").
pub const PAPER_MC_SAMPLES: usize = 100_000;

/// A Monte-Carlo sample budget of zero was requested: no estimator can
/// produce a probability from zero draws, and silently returning `0.0`
/// would masquerade as a confident rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSampleBudget;

impl fmt::Display for InvalidSampleBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Monte-Carlo sample budget must be positive")
    }
}

impl std::error::Error for InvalidSampleBudget {}

/// Estimates `Pr(‖x − center‖ ≤ delta)` for `x ~ gaussian` by importance
/// sampling from the Gaussian itself — the paper's integrator.
///
/// The estimate is the fraction of `n_samples` draws that land inside the
/// ball; its standard error is `√(p(1−p)/n)`. Debug-asserts `delta ≥ 0`.
///
/// # Errors
///
/// [`InvalidSampleBudget`] if `n_samples == 0` — a zero-draw estimate
/// would be an unfounded hard rejection.
// HOT-PATH: importance-sampling integration loop (Phase 3, paper §V-A)
pub fn importance_sampling_probability<const D: usize, R: Rng + ?Sized>(
    gaussian: &Gaussian<D>,
    center: &Vector<D>,
    delta: f64,
    n_samples: usize,
    rng: &mut R,
) -> Result<f64, InvalidSampleBudget> {
    if n_samples == 0 {
        return Err(InvalidSampleBudget);
    }
    debug_assert!(delta >= 0.0);
    let delta_sq = delta * delta;
    let mut sampler = GaussianSampler::new(gaussian);
    let mut hits = 0usize;
    for _ in 0..n_samples {
        let x = sampler.sample(rng);
        if x.distance_squared(center) <= delta_sq {
            hits += 1;
        }
    }
    Ok(hits as f64 / n_samples as f64)
}

/// A running Monte-Carlo proportion estimate: `hits` successes out of
/// `n` draws, with confidence bounds for early-termination decisions.
///
/// The budgeted Phase-3 evaluator refines an estimate block by block and
/// stops as soon as the confidence interval clears the query threshold
/// `θ` on either side — most candidates are *far* from the threshold, so
/// a few hundred samples decide them, not the paper's fixed 100 000.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunningEstimate {
    /// Samples that landed inside the ball.
    pub hits: usize,
    /// Total samples drawn.
    pub n: usize,
}

impl RunningEstimate {
    /// The point estimate `hits / n` (0 when no samples were drawn).
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.hits as f64 / self.n as f64
        }
    }

    /// Wilson score interval at `z` standard normal deviations — the
    /// binomial confidence interval that stays inside `[0, 1]` and
    /// behaves sanely at `p̂ ∈ {0, 1}`, unlike the Wald interval.
    ///
    /// Returns `(lower, upper)`; `(0, 1)` when no samples were drawn.
    pub fn wilson_bounds(&self, z: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 1.0);
        }
        let n = self.n as f64;
        let p = self.hits as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = p + z2 / (2.0 * n);
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        let lo = ((center - half) / denom).max(0.0);
        let hi = ((center + half) / denom).min(1.0);
        (lo, hi)
    }

    /// Hoeffding two-sided half-width `√(ln(2/α) / 2n)` at confidence
    /// `1 − alpha` — the distribution-free (looser) alternative to
    /// [`RunningEstimate::wilson_bounds`], exposed for cross-checks.
    pub fn hoeffding_half_width(&self, alpha: f64) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        ((2.0 / alpha).ln() / (2.0 * self.n as f64)).sqrt()
    }
}

/// Incremental importance-sampling estimator for one `(center, δ)` pair:
/// the block-wise refinement primitive behind budgeted Phase-3
/// evaluation with confidence-interval early termination.
///
/// Draws come from the same proposal as
/// [`importance_sampling_probability`] (the query Gaussian itself), so a
/// run refined to `n` total samples is distributed identically to a
/// single `n`-sample batch — stopping early changes the *cost*, never
/// the estimator.
#[derive(Debug)]
pub struct StreamingProbability<'g, const D: usize> {
    sampler: GaussianSampler<'g, D>,
    center: Vector<D>,
    delta_sq: f64,
    estimate: RunningEstimate,
}

impl<'g, const D: usize> StreamingProbability<'g, D> {
    /// Creates an estimator for `Pr(‖x − center‖ ≤ delta)`, `x ~ gaussian`,
    /// with zero samples drawn. Debug-asserts `delta ≥ 0`.
    pub fn new(gaussian: &'g Gaussian<D>, center: &Vector<D>, delta: f64) -> Self {
        debug_assert!(delta >= 0.0);
        StreamingProbability {
            sampler: GaussianSampler::new(gaussian),
            center: *center,
            delta_sq: delta * delta,
            estimate: RunningEstimate::default(),
        }
    }

    /// Draws `block` more samples and returns the updated running
    /// estimate. A zero-sized block is a no-op.
    // HOT-PATH: budgeted Phase-3 refinement loop (resilient executor)
    pub fn refine<R: Rng + ?Sized>(&mut self, rng: &mut R, block: usize) -> RunningEstimate {
        for _ in 0..block {
            let x = self.sampler.sample(rng);
            if x.distance_squared(&self.center) <= self.delta_sq {
                self.estimate.hits += 1;
            }
            self.estimate.n += 1;
        }
        self.estimate
    }

    /// The running estimate so far.
    pub fn running(&self) -> RunningEstimate {
        self.estimate
    }
}

/// Estimates the ball probability with the "standard" Monte-Carlo method:
/// uniform samples in `B(center, delta)`, density averaged and scaled by
/// the ball volume.
///
/// Provided as the comparator the paper mentions; its variance grows with
/// dimension because the density varies over many orders of magnitude
/// across the ball (see the `mc_convergence` ablation bench).
///
/// # Panics
///
/// Panics if `n_samples == 0`; debug-asserts `delta ≥ 0`.
pub fn uniform_ball_probability<const D: usize, R: Rng + ?Sized>(
    gaussian: &Gaussian<D>,
    center: &Vector<D>,
    delta: f64,
    n_samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(n_samples > 0, "need at least one sample");
    debug_assert!(delta >= 0.0);
    if delta == 0.0 {
        return 0.0;
    }
    let mut sn = StandardNormal::new();
    let mut acc = 0.0;
    for _ in 0..n_samples {
        let x = sample_uniform_ball(&mut sn, rng, center, delta);
        acc += gaussian.pdf(&x);
    }
    (acc / n_samples as f64) * ball_volume(D, delta)
}

/// Deterministic reference integration for `d = 2`: a polar
/// Gauss–Legendre tensor rule around `center`.
///
/// ```text
/// ∫_{B(o,δ)} p_q = ∫₀^δ ∫₀^{2π} p_q(o + r·(cos φ, sin φ)) · r dφ dr
/// ```
///
/// With `n_radial × n_angular` nodes this is accurate to ~10⁻¹⁰ for the
/// paper's parameter ranges and serves as the oracle that validates both
/// Monte-Carlo estimators and the strategy filters.
///
/// # Panics
///
/// Panics if either node count is zero; debug-asserts `delta ≥ 0`.
pub fn quadrature_probability_2d(
    gaussian: &Gaussian<2>,
    center: &Vector<2>,
    delta: f64,
    n_radial: usize,
    n_angular: usize,
) -> f64 {
    assert!(n_radial > 0 && n_angular > 0, "need positive node counts");
    debug_assert!(delta >= 0.0);
    if delta == 0.0 {
        return 0.0;
    }
    let (r_nodes, r_weights) = gauss_legendre(n_radial);
    let (a_nodes, a_weights) = gauss_legendre(n_angular);
    let mut acc = 0.0;
    for (rn, rw) in r_nodes.iter().zip(&r_weights) {
        // Map [−1, 1] → [0, δ].
        let r = 0.5 * delta * (rn + 1.0);
        let jac_r = 0.5 * delta;
        let mut ring = 0.0;
        for (an, aw) in a_nodes.iter().zip(&a_weights) {
            // Map [−1, 1] → [0, 2π].
            let phi = std::f64::consts::PI * (an + 1.0);
            let x = Vector::from([center[0] + r * phi.cos(), center[1] + r * phi.sin()]);
            ring += aw * gaussian.pdf(&x);
        }
        let jac_a = std::f64::consts::PI;
        acc += rw * ring * r * jac_r * jac_a;
    }
    acc
}

/// Exact 1-D qualification probability: for `x ~ N(mean, std²)`,
/// `Pr(|x − center| ≤ delta) = Φ((center+δ−µ)/σ) − Φ((center−δ−µ)/σ)`.
///
/// The paper restricts itself to `d ≥ 2` because this closed form makes
/// the 1-D problem trivial; we include it for completeness and as a test
/// oracle for the `D = 1` instantiations of the generic code.
///
/// # Panics
///
/// Panics unless `std > 0`; debug-asserts `delta ≥ 0`.
pub fn analytic_interval_probability_1d(mean: f64, std: f64, center: f64, delta: f64) -> f64 {
    assert!(std > 0.0, "standard deviation must be positive");
    debug_assert!(delta >= 0.0);
    let hi = (center + delta - mean) / std;
    let lo = (center - delta - mean) / std;
    std_normal_cdf(hi) - std_normal_cdf(lo)
}

/// Computes the `n`-point Gauss–Legendre nodes and weights on `[−1, 1]`
/// by Newton iteration on the Legendre polynomial `P_n`.
///
/// Exposed publicly because the experiment harness also uses it for
/// region-area quadrature.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0, "need at least one node");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess for the i-th root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P'_n(x) via the three-term recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let kf = k as f64;
                let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
                p0 = p1;
                p1 = p2;
            }
            // p1 = P_n, p0 = P_{n−1}.
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n == 1 {
        nodes[0] = 0.0;
        weights[0] = 2.0;
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noncentral::ball_probability;
    use gprq_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sigma_paper(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    #[test]
    fn gauss_legendre_low_orders() {
        let (n1, w1) = gauss_legendre(1);
        assert_eq!(n1, vec![0.0]);
        assert_eq!(w1, vec![2.0]);
        let (n2, w2) = gauss_legendre(2);
        let inv_sqrt3 = 1.0 / 3.0f64.sqrt();
        assert!((n2[0] + inv_sqrt3).abs() < 1e-14);
        assert!((n2[1] - inv_sqrt3).abs() < 1e-14);
        assert!((w2[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // n nodes integrate degree ≤ 2n−1 exactly: ∫_{−1}^{1} x⁶ = 2/7.
        let (nodes, weights) = gauss_legendre(4);
        let approx: f64 = nodes.iter().zip(&weights).map(|(x, w)| w * x.powi(6)).sum();
        assert!((approx - 2.0 / 7.0).abs() < 1e-14);
        // Weights sum to the interval length.
        let total: f64 = weights.iter().sum();
        assert!((total - 2.0).abs() < 1e-13);
    }

    #[test]
    fn quadrature_matches_noncentral_for_standard_gaussian() {
        // For Σ = I, the ball probability has the noncentral-χ² closed
        // form — the strongest available cross-check.
        let g = Gaussian::<2>::standard();
        for &(beta, delta) in &[(0.0, 1.0), (1.5, 1.0), (2.0, 2.5), (4.0, 1.0)] {
            let center = Vector::from([beta, 0.0]);
            let quad = quadrature_probability_2d(&g, &center, delta, 64, 128);
            let exact = ball_probability(2, beta, delta);
            assert!(
                (quad - exact).abs() < 1e-10,
                "β = {beta}, δ = {delta}: quad {quad} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quadrature_rotation_invariant_center() {
        // Off-axis centers must give the same result as on-axis ones at
        // equal distance when the covariance is isotropic.
        let g = Gaussian::<2>::standard();
        let a = quadrature_probability_2d(&g, &Vector::from([2.0, 0.0]), 1.0, 48, 96);
        let c = 2.0 / 2.0f64.sqrt();
        let b = quadrature_probability_2d(&g, &Vector::from([c, c]), 1.0, 48, 96);
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn importance_sampling_matches_quadrature() {
        let g = Gaussian::new(Vector::from([500.0, 500.0]), sigma_paper(10.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for &offset in &[[0.0, 0.0], [10.0, 5.0], [-20.0, 12.0]] {
            let center = *g.mean() + Vector::from(offset);
            let delta = 25.0;
            let exact = quadrature_probability_2d(&g, &center, delta, 64, 128);
            let mc =
                importance_sampling_probability(&g, &center, delta, 200_000, &mut rng).unwrap();
            // Standard error at p≈0.5, n=200k is ~0.0011; allow 5σ.
            assert!(
                (mc - exact).abs() < 0.006,
                "offset {offset:?}: mc {mc} vs exact {exact}"
            );
        }
    }

    #[test]
    fn streaming_estimate_matches_quadrature_oracle() {
        let g = Gaussian::new(Vector::from([500.0, 500.0]), sigma_paper(10.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let center = *g.mean() + Vector::from([10.0, 5.0]);
        let delta = 25.0;
        let exact = quadrature_probability_2d(&g, &center, delta, 64, 128);
        let mut stream = StreamingProbability::new(&g, &center, delta);
        // Refine in uneven blocks to exercise incremental accumulation.
        let mut est = RunningEstimate::default();
        for block in [1, 0, 999, 50_000, 149_000] {
            est = stream.refine(&mut rng, block);
        }
        assert_eq!(est.n, 200_000);
        assert_eq!(est, stream.running());
        assert!(
            (est.estimate() - exact).abs() < 0.006,
            "stream {} vs exact {exact}",
            est.estimate()
        );
    }

    #[test]
    fn wilson_bounds_bracket_truth_and_tighten() {
        let g = Gaussian::new(Vector::from([0.0, 0.0]), sigma_paper(1.0)).unwrap();
        let center = Vector::from([2.0, 1.0]);
        let delta = 3.0;
        let exact = quadrature_probability_2d(&g, &center, delta, 64, 128);
        let mut rng = StdRng::seed_from_u64(31);
        let mut stream = StreamingProbability::new(&g, &center, delta);
        let mut prev_width = f64::INFINITY;
        for _ in 0..4 {
            let est = stream.refine(&mut rng, 25_000);
            let (lo, hi) = est.wilson_bounds(3.0);
            assert!(lo <= exact && exact <= hi, "[{lo}, {hi}] misses {exact}");
            let width = hi - lo;
            assert!(width < prev_width, "interval failed to tighten");
            prev_width = width;
            // Wilson stays inside the Hoeffding band (it uses variance info).
            assert!(width / 2.0 <= est.hoeffding_half_width(0.0027) + 1e-12);
        }
    }

    #[test]
    fn running_estimate_degenerate_cases() {
        let empty = RunningEstimate::default();
        assert_eq!(empty.estimate(), 0.0);
        assert_eq!(empty.wilson_bounds(1.96), (0.0, 1.0));
        assert_eq!(empty.hoeffding_half_width(0.05), 1.0);
        // All hits / no hits stay inside [0, 1].
        let all = RunningEstimate { hits: 100, n: 100 };
        let (lo, hi) = all.wilson_bounds(3.0);
        assert!(lo > 0.8 && hi <= 1.0);
        let none = RunningEstimate { hits: 0, n: 100 };
        let (lo, hi) = none.wilson_bounds(3.0);
        assert!(lo >= 0.0 && hi < 0.2);
    }

    #[test]
    fn uniform_ball_matches_quadrature_2d() {
        let g = Gaussian::new(Vector::from([0.0, 0.0]), sigma_paper(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let center = Vector::from([2.0, 1.0]);
        let delta = 3.0;
        let exact = quadrature_probability_2d(&g, &center, delta, 64, 128);
        let mc = uniform_ball_probability(&g, &center, delta, 400_000, &mut rng);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn zero_sample_budget_is_an_error() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(1);
        let err = importance_sampling_probability(&g, &Vector::ZERO, 1.0, 0, &mut rng).unwrap_err();
        assert_eq!(err, InvalidSampleBudget);
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn analytic_1d_anchors() {
        // Standard normal, interval [−1, 1]: 0.682689…
        let p = analytic_interval_probability_1d(0.0, 1.0, 0.0, 1.0);
        assert!((p - 0.682_689_492_137_085_9).abs() < 1e-12);
        // Shifted: N(5, 2²), Pr(|x − 5| ≤ 2) = Φ(1) − Φ(−1).
        let p = analytic_interval_probability_1d(5.0, 2.0, 5.0, 2.0);
        assert!((p - 0.682_689_492_137_085_9).abs() < 1e-12);
        // Far away: essentially zero.
        let p = analytic_interval_probability_1d(0.0, 1.0, 100.0, 1.0);
        assert!(p < 1e-12);
    }

    #[test]
    fn analytic_1d_matches_mc() {
        let g = Gaussian::new(Vector::from([3.0]), Matrix::from_rows([[4.0]])).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mc = importance_sampling_probability(&g, &Vector::from([4.0]), 1.5, 200_000, &mut rng)
            .unwrap();
        let exact = analytic_interval_probability_1d(3.0, 2.0, 4.0, 1.5);
        assert!((mc - exact).abs() < 0.006, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn zero_delta_probabilities() {
        let g = Gaussian::<2>::standard();
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(
            uniform_ball_probability(&g, &Vector::ZERO, 0.0, 10, &mut rng),
            0.0
        );
        assert_eq!(quadrature_probability_2d(&g, &Vector::ZERO, 0.0, 8, 8), 0.0);
        assert_eq!(
            importance_sampling_probability(&g, &Vector::ZERO, 0.0, 10, &mut rng).unwrap(),
            0.0
        );
    }

    #[test]
    fn point_symmetry_of_gaussian() {
        // Paper Fig. 3's argument: by point symmetry, the probability for
        // o and its reflection o′ = 2q − o are equal.
        let g = Gaussian::new(Vector::from([50.0, 50.0]), sigma_paper(10.0)).unwrap();
        let o = Vector::from([80.0, 45.0]);
        let o_reflected = *g.mean() * 2.0 - o;
        let delta = 20.0;
        let p1 = quadrature_probability_2d(&g, &o, delta, 64, 128);
        let p2 = quadrature_probability_2d(&g, &o_reflected, delta, 64, 128);
        assert!((p1 - p2).abs() < 1e-10);
    }
}
