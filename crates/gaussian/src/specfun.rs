//! Special functions implemented from scratch.
//!
//! Everything downstream (θ-region radii, U-catalog entries, analytic 1-D
//! probabilities) reduces to two classical special functions:
//!
//! * the log-gamma function `ln Γ(x)` (Lanczos approximation, g = 7, n = 9,
//!   the well-known coefficient set accurate to ~15 significant digits);
//! * the regularized lower incomplete gamma function
//!   `P(a, x) = γ(a, x) / Γ(a)`, computed by the standard dual scheme:
//!   a power series for `x < a + 1` and a Lentz continued fraction for the
//!   complementary function `Q(a, x)` otherwise (both from *Numerical
//!   Recipes*, which the paper itself cites as ref. 18).
//!
//! `erf`, `erfc`, and the standard normal CDF `Φ` are thin wrappers over
//! `P(1/2, x²)`.

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to roughly machine precision over the domain used here
/// (`x = d/2` for dimensions up to a few dozen, plus series intermediates).
///
/// # Panics
///
/// Debug-asserts `x > 0`; for `x ≤ 0` the reflection formula is not
/// implemented because no caller needs it.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos evaluated at x-1 (Γ(x) = (x-1)!-style shift).
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Maximum iterations for the incomplete-gamma series / continued fraction.
const MAX_ITER: usize = 500;
/// Relative convergence tolerance.
const EPS: f64 = 1e-15;
/// Smallest representable pivot for the Lentz continued fraction.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// * `P(a, 0) = 0`, `P(a, ∞) = 1`, monotone increasing in `x`.
/// * For the chi-squared distribution with `k` degrees of freedom,
///   `CDF(x) = P(k/2, x/2)` — the identity behind paper Eq. 7.
///
/// # Panics
///
/// Debug-asserts `a > 0` and `x ≥ 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "regularized_gamma_p requires a > 0, got {a}");
    debug_assert!(x >= 0.0, "regularized_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly (not as `1 − P`) when `x ≥ a + 1`, so tail values far
/// below machine epsilon of 1 are still meaningful.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`, valid/fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Modified-Lentz continued fraction for `Q(a, x)`, valid/fast for `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (h * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = regularized_gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, accurate in the
/// positive tail (uses `Q(1/2, x²)` directly).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        regularized_gamma_q(0.5, x * x)
    } else {
        1.0 + regularized_gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF `Φ⁻¹(p)`.
///
/// Acklam's rational approximation (relative error ≲ 1.2·10⁻⁹) refined
/// with one Halley step against the exact [`std_normal_cdf`], giving
/// ~machine precision. Fast enough for the quasi-Monte-Carlo integrator,
/// which calls it once per sample coordinate.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D_COEF: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D_COEF[0] * q + D_COEF[1]) * q + D_COEF[2]) * q + D_COEF[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D_COEF[0] * q + D_COEF[1]) * q + D_COEF[2]) * q + D_COEF[3]) * q + 1.0)
    };

    // One Halley refinement: u = (Φ(x) − p)/φ(x);
    // x ← x − u / (1 + x·u/2).
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if pdf > 0.0 {
        let u = (std_normal_cdf(x) - p) / pdf;
        x - u / (1.0 + 0.5 * x * u)
    } else {
        x
    }
}

/// Natural log of the volume of the unit `d`-ball:
/// `ln V_d = (d/2)·ln π − ln Γ(d/2 + 1)`.
///
/// The uniform-ball Monte Carlo integrator multiplies mean density by the
/// ball volume `V_d·δ^d`; in 9-D that volume spans many orders of
/// magnitude, so it is carried in log space.
pub fn ln_unit_ball_volume(d: usize) -> f64 {
    let df = d as f64;
    0.5 * df * std::f64::consts::PI.ln() - ln_gamma(0.5 * df + 1.0)
}

/// Volume of the `d`-ball of radius `r`.
pub fn ball_volume(d: usize, r: f64) -> f64 {
    (ln_unit_ball_volume(d) + (d as f64) * r.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!((gamma(1.0) - 1.0).abs() < TOL);
        assert!((gamma(2.0) - 1.0).abs() < TOL);
        assert!((gamma(5.0) - 24.0).abs() < 1e-10);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < TOL);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        for &x in &[0.3, 1.7, 4.5, 10.0, 33.3] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0), "x = {x}");
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(regularized_gamma_p(2.5, 0.0), 0.0);
        assert!((regularized_gamma_p(2.5, 1e6) - 1.0).abs() < TOL);
        assert_eq!(regularized_gamma_q(2.5, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{−x} (exponential distribution CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let expect = 1.0 - f64::exp(-x);
            assert!(
                (regularized_gamma_p(1.0, x) - expect).abs() < 1e-13,
                "x = {x}"
            );
        }
        // P(1/2, x) = erf(√x); anchor erf(1) = 0.842700792949715.
        assert!((regularized_gamma_p(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-13);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 4.5, 20.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 50.0] {
                let s = regularized_gamma_p(a, x) + regularized_gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a = {a}, x = {x}");
            }
        }
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-13);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-13);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-13);
        assert!((erf(5.0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209049699858544e-5 — must retain relative accuracy.
        let v = erfc(3.0);
        assert!((v - 2.209_049_699_858_544e-5).abs() / v < 1e-10);
        // Symmetry erfc(−x) = 2 − erfc(x).
        assert!((erfc(-1.5) - (2.0 - erfc(1.5))).abs() < 1e-13);
    }

    #[test]
    fn normal_cdf_anchors() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < TOL);
        assert!((std_normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((std_normal_cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-13);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.5, 0.8, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_out_of_range() {
        std_normal_quantile(1.0);
    }

    #[test]
    fn ball_volumes() {
        use std::f64::consts::PI;
        // V_1(r) = 2r, V_2(r) = πr², V_3(r) = 4/3 πr³.
        assert!((ball_volume(1, 2.0) - 4.0).abs() < 1e-12);
        assert!((ball_volume(2, 3.0) - PI * 9.0).abs() < 1e-10);
        assert!((ball_volume(3, 1.0) - 4.0 / 3.0 * PI).abs() < 1e-12);
        // 9-D unit ball volume: π^4.5/Γ(5.5) = 3.29850890...
        assert!((ball_volume(9, 1.0) - 3.298_508_902_738_707).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_gamma_p_monotone_in_x(a in 0.25..30.0f64, x in 0.0..50.0f64, dx in 0.01..5.0f64) {
            prop_assert!(regularized_gamma_p(a, x + dx) >= regularized_gamma_p(a, x) - 1e-14);
        }

        #[test]
        fn prop_gamma_p_in_unit_interval(a in 0.25..30.0f64, x in 0.0..100.0f64) {
            let p = regularized_gamma_p(a, x);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_erf_odd(x in -5.0..5.0f64) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        }

        #[test]
        fn prop_normal_cdf_monotone(x in -8.0..8.0f64, dx in 0.001..2.0f64) {
            prop_assert!(std_normal_cdf(x + dx) > std_normal_cdf(x));
        }
    }
}
