//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Covariance matrices in the paper are SPD by construction; the Cholesky
//! factor `L` (with `Σ = L·Lᵗ`) is the workhorse for
//!
//! * **sampling** `x ~ N(q, Σ)` as `x = q + L·z` with `z ~ N(0, I)`
//!   (the importance-sampling integrator of §V-A),
//! * **determinants** `|Σ| = Π lᵢᵢ²` needed by the Gaussian density (Eq. 1)
//!   and by the BF strategy's catalog keys `(λ)^{d/2}|Σ|^{1/2}θ` (Eqs. 29–30),
//! * **inverses / solves** for the Mahalanobis quadratic form.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// The lower-triangular Cholesky factor `L` of an SPD matrix `M = L·Lᵗ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cholesky<const D: usize> {
    lower: Matrix<D>,
}

impl<const D: usize> Cholesky<D> {
    /// Factorizes `m = L·Lᵗ`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonFinite`] if `m` contains NaN/Inf,
    /// * [`LinalgError::NotSymmetric`] if `m` is measurably asymmetric,
    /// * [`LinalgError::NotPositiveDefinite`] if any pivot is `≤ 0`
    ///   (within a scale-relative tolerance), i.e. `m` is not SPD.
    pub fn new(m: &Matrix<D>) -> Result<Self> {
        m.check_symmetric(1e-9)?;
        let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let mut l = Matrix::<D>::ZERO;
        for j in 0..D {
            // Diagonal entry.
            let mut diag = m[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            // Negated form on purpose: a NaN pivot (from NaN input that
            // slipped past the finiteness check via arithmetic) must take
            // the error branch.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(diag > scale * 1e-14) {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: j,
                    value: diag,
                });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            // Below-diagonal column.
            let inv = 1.0 / ljj;
            for i in (j + 1)..D {
                let mut v = m[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v * inv;
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix<D> {
        &self.lower
    }

    /// Determinant of the original matrix: `Π lᵢᵢ²`.
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..D {
            let l = self.lower[(i, i)];
            det *= l * l;
        }
        det
    }

    /// Natural log of the determinant, stable for very small/large `|Σ|`.
    ///
    /// Medium-dimensional covariance matrices (the paper's 9-D experiment)
    /// routinely have determinants near the underflow boundary; BF's catalog
    /// keys (Eqs. 36–37) are computed in log space from this.
    pub fn log_determinant(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.lower[(i, i)].ln();
        }
        2.0 * acc
    }

    /// Solves `L·y = b` by forward substitution.
    pub fn solve_lower(&self, b: &Vector<D>) -> Vector<D> {
        let mut y = Vector::<D>::ZERO;
        for i in 0..D {
            let mut v = b[i];
            for k in 0..i {
                v -= self.lower[(i, k)] * y[k];
            }
            y[i] = v / self.lower[(i, i)];
        }
        y
    }

    /// Solves `Lᵗ·x = y` by backward substitution.
    pub fn solve_upper(&self, y: &Vector<D>) -> Vector<D> {
        let mut x = Vector::<D>::ZERO;
        for i in (0..D).rev() {
            let mut v = y[i];
            for k in (i + 1)..D {
                v -= self.lower[(k, i)] * x[k];
            }
            x[i] = v / self.lower[(i, i)];
        }
        x
    }

    /// Solves `M·x = b` for the original matrix `M = L·Lᵗ`.
    pub fn solve(&self, b: &Vector<D>) -> Vector<D> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Inverse of the original matrix, `M⁻¹`, returned as a (symmetric)
    /// dense matrix. Computed column-by-column via [`Cholesky::solve`].
    pub fn inverse(&self) -> Matrix<D> {
        let mut inv = Matrix::<D>::ZERO;
        for j in 0..D {
            let mut e = Vector::<D>::ZERO;
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..D {
                inv[(i, j)] = col[i];
            }
        }
        // Symmetrize to remove round-off drift: the inverse of an SPD
        // matrix is SPD, so averaging the off-diagonal pairs only removes
        // noise and keeps downstream symmetry checks happy.
        for i in 0..D {
            for j in (i + 1)..D {
                let avg = 0.5 * (inv[(i, j)] + inv[(j, i)]);
                inv[(i, j)] = avg;
                inv[(j, i)] = avg;
            }
        }
        inv
    }

    /// The Mahalanobis quadratic form `vᵗ M⁻¹ v` without materializing `M⁻¹`:
    /// `‖L⁻¹ v‖²` via one forward substitution.
    pub fn mahalanobis_squared(&self, v: &Vector<D>) -> f64 {
        self.solve_lower(v).norm_squared()
    }

    /// Applies the factor to a vector: `L·z`. This is the affine step of
    /// Gaussian sampling (`x = q + L·z`).
    pub fn apply(&self, z: &Vector<D>) -> Vector<D> {
        let mut out = Vector::<D>::ZERO;
        for i in 0..D {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.lower[(i, k)] * z[k];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sigma_paper(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    #[test]
    fn factor_reconstructs() {
        let m = sigma_paper(10.0);
        let ch = m.cholesky().unwrap();
        let l = ch.lower();
        let rec = l.mul_mat(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let m = Matrix::from_rows([[1.0, 2.0], [2.0, 1.0]]); // eigenvalues 3, −1
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric_and_nonfinite() {
        let m = Matrix::from_rows([[1.0, 0.5], [0.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotSymmetric { .. })
        ));
        let m = Matrix::from_rows([[f64::NAN, 0.0], [0.0, 1.0]]);
        assert!(matches!(Cholesky::new(&m), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn determinant_matches_lu() {
        let m = sigma_paper(10.0);
        let ch = m.cholesky().unwrap();
        assert!((ch.determinant() - m.determinant()).abs() < 1e-6);
        assert!((ch.log_determinant() - m.determinant().ln()).abs() < 1e-9);
    }

    #[test]
    fn solve_matches_inverse() {
        let m = sigma_paper(1.0);
        let ch = m.cholesky().unwrap();
        let b = Vector::from([1.0, -2.0]);
        let x = ch.solve(&b);
        // M·x should equal b.
        let back = m.mul_vec(&x);
        assert!((back[0] - b[0]).abs() < 1e-9);
        assert!((back[1] - b[1]).abs() < 1e-9);
        // Inverse times b should equal x.
        let xi = ch.inverse().mul_vec(&b);
        assert!((xi[0] - x[0]).abs() < 1e-9);
        assert!((xi[1] - x[1]).abs() < 1e-9);
    }

    #[test]
    fn inverse_is_symmetric() {
        let m = sigma_paper(100.0);
        let inv = m.cholesky().unwrap().inverse();
        assert_eq!(inv[(0, 1)], inv[(1, 0)]);
        // inv · m = I
        let prod = inv.mul_mat(&m);
        assert!((prod[(0, 0)] - 1.0).abs() < 1e-9);
        assert!(prod[(0, 1)].abs() < 1e-9);
    }

    #[test]
    fn mahalanobis_matches_explicit() {
        let m = sigma_paper(10.0);
        let ch = m.cholesky().unwrap();
        let v = Vector::from([3.0, -1.0]);
        let explicit = ch.inverse().quadratic_form(&v);
        assert!((ch.mahalanobis_squared(&v) - explicit).abs() < 1e-9);
    }

    #[test]
    fn apply_is_lower_mul() {
        let m = sigma_paper(1.0);
        let ch = m.cholesky().unwrap();
        let z = Vector::from([0.5, -0.25]);
        let a = ch.apply(&z);
        let b = ch.lower().mul_vec(&z);
        assert!((a[0] - b[0]).abs() < 1e-12);
        assert!((a[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn identity_cholesky_is_identity() {
        let ch = Matrix::<4>::identity().cholesky().unwrap();
        assert_eq!(*ch.lower(), Matrix::<4>::identity());
        assert_eq!(ch.determinant(), 1.0);
    }

    /// Builds a random SPD matrix A·Aᵗ + εI from proptest-driven entries.
    fn spd3(entries: [[f64; 3]; 3]) -> Matrix<3> {
        let a = Matrix(entries);
        let mut m = a.mul_mat(&a.transpose());
        for i in 0..3 {
            m[(i, i)] += 1.0;
        }
        m
    }

    proptest! {
        #[test]
        fn prop_spd_factorizes_and_roundtrips(
            entries in proptest::array::uniform3(proptest::array::uniform3(-5.0..5.0f64)),
            b in proptest::array::uniform3(-10.0..10.0f64),
        ) {
            let m = spd3(entries);
            let ch = Cholesky::new(&m).expect("SPD by construction");
            let x = ch.solve(&Vector(b));
            let back = m.mul_vec(&x);
            for i in 0..3 {
                prop_assert!((back[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()));
            }
            prop_assert!(ch.determinant() > 0.0);
        }

        #[test]
        fn prop_mahalanobis_nonnegative(
            entries in proptest::array::uniform3(proptest::array::uniform3(-5.0..5.0f64)),
            v in proptest::array::uniform3(-10.0..10.0f64),
        ) {
            let ch = Cholesky::new(&spd3(entries)).unwrap();
            prop_assert!(ch.mahalanobis_squared(&Vector(v)) >= 0.0);
        }
    }
}
