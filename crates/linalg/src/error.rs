//! Error types for linear-algebra operations.

use std::fmt;

/// Errors produced by the fallible operations in this crate.
///
/// All variants carry enough context to diagnose which numerical
/// precondition was violated; they are deliberately small (no allocation)
/// because they can be constructed on hot paths when validating user input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinalgError {
    /// A matrix expected to be symmetric positive-definite failed the
    /// Cholesky factorization at the given pivot index.
    ///
    /// This is the canonical way covariance-matrix validation surfaces:
    /// a covariance matrix with a non-positive eigenvalue is rejected here.
    NotPositiveDefinite {
        /// Index of the pivot where factorization broke down.
        pivot: usize,
        /// The offending (non-positive or non-finite) pivot value.
        value: f64,
    },
    /// A matrix expected to be symmetric was not (within tolerance).
    NotSymmetric {
        /// Row of the entry with the largest asymmetry.
        row: usize,
        /// Column of the entry with the largest asymmetry.
        col: usize,
        /// Magnitude of the asymmetry `|a[i][j] - a[j][i]|`.
        asymmetry: f64,
    },
    /// The Jacobi eigenvalue iteration failed to converge within the sweep
    /// limit. For well-formed symmetric input this should never happen; it
    /// indicates NaN/Inf contamination.
    EigenNoConvergence {
        /// Remaining off-diagonal Frobenius norm when iteration stopped.
        off_diagonal: f64,
    },
    /// An input contained NaN or infinity.
    NonFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive-definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::NotSymmetric {
                row,
                col,
                asymmetry,
            } => write!(
                f,
                "matrix is not symmetric: |a[{row}][{col}] - a[{col}][{row}]| = {asymmetry:e}"
            ),
            LinalgError::EigenNoConvergence { off_diagonal } => write!(
                f,
                "Jacobi eigendecomposition did not converge (off-diagonal norm {off_diagonal:e})"
            ),
            LinalgError::NonFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 1,
            value: -0.5,
        };
        let s = e.to_string();
        assert!(s.contains("positive-definite"));
        assert!(s.contains("pivot 1"));
    }

    #[test]
    fn display_not_symmetric() {
        let e = LinalgError::NotSymmetric {
            row: 0,
            col: 1,
            asymmetry: 0.25,
        };
        let s = e.to_string();
        assert!(s.contains("symmetric"));
    }

    #[test]
    fn display_no_convergence_and_non_finite() {
        assert!(LinalgError::EigenNoConvergence { off_diagonal: 1.0 }
            .to_string()
            .contains("converge"));
        assert!(LinalgError::NonFinite.to_string().contains("NaN"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::NonFinite);
        assert!(!e.to_string().is_empty());
    }
}
