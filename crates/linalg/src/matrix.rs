//! Fixed-dimension square matrices backed by stack arrays.

use crate::cholesky::Cholesky;
use crate::eigen::SymmetricEigen;
use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense `D × D` matrix of `f64`, stored row-major inline.
///
/// The workspace only ever needs square matrices of the query dimension
/// (covariance matrices `Σ`, their inverses, and orthonormal eigenvector
/// matrices `E`), so the type is deliberately square-only.
///
/// ```
/// use gprq_linalg::{Matrix, Vector};
/// let m = Matrix::<2>::from_rows([[2.0, 0.0], [0.0, 3.0]]);
/// let v = Vector::from([1.0, 1.0]);
/// assert_eq!(m.mul_vec(&v).as_slice(), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix<const D: usize>(pub [[f64; D]; D]);

impl<const D: usize> Matrix<D> {
    /// The zero matrix.
    pub const ZERO: Self = Matrix([[0.0; D]; D]);

    /// The identity matrix `I`.
    pub fn identity() -> Self {
        let mut m = Self::ZERO;
        for i in 0..D {
            m.0[i][i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row arrays.
    pub fn from_rows(rows: [[f64; D]; D]) -> Self {
        Matrix(rows)
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::ZERO;
        for i in 0..D {
            for j in 0..D {
                m.0[i][j] = f(i, j);
            }
        }
        m
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &Vector<D>) -> Self {
        Self::from_fn(|i, j| if i == j { diag[i] } else { 0.0 })
    }

    /// Returns the diagonal as a vector.
    pub fn diagonal(&self) -> Vector<D> {
        Vector::from_fn(|i| self.0[i][i])
    }

    /// Returns the dimensionality `D`.
    pub const fn dim(&self) -> usize {
        D
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(|i, j| self.0[j][i])
    }

    /// Matrix–vector product `M·v`.
    pub fn mul_vec(&self, v: &Vector<D>) -> Vector<D> {
        Vector::from_fn(|i| {
            let mut acc = 0.0;
            for j in 0..D {
                acc += self.0[i][j] * v[j];
            }
            acc
        })
    }

    /// Transposed matrix–vector product `Mᵗ·v` (no transpose materialized).
    pub fn transpose_mul_vec(&self, v: &Vector<D>) -> Vector<D> {
        Vector::from_fn(|j| {
            let mut acc = 0.0;
            for i in 0..D {
                acc += self.0[i][j] * v[i];
            }
            acc
        })
    }

    /// Matrix–matrix product `self · rhs`.
    pub fn mul_mat(&self, rhs: &Self) -> Self {
        Self::from_fn(|i, j| {
            let mut acc = 0.0;
            for k in 0..D {
                acc += self.0[i][k] * rhs.0[k][j];
            }
            acc
        })
    }

    /// Quadratic form `vᵗ · M · v`.
    ///
    /// This is the Mahalanobis-distance kernel of the paper
    /// (`(x − q)ᵗ Σ⁻¹ (x − q)`, Eq. 1) and is kept branch-free for the
    /// integration hot loop.
    pub fn quadratic_form(&self, v: &Vector<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let mut row = 0.0;
            for j in 0..D {
                row += self.0[i][j] * v[j];
            }
            acc += v[i] * row;
        }
        acc
    }

    /// Trace `Σᵢ mᵢᵢ`.
    pub fn trace(&self) -> f64 {
        (0..D).map(|i| self.0[i][i]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        let mut acc = 0.0;
        for row in &self.0 {
            for v in row {
                acc += v * v;
            }
        }
        acc.sqrt()
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        for row in &self.0 {
            for v in row {
                if !v.is_finite() {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute asymmetry `max |a[i][j] − a[j][i]|`.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..D {
            for j in (i + 1)..D {
                worst = worst.max((self.0[i][j] - self.0[j][i]).abs());
            }
        }
        worst
    }

    /// Validates that the matrix is symmetric within `tol` (relative to its
    /// Frobenius norm) and finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] for NaN/∞ entries and
    /// [`LinalgError::NotSymmetric`] naming the worst entry pair when
    /// the relative asymmetry exceeds `tol`.
    pub fn check_symmetric(&self, tol: f64) -> Result<()> {
        if !self.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let scale = self.frobenius_norm().max(1.0);
        for i in 0..D {
            for j in (i + 1)..D {
                let asym = (self.0[i][j] - self.0[j][i]).abs();
                if asym > tol * scale {
                    return Err(LinalgError::NotSymmetric {
                        row: i,
                        col: j,
                        asymmetry: asym,
                    });
                }
            }
        }
        Ok(())
    }

    /// Cholesky factorization `M = L·Lᵗ` (requires symmetric positive-definite).
    ///
    /// # Errors
    ///
    /// Fails when the matrix is non-finite, asymmetric, or not positive
    /// definite (a non-positive pivot during factorization).
    pub fn cholesky(&self) -> Result<Cholesky<D>> {
        Cholesky::new(self)
    }

    /// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
    ///
    /// Eigenvalues are returned sorted in **descending** order with matching
    /// orthonormal eigenvectors (columns of [`SymmetricEigen::eigenvectors`]).
    ///
    /// # Errors
    ///
    /// Fails when the matrix is non-finite or asymmetric, or when the
    /// Jacobi sweep does not converge within its iteration budget.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen<D>> {
        SymmetricEigen::new(self)
    }

    /// Determinant, computed via LU decomposition with partial pivoting.
    ///
    /// Works for any square matrix; for SPD matrices prefer
    /// [`Cholesky::determinant`] which is faster and more stable.
    pub fn determinant(&self) -> f64 {
        // LU with partial pivoting on a local copy.
        let mut a = self.0;
        let mut det = 1.0;
        for col in 0..D {
            // Pivot selection.
            let mut pivot_row = col;
            let mut pivot_val = a[col][col].abs();
            for (row, a_row) in a.iter().enumerate().skip(col + 1) {
                if a_row[col].abs() > pivot_val {
                    pivot_val = a_row[col].abs();
                    pivot_row = row;
                }
            }
            if pivot_val == 0.0 {
                return 0.0;
            }
            if pivot_row != col {
                a.swap(pivot_row, col);
                det = -det;
            }
            det *= a[col][col];
            let inv_pivot = 1.0 / a[col][col];
            for row in (col + 1)..D {
                let factor = a[row][col] * inv_pivot;
                // Index loop on purpose: `a[row]` and `a[col]` alias the
                // same array, so an iterator over one row cannot borrow
                // the other.
                #[allow(clippy::needless_range_loop)]
                for k in (col + 1)..D {
                    a[row][k] -= factor * a[col][k];
                }
            }
        }
        det
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Self {
        Self::from_fn(|i, j| self.0[i][j] * s)
    }

    /// Outer product `u · vᵗ`.
    pub fn outer(u: &Vector<D>, v: &Vector<D>) -> Self {
        Self::from_fn(|i, j| u[i] * v[j])
    }

    /// Adds `ridge` to every diagonal entry: `M + ridge·I` — Tikhonov
    /// regularization. The standard repair for a near-singular covariance
    /// matrix: the spectrum shifts from `λᵢ` to `λᵢ + ridge`, bounding the
    /// condition number by `(λ_max + ridge) / ridge`.
    pub fn add_scaled_identity(&self, ridge: f64) -> Self {
        Self::from_fn(|i, j| {
            if i == j {
                self.0[i][j] + ridge
            } else {
                self.0[i][j]
            }
        })
    }

    /// Spectral condition number `λ_max / λ_min` of a symmetric matrix.
    ///
    /// For SPD input this is the 2-norm condition number; `∞`/NaN values
    /// (a zero or negative `λ_min`) signal numerical degeneracy that
    /// callers should treat as "ill-conditioned". Costs one Jacobi
    /// eigendecomposition — admission-time only, not per-candidate.
    ///
    /// # Errors
    ///
    /// Fails when the matrix is non-finite or asymmetric, or when the
    /// Jacobi sweep does not converge.
    pub fn condition_number(&self) -> Result<f64> {
        Ok(self.symmetric_eigen()?.condition_number())
    }
}

impl<const D: usize> Default for Matrix<D> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const D: usize> Index<(usize, usize)> for Matrix<D> {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.0[i][j]
    }
}

impl<const D: usize> IndexMut<(usize, usize)> for Matrix<D> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.0[i][j]
    }
}

impl<const D: usize> Add for Matrix<D> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_fn(|i, j| self.0[i][j] + rhs.0[i][j])
    }
}

impl<const D: usize> Sub for Matrix<D> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_fn(|i, j| self.0[i][j] - rhs.0[i][j])
    }
}

impl<const D: usize> Mul<f64> for Matrix<D> {
    type Output = Self;
    fn mul(self, s: f64) -> Self {
        self.scale(s)
    }
}

impl<const D: usize> fmt::Display for Matrix<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.6}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sigma_paper() -> Matrix<2> {
        // Paper Eq. (34) with γ = 1.
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]])
    }

    #[test]
    fn condition_number_of_near_singular_matrix_is_large() {
        let m = Matrix::from_rows([[1.0, 0.999_999], [0.999_999, 1.0]]);
        let cond = m.condition_number().unwrap();
        assert!(cond > 1e5, "cond {cond}");
        // A modest ridge repairs it.
        let repaired = m.add_scaled_identity(0.1).condition_number().unwrap();
        assert!(repaired < 25.0, "repaired cond {repaired}");
        // The identity is perfectly conditioned.
        let one = Matrix::<3>::identity().condition_number().unwrap();
        assert!((one - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_identity_touches_only_diagonal() {
        let m = sigma_paper().add_scaled_identity(2.5);
        assert!((m[(0, 0)] - 9.5).abs() < 1e-12);
        assert!((m[(1, 1)] - 5.5).abs() < 1e-12);
        assert!((m[(0, 1)] - 2.0 * 3.0f64.sqrt()).abs() < 1e-12);
        assert!((m[(0, 1)] - m[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn identity_behaves() {
        let i = Matrix::<3>::identity();
        let v = Vector::from([1.0, 2.0, 3.0]);
        assert_eq!(i.mul_vec(&v), v);
        assert_eq!(i.determinant(), 1.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn mul_vec_and_transpose() {
        let m = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0]]);
        let v = Vector::from([1.0, 1.0]);
        assert_eq!(m.mul_vec(&v).as_slice(), &[3.0, 7.0]);
        assert_eq!(m.transpose().0, [[1.0, 3.0], [2.0, 4.0]]);
        assert_eq!(m.transpose_mul_vec(&v), m.transpose().mul_vec(&v));
    }

    #[test]
    fn mul_mat_identity_is_noop() {
        let m = sigma_paper();
        let i = Matrix::<2>::identity();
        assert_eq!(m.mul_mat(&i), m);
        assert_eq!(i.mul_mat(&m), m);
    }

    #[test]
    fn quadratic_form_matches_explicit() {
        let m = sigma_paper();
        let v = Vector::from([1.5, -2.0]);
        let explicit = v.dot(&m.mul_vec(&v));
        assert!((m.quadratic_form(&v) - explicit).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_paper_sigma() {
        // det = 7·3 − (2√3)² = 21 − 12 = 9.
        assert!((sigma_paper().determinant() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_singular_is_zero() {
        let m = Matrix::from_rows([[1.0, 2.0], [2.0, 4.0]]);
        assert_eq!(m.determinant(), 0.0);
    }

    #[test]
    fn determinant_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let m = Matrix::from_rows([[0.0, 1.0], [1.0, 0.0]]);
        assert!((m.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_roundtrip() {
        let d = Vector::from([2.0, 5.0, 7.0]);
        let m = Matrix::from_diagonal(&d);
        assert_eq!(m.diagonal(), d);
        assert!((m.determinant() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_check() {
        assert!(sigma_paper().check_symmetric(1e-12).is_ok());
        let mut bad = sigma_paper();
        bad[(0, 1)] += 1.0;
        assert!(matches!(
            bad.check_symmetric(1e-12),
            Err(LinalgError::NotSymmetric { .. })
        ));
        let mut nan = sigma_paper();
        nan[(1, 1)] = f64::NAN;
        assert!(matches!(
            nan.check_symmetric(1e-12),
            Err(LinalgError::NonFinite)
        ));
    }

    #[test]
    fn outer_product() {
        let u = Vector::from([1.0, 2.0]);
        let v = Vector::from([3.0, 4.0]);
        let m = Matrix::outer(&u, &v);
        assert_eq!(m.0, [[3.0, 4.0], [6.0, 8.0]]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0]]);
        let b = Matrix::<2>::identity();
        assert_eq!((a + b).0, [[2.0, 2.0], [3.0, 5.0]]);
        assert_eq!((a - b).0, [[0.0, 2.0], [3.0, 3.0]]);
        assert_eq!((a * 2.0).0, [[2.0, 4.0], [6.0, 8.0]]);
    }

    #[test]
    fn display_formats_rows() {
        let s = Matrix::<2>::identity().to_string();
        assert!(s.contains("1.000000"));
        assert!(s.contains('\n'));
    }

    fn entry() -> impl Strategy<Value = f64> {
        -100.0..100.0
    }

    proptest! {
        #[test]
        fn prop_det_transpose_invariant(rows in [[entry(), entry()], [entry(), entry()]]) {
            let m = Matrix(rows);
            prop_assert!((m.determinant() - m.transpose().determinant()).abs() < 1e-6 * (1.0 + m.determinant().abs()));
        }

        #[test]
        fn prop_det_product(
            a in [[entry(), entry()], [entry(), entry()]],
            b in [[entry(), entry()], [entry(), entry()]],
        ) {
            let (a, b) = (Matrix(a), Matrix(b));
            let lhs = a.mul_mat(&b).determinant();
            let rhs = a.determinant() * b.determinant();
            prop_assert!((lhs - rhs).abs() < 1e-4 * (1.0 + rhs.abs()));
        }

        #[test]
        fn prop_ridge_bounds_condition_number(
            d1 in 0.1..10.0f64,
            d2 in 0.1..10.0f64,
            c in -0.9..0.9f64,
            ridge in 0.01..5.0f64,
        ) {
            let cov = c * (d1 * d2).sqrt();
            let m = Matrix([[d1, cov], [cov, d2]]);
            let before = m.condition_number().unwrap();
            let after = m.add_scaled_identity(ridge).condition_number().unwrap();
            // Shifting the spectrum up never worsens conditioning.
            prop_assert!(after <= before * (1.0 + 1e-9));
            // And the ridge bounds it outright.
            let lam_max = m.symmetric_eigen().unwrap().max_eigenvalue();
            prop_assert!(after <= (lam_max + ridge) / ridge + 1e-9);
        }

        #[test]
        fn prop_quadratic_form_of_spd_positive(
            v in [(-50.0..50.0f64), (-50.0..50.0f64)],
            d1 in 0.1..10.0f64,
            d2 in 0.1..10.0f64,
            c in -0.9..0.9f64,
        ) {
            // Build an SPD matrix from a correlation-style parameterization.
            let cov = c * (d1 * d2).sqrt();
            let m = Matrix([[d1, cov], [cov, d2]]);
            let v = Vector(v);
            if v.norm() > 1e-6 {
                prop_assert!(m.quadratic_form(&v) > 0.0);
            }
        }
    }
}
