//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! The paper's filtering strategies are built on the spectral decomposition
//! of the covariance (Eqs. 8–12):
//!
//! * **OR** rotates candidate points into the eigenbasis `E` of `Σ⁻¹`
//!   (Property 3) and filters with a per-axis interval (Eq. 20);
//! * **BF** needs the extreme eigenvalues `λ∥ = min λᵢ(Σ⁻¹)` and
//!   `λ⊥ = max λᵢ(Σ⁻¹)` (Eqs. 9–10) to build the spherical bounding
//!   functions of Definition 6.
//!
//! Dimensions here are tiny (`d ≤ ~16`), so the classic cyclic Jacobi
//! method is the right tool: unconditionally stable for symmetric input,
//! quadratically convergent, and it produces an orthonormal eigenvector
//! matrix for free.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
/// For symmetric matrices of the sizes used here, convergence takes ≤ ~8
/// sweeps; 64 leaves enormous headroom while still bounding the loop.
const MAX_SWEEPS: usize = 64;

/// Result of a symmetric eigendecomposition `M = E · diag(λ) · Eᵗ`.
///
/// Eigenvalues are sorted in **descending** order; `eigenvectors.0[..][k]`
/// (the k-th *column*) is the unit eigenvector for `eigenvalues[k]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricEigen<const D: usize> {
    /// Eigenvalues, descending.
    pub eigenvalues: Vector<D>,
    /// Orthonormal matrix whose columns are the matching eigenvectors
    /// (this is the matrix `E = [v₁ v₂ ⋯ v_d]` of paper Eq. 12).
    pub eigenvectors: Matrix<D>,
}

impl<const D: usize> SymmetricEigen<D> {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NonFinite`] / [`LinalgError::NotSymmetric`] for bad
    ///   input,
    /// * [`LinalgError::EigenNoConvergence`] if the sweep limit is exceeded
    ///   (which cannot happen for finite symmetric input in practice).
    pub fn new(m: &Matrix<D>) -> Result<Self> {
        m.check_symmetric(1e-9)?;
        let mut a = *m;
        let mut e = Matrix::<D>::identity();
        let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let tol = scale * 1e-14;

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&a);
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..D {
                for q in (p + 1)..D {
                    jacobi_rotate(&mut a, &mut e, p, q);
                }
            }
        }
        if !converged && off_diagonal_norm(&a) > tol {
            return Err(LinalgError::EigenNoConvergence {
                off_diagonal: off_diagonal_norm(&a),
            });
        }

        // Extract and sort eigenpairs (descending by eigenvalue).
        let mut order: [usize; D] = [0; D];
        for (i, o) in order.iter_mut().enumerate() {
            *o = i;
        }
        order.sort_by(|&i, &j| a[(j, j)].total_cmp(&a[(i, i)]));

        let eigenvalues = Vector::from_fn(|k| a[(order[k], order[k])]);
        let eigenvectors = Matrix::from_fn(|i, k| e[(i, order[k])]);
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues[D - 1]
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Condition number `λ_max / λ_min` (for SPD input).
    pub fn condition_number(&self) -> f64 {
        self.max_eigenvalue() / self.min_eigenvalue()
    }

    /// The k-th eigenvector (unit length), as a vector.
    pub fn eigenvector(&self, k: usize) -> Vector<D> {
        Vector::from_fn(|i| self.eigenvectors[(i, k)])
    }

    /// Reconstructs the original matrix `E · diag(λ) · Eᵗ` (for testing and
    /// for deriving `Σ⁻¹`'s spectral form from `Σ`'s).
    pub fn reconstruct(&self) -> Matrix<D> {
        Matrix::from_fn(|i, j| {
            let mut acc = 0.0;
            for k in 0..D {
                acc += self.eigenvectors[(i, k)] * self.eigenvalues[k] * self.eigenvectors[(j, k)];
            }
            acc
        })
    }

    /// Rotates a point into the eigenbasis: returns `y = Eᵗ·x`.
    ///
    /// This is the axis transformation of paper Property 3 (`x = E·y`):
    /// after the rotation, the ellipsoid `xᵗΣ⁻¹x = r²` becomes the
    /// axis-aligned ellipsoid `Σᵢ λᵢ yᵢ² = r²`.
    pub fn to_eigenbasis(&self, x: &Vector<D>) -> Vector<D> {
        self.eigenvectors.transpose_mul_vec(x)
    }

    /// Rotates a point back from the eigenbasis: returns `x = E·y`.
    pub fn from_eigenbasis(&self, y: &Vector<D>) -> Vector<D> {
        self.eigenvectors.mul_vec(y)
    }
}

/// Frobenius norm of the strictly-off-diagonal part.
fn off_diagonal_norm<const D: usize>(a: &Matrix<D>) -> f64 {
    let mut acc = 0.0;
    for i in 0..D {
        for j in (i + 1)..D {
            acc += 2.0 * a[(i, j)] * a[(i, j)];
        }
    }
    acc.sqrt()
}

/// One Jacobi rotation zeroing `a[(p, q)]`, accumulating into `e`.
fn jacobi_rotate<const D: usize>(a: &mut Matrix<D>, e: &mut Matrix<D>, p: usize, q: usize) {
    let apq = a[(p, q)];
    if apq == 0.0 {
        return;
    }
    let app = a[(p, p)];
    let aqq = a[(q, q)];
    let tau = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for stability.
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    // Update A = Jᵗ·A·J in place.
    for k in 0..D {
        let akp = a[(k, p)];
        let akq = a[(k, q)];
        a[(k, p)] = c * akp - s * akq;
        a[(k, q)] = s * akp + c * akq;
    }
    for k in 0..D {
        let apk = a[(p, k)];
        let aqk = a[(q, k)];
        a[(p, k)] = c * apk - s * aqk;
        a[(q, k)] = s * apk + c * aqk;
    }
    // Exact zeros on the annihilated pair keep round-off from re-seeding it.
    a[(p, q)] = 0.0;
    a[(q, p)] = 0.0;

    // Accumulate eigenvectors E = E·J.
    for k in 0..D {
        let ekp = e[(k, p)];
        let ekq = e[(k, q)];
        e[(k, p)] = c * ekp - s * ekq;
        e[(k, q)] = s * ekp + c * ekq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sigma_paper(gamma: f64) -> Matrix<2> {
        let s3 = 3.0f64.sqrt();
        Matrix::from_rows([[7.0, 2.0 * s3], [2.0 * s3, 3.0]]).scale(gamma)
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let m = Matrix::from_diagonal(&Vector::from([3.0, 1.0, 2.0]));
        let e = m.symmetric_eigen().unwrap();
        assert_eq!(e.eigenvalues.as_slice(), &[3.0, 2.0, 1.0]);
        assert_eq!(e.min_eigenvalue(), 1.0);
        assert_eq!(e.max_eigenvalue(), 3.0);
        assert_eq!(e.condition_number(), 3.0);
    }

    #[test]
    fn paper_sigma_eigenvalues() {
        // Σ(γ=1) has trace 10 and det 9 → eigenvalues are 9 and 1.
        // (λ² − 10λ + 9 = 0 → λ ∈ {9, 1}.) This is the 3:1-axis-ratio
        // ellipse tilted 30° described under Eq. (34): axis lengths scale
        // with √λ, so √9 : √1 = 3 : 1.
        let e = sigma_paper(1.0).symmetric_eigen().unwrap();
        assert!((e.eigenvalues[0] - 9.0).abs() < 1e-9);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-9);
        // Principal eigenvector should point 30° from the x-axis.
        let v = e.eigenvector(0);
        let angle = v[1].atan2(v[0]).abs();
        let thirty = std::f64::consts::PI / 6.0;
        assert!(
            (angle - thirty).abs() < 1e-9 || (angle - (std::f64::consts::PI - thirty)).abs() < 1e-9
        );
    }

    #[test]
    fn reconstruction_roundtrips() {
        let m = sigma_paper(10.0);
        let rec = m.symmetric_eigen().unwrap().reconstruct();
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let e = sigma_paper(10.0).symmetric_eigen().unwrap();
        let ete = e.eigenvectors.transpose().mul_mat(&e.eigenvectors);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((ete[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigen_equation_holds() {
        let m = sigma_paper(1.0);
        let e = m.symmetric_eigen().unwrap();
        for k in 0..2 {
            let v = e.eigenvector(k);
            let mv = m.mul_vec(&v);
            let lv = v * e.eigenvalues[k];
            assert!((mv[0] - lv[0]).abs() < 1e-9);
            assert!((mv[1] - lv[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn basis_rotation_roundtrip() {
        let e = sigma_paper(1.0).symmetric_eigen().unwrap();
        let x = Vector::from([2.0, -3.0]);
        let y = e.to_eigenbasis(&x);
        let back = e.from_eigenbasis(&y);
        assert!((back[0] - x[0]).abs() < 1e-12);
        assert!((back[1] - x[1]).abs() < 1e-12);
        // Rotation preserves norms.
        assert!((y.norm() - x.norm()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_form_diagonalizes() {
        // In the eigenbasis, xᵗΣ⁻¹x = Σᵢ yᵢ²/λᵢ(Σ).
        let m = sigma_paper(10.0);
        let e = m.symmetric_eigen().unwrap();
        let inv = m.cholesky().unwrap().inverse();
        let x = Vector::from([5.0, 2.0]);
        let y = e.to_eigenbasis(&x);
        let diag_form: f64 = (0..2).map(|i| y[i] * y[i] / e.eigenvalues[i]).sum();
        assert!((inv.quadratic_form(&x) - diag_form).abs() < 1e-9);
    }

    #[test]
    fn rejects_asymmetric() {
        let m = Matrix::from_rows([[1.0, 1.0], [0.0, 1.0]]);
        assert!(matches!(
            SymmetricEigen::new(&m),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn identity_eigen() {
        let e = Matrix::<5>::identity().symmetric_eigen().unwrap();
        for i in 0..5 {
            assert!((e.eigenvalues[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        // 2·I in a rotated basis is still 2·I.
        let m = Matrix::<3>::identity().scale(2.0);
        let e = m.symmetric_eigen().unwrap();
        for i in 0..3 {
            assert!((e.eigenvalues[i] - 2.0).abs() < 1e-12);
        }
        let rec = e.reconstruct();
        assert!((rec[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_supported() {
        // Symmetric eigendecomposition works for indefinite input too.
        let m = Matrix::from_rows([[1.0, 2.0], [2.0, 1.0]]);
        let e = m.symmetric_eigen().unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-9);
        assert!((e.eigenvalues[1] + 1.0).abs() < 1e-9);
    }

    fn spd4(entries: [[f64; 4]; 4]) -> Matrix<4> {
        let a = Matrix(entries);
        let mut m = a.mul_mat(&a.transpose());
        for i in 0..4 {
            m[(i, i)] += 0.5;
        }
        m
    }

    proptest! {
        #[test]
        fn prop_eigen_reconstructs_4d(
            entries in proptest::array::uniform4(proptest::array::uniform4(-3.0..3.0f64)),
        ) {
            let m = spd4(entries);
            let e = m.symmetric_eigen().unwrap();
            let rec = e.reconstruct();
            let scale = m.frobenius_norm().max(1.0);
            for i in 0..4 {
                for j in 0..4 {
                    prop_assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-8 * scale);
                }
            }
        }

        #[test]
        fn prop_trace_and_det_invariants(
            entries in proptest::array::uniform4(proptest::array::uniform4(-3.0..3.0f64)),
        ) {
            let m = spd4(entries);
            let e = m.symmetric_eigen().unwrap();
            let eig_trace: f64 = e.eigenvalues.as_slice().iter().sum();
            let eig_det: f64 = e.eigenvalues.as_slice().iter().product();
            prop_assert!((eig_trace - m.trace()).abs() < 1e-7 * m.trace().abs().max(1.0));
            let det = m.determinant();
            prop_assert!((eig_det - det).abs() < 1e-6 * det.abs().max(1.0));
        }

        #[test]
        fn prop_spd_eigenvalues_positive(
            entries in proptest::array::uniform4(proptest::array::uniform4(-3.0..3.0f64)),
        ) {
            let e = spd4(entries).symmetric_eigen().unwrap();
            prop_assert!(e.min_eigenvalue() > 0.0);
            // Sorted descending.
            for i in 1..4 {
                prop_assert!(e.eigenvalues[i - 1] >= e.eigenvalues[i]);
            }
        }
    }
}
