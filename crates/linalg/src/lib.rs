//! # gprq-linalg
//!
//! Small, dependency-free dense linear algebra used by the `gaussian-prq`
//! workspace (a reproduction of *"Spatial Range Querying for Gaussian-Based
//! Imprecise Query Objects"*, ICDE 2009).
//!
//! The query-processing strategies of the paper require a handful of
//! operations on small (`d ≤ ~16`) symmetric positive-definite covariance
//! matrices:
//!
//! * eigendecomposition (spectral decomposition of `Σ⁻¹`, paper Eq. 8–12),
//!   provided by the cyclic [Jacobi rotation method](eigen::SymmetricEigen);
//! * Cholesky factorization for sampling from `N(q, Σ)` and for numerically
//!   stable determinants / inverses ([`cholesky::Cholesky`]);
//! * quadratic forms `(x − q)ᵗ Σ⁻¹ (x − q)` (Mahalanobis distances),
//!   dot products, norms, and the usual vector arithmetic.
//!
//! Dimension is a **compile-time constant** (`const D: usize`), matching the
//! paper's fixed-dimension experiments (d = 2 and d = 9) and keeping every
//! hot-path operation allocation-free: the types are plain stack arrays.
//!
//! ```
//! use gprq_linalg::{Matrix, Vector};
//!
//! let sigma = Matrix::<2>::from_rows([[7.0, 3.4641], [3.4641, 3.0]]);
//! let eig = sigma.symmetric_eigen().unwrap();
//! assert!(eig.eigenvalues[0] >= eig.eigenvalues[1]); // sorted descending
//! let x = Vector::from([1.0, 2.0]);
//! let q = sigma.cholesky().unwrap().inverse().quadratic_form(&x);
//! assert!(q > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use vector::Vector;

/// Convenience alias: result type for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
